//! Incremental and sliding-window STKDE (extension).
//!
//! The paper's motivation is *interactive exploration* of event data: an
//! analyst pans, filters, and watches new events arrive. Recomputing the
//! full cube on every change costs `Θ(G + n·Hs²·Ht)`; this module
//! maintains the cube under point insertions and removals at
//! `Θ(Hs²·Ht)` per update — one cylinder rasterized with the `PB-SYM`
//! invariants, added or subtracted.
//!
//! The trick is to accumulate the *unnormalized* sum
//! `Σᵢ ks·kt / (hs²·ht)` and divide by the live point count only on
//! reads: the `1/n` factor in the estimator changes with every update,
//! but scaling at query time keeps updates O(cylinder).
//!
//! [`SlidingWindowStkde`] builds a time-windowed view on top: pushing an
//! event evicts everything older than the window — the streaming
//! "last 30 days" surveillance view the epidemiology use-case calls for.
//!
//! Floating-point caveat: removals cancel additions exactly only in exact
//! arithmetic. Drift is bounded by a few ULPs per update pair and is
//! invisible with `f64` grids (the property tests assert tight agreement
//! with batch recomputation); long-running `f32` windows should call
//! [`SlidingWindowStkde::rebuild`] occasionally, or set
//! [`SlidingWindowStkde::auto_rebuild_every`] to have the window do it
//! itself after every `n` insert/evict pairs.
//!
//! For serving, every mutation advances a monotone *generation counter*
//! ([`IncrementalStkde::generation`]); readers can key caches on it and
//! know that equal generations mean byte-identical cubes.

use crate::algorithms::pb_sym;
use crate::kernel_apply::{apply_points_seq_with, PointKernel, Scratch};
use crate::problem::Problem;
use std::collections::VecDeque;
use stkde_data::Point;
use stkde_grid::{stats, Bandwidth, Domain, Grid3, GridStats, Scalar, VoxelRange};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel};

/// An STKDE cube maintained under insertions and removals.
///
/// ```
/// use stkde_core::IncrementalStkde;
/// use stkde_data::Point;
/// use stkde_grid::{Bandwidth, Domain, GridDims};
///
/// let domain = Domain::from_dims(GridDims::new(32, 32, 16));
/// let mut cube = IncrementalStkde::<f64>::new(domain, Bandwidth::new(4.0, 2.0));
/// let p = Point::new(16.0, 16.0, 8.0);
/// cube.insert(p);
/// assert!(cube.density(16, 16, 8) > 0.0);
/// cube.remove(&p);                        // Θ(Hs²·Ht), not a recompute
/// assert_eq!(cube.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalStkde<S, K = Epanechnikov> {
    domain: Domain,
    bw: Bandwidth,
    kernel: K,
    /// Unnormalized accumulation: `Σ ks·kt / (hs²·ht)`.
    grid: Grid3<S>,
    n: usize,
    /// Monotone mutation counter: equal generations ⇒ identical cubes.
    generation: u64,
    /// Persistent scatter-engine buffers: the per-event insert/evict path
    /// (a server ingest thread pays it per batch) reuses one allocation
    /// instead of churning a fresh `Scratch` per mutation.
    scratch: Scratch<S>,
}

impl<S: Scalar> IncrementalStkde<S, Epanechnikov> {
    /// Empty cube over `domain` with bandwidth `bw` and the default
    /// Epanechnikov kernel.
    pub fn new(domain: Domain, bw: Bandwidth) -> Self {
        Self::with_kernel(domain, bw, Epanechnikov)
    }
}

impl<S: Scalar, K: SpaceTimeKernel> IncrementalStkde<S, K> {
    /// Empty cube with an explicit kernel.
    pub fn with_kernel(domain: Domain, bw: Bandwidth, kernel: K) -> Self {
        Self {
            domain,
            bw,
            kernel,
            grid: Grid3::zeros(domain.dims()),
            n: 0,
            generation: 0,
            scratch: Scratch::default(),
        }
    }

    /// Number of points currently contributing.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if no points contribute.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The domain this cube discretizes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The bandwidths in use.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// Monotone mutation counter, advanced by every state change
    /// ([`insert`](Self::insert), [`remove`](Self::remove),
    /// [`insert_batch`](Self::insert_batch), [`clear`](Self::clear)).
    ///
    /// Two reads observing the same generation observed an identical cube,
    /// which is exactly what a query cache needs for its key.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// A problem description with the estimator's `1/n` stripped (`n = 1`
    /// leaves exactly the `1/(hs²·ht)` factor in the folded norm).
    fn unit_problem(&self, sign: f64) -> Problem {
        let mut p = Problem::new(self.domain, self.bw, 1);
        p.norm *= sign;
        p
    }

    /// Add one event's cylinder. `Θ(Hs²·Ht)`.
    pub fn insert(&mut self, p: Point) {
        let problem = self.unit_problem(1.0);
        let clip = VoxelRange::full(self.domain.dims());
        apply_points_seq_with(
            PointKernel::Sym,
            &mut self.grid,
            &problem,
            &self.kernel,
            &[p],
            clip,
            &mut self.scratch,
        );
        self.n += 1;
        self.generation += 1;
    }

    /// Add many events' cylinders in one pass: `Θ(k·Hs²·Ht)` for `k`
    /// points, but with a single problem setup and a single generation
    /// step. This is the write-coalescing primitive a serving ingest
    /// thread uses to apply a whole drained batch per lock acquisition.
    pub fn insert_batch(&mut self, points: &[Point]) {
        if points.is_empty() {
            return;
        }
        let problem = self.unit_problem(1.0);
        let clip = VoxelRange::full(self.domain.dims());
        apply_points_seq_with(
            PointKernel::Sym,
            &mut self.grid,
            &problem,
            &self.kernel,
            points,
            clip,
            &mut self.scratch,
        );
        self.n += points.len();
        self.generation += 1;
    }

    /// Subtract one event's cylinder. `Θ(Hs²·Ht)`.
    ///
    /// The caller must only remove points previously inserted (the cube
    /// does not store them); removing anything else leaves the cube
    /// meaningless.
    ///
    /// # Panics
    /// Panics if the cube is empty.
    pub fn remove(&mut self, p: &Point) {
        assert!(self.n > 0, "remove from an empty cube");
        let problem = self.unit_problem(-1.0);
        let clip = VoxelRange::full(self.domain.dims());
        apply_points_seq_with(
            PointKernel::Sym,
            &mut self.grid,
            &problem,
            &self.kernel,
            std::slice::from_ref(p),
            clip,
            &mut self.scratch,
        );
        self.n -= 1;
        self.generation += 1;
    }

    /// Normalized density at voxel `(x, y, t)` — the estimator
    /// `f̂ = unnormalized / n` (zero when empty).
    pub fn density(&self, x: usize, y: usize, t: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.grid.get(x, y, t).to_f64() / self.n as f64
        }
    }

    /// The live (unnormalized) accumulation grid — for footprint
    /// reporting and direct slab reads; normalized queries go through
    /// [`density`](Self::density) and friends.
    pub fn grid(&self) -> &Grid3<S> {
        &self.grid
    }

    /// Materialize the normalized cube (equals a batch `PB-SYM` over the
    /// live points, up to float summation order).
    pub fn snapshot(&self) -> Grid3<S> {
        let inv_n = if self.n == 0 {
            0.0
        } else {
            1.0 / self.n as f64
        };
        let data = self
            .grid
            .as_slice()
            .iter()
            .map(|&v| S::from_f64(v.to_f64() * inv_n))
            .collect();
        Grid3::from_vec(self.domain.dims(), data)
    }

    /// Normalized density at voxel `(x, y, t)`, or `None` when the
    /// coordinate is outside the grid — the bounds-checked read a query
    /// endpoint wants.
    pub fn density_checked(&self, x: usize, y: usize, t: usize) -> Option<f64> {
        if self.domain.dims().contains(x, y, t) {
            Some(self.density(x, y, t))
        } else {
            None
        }
    }

    /// Summary statistics of the **normalized** density inside a voxel
    /// box (clipped to the grid), without materializing a snapshot.
    ///
    /// `sum`, `max`, and `min` are scaled by `1/n`; `nonzero`/`total`
    /// count voxels and are scale-invariant. An empty cube reports the
    /// statistics of an all-zero region.
    pub fn density_range(&self, r: VoxelRange) -> GridStats {
        let mut s = stats::range_stats(&self.grid, r);
        if self.n == 0 {
            // No contributions: the accumulator is identically zero and the
            // estimator is defined as zero.
            if s.total > 0 {
                s.max = 0.0;
                s.min = 0.0;
            }
            return s;
        }
        let inv_n = 1.0 / self.n as f64;
        s.sum *= inv_n;
        s.max *= inv_n;
        s.min *= inv_n;
        s
    }

    /// The normalized time plane at `t` as a row-major `Gy × Gx` vector,
    /// or `None` when `t` is out of range.
    pub fn density_slice(&self, t: usize) -> Option<Vec<f64>> {
        if t >= self.domain.dims().gt {
            return None;
        }
        let inv_n = if self.n == 0 {
            0.0
        } else {
            1.0 / self.n as f64
        };
        Some(
            self.grid
                .time_slice(t)
                .iter()
                .map(|&v| v.to_f64() * inv_n)
                .collect(),
        )
    }

    /// Drop every contribution (reusing the allocation).
    pub fn clear(&mut self) {
        self.grid.clear_parallel();
        self.n = 0;
        self.generation += 1;
    }
}

/// A streaming STKDE over the trailing `window` time units.
///
/// Events must arrive in non-decreasing time order (enforced); each push
/// evicts events older than `newest.t - window`. Reads see exactly the
/// in-window events.
#[derive(Debug, Clone)]
pub struct SlidingWindowStkde<S, K = Epanechnikov> {
    cube: IncrementalStkde<S, K>,
    points: VecDeque<Point>,
    window: f64,
    /// Rebuild after this many insert/evict pairs (`None` = never).
    auto_rebuild: Option<usize>,
    /// Insert/evict pairs since the last rebuild.
    churn: usize,
    /// How many drift-correcting rebuilds have run (manual + automatic).
    rebuilds: usize,
}

/// What [`SlidingWindowStkde::push_batch`] did with a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchPush {
    /// Batch events rasterized into the cube.
    pub inserted: usize,
    /// Previously stored events evicted by the batch.
    pub evicted: usize,
    /// Batch events that the batch itself aged out: already older than
    /// `newest.t - window`, so they were never rasterized at all —
    /// the insert+remove pair a sequential replay would have paid.
    pub skipped: usize,
}

impl<S: Scalar> SlidingWindowStkde<S, Epanechnikov> {
    /// Empty stream over the trailing `window` time units.
    ///
    /// # Panics
    /// Panics if `window` is not positive and finite.
    pub fn new(domain: Domain, bw: Bandwidth, window: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive and finite"
        );
        Self {
            cube: IncrementalStkde::new(domain, bw),
            points: VecDeque::new(),
            window,
            auto_rebuild: None,
            churn: 0,
            rebuilds: 0,
        }
    }
}

impl<S: Scalar, K: SpaceTimeKernel> SlidingWindowStkde<S, K> {
    /// Empty stream over the trailing `window` time units, rasterizing
    /// with `kernel` instead of the default Epanechnikov. Conformance
    /// references use this to match a serving cube's kernel bit-exactly.
    ///
    /// # Panics
    /// Panics if `window` is not positive and finite.
    pub fn with_kernel(domain: Domain, bw: Bandwidth, window: f64, kernel: K) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive and finite"
        );
        Self {
            cube: IncrementalStkde::with_kernel(domain, bw, kernel),
            points: VecDeque::new(),
            window,
            auto_rebuild: None,
            churn: 0,
            rebuilds: 0,
        }
    }

    /// Enable the drift hygiene the module docs call for: after every `n`
    /// insert/evict pairs, run [`rebuild`](Self::rebuild) automatically so
    /// float cancellation error cannot accumulate without bound. Most
    /// useful for `f32` grids; a few hundred is a good cadence.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn auto_rebuild_every(mut self, n: usize) -> Self {
        assert!(n > 0, "auto-rebuild cadence must be >= 1");
        self.auto_rebuild = Some(n);
        self
    }

    /// Push the next event; evicts everything older than
    /// `p.t - window`. Returns how many events were evicted.
    ///
    /// # Panics
    /// Panics if `p.t` precedes the newest event already pushed (the
    /// stream must be time-ordered).
    pub fn push(&mut self, p: Point) -> usize {
        if let Some(last) = self.points.back() {
            assert!(
                p.t >= last.t,
                "stream must be time-ordered: got t={} after t={}",
                p.t,
                last.t
            );
        }
        let cutoff = p.t - self.window;
        let mut evicted = 0;
        while let Some(old) = self.points.front() {
            if old.t < cutoff {
                let old = *old;
                self.points.pop_front();
                self.cube.remove(&old);
                evicted += 1;
            } else {
                break;
            }
        }
        self.cube.insert(p);
        self.points.push_back(p);
        self.churn += evicted;
        self.maybe_auto_rebuild();
        evicted
    }

    /// Push a time-ordered batch of events in one coalesced pass.
    ///
    /// Equivalent to pushing each event in order (the resulting window
    /// contents are identical; voxel values agree up to the float noise of
    /// the insert+remove pairs a sequential replay pays), but cheaper:
    /// evictions are computed once against the *last* event's cutoff, batch
    /// events that would age out within the batch are skipped instead of
    /// being rasterized and immediately un-rasterized, and the survivors go
    /// through [`IncrementalStkde::insert_batch`] — a single pass and a
    /// single generation step. This is the unit of work a serving ingest
    /// thread applies per write-lock acquisition.
    ///
    /// # Panics
    /// Panics if the batch is not internally time-ordered or starts before
    /// the newest event already pushed.
    pub fn push_batch(&mut self, batch: &[Point]) -> BatchPush {
        let Some((first, last)) = batch.first().zip(batch.last()) else {
            return BatchPush::default();
        };
        if let Some(prev) = self.points.back() {
            assert!(
                first.t >= prev.t,
                "stream must be time-ordered: got t={} after t={}",
                first.t,
                prev.t
            );
        }
        assert!(
            batch.windows(2).all(|w| w[0].t <= w[1].t),
            "batch must be time-ordered"
        );
        let cutoff = last.t - self.window;
        let mut out = BatchPush::default();
        while let Some(old) = self.points.front() {
            if old.t < cutoff {
                let old = *old;
                self.points.pop_front();
                self.cube.remove(&old);
                out.evicted += 1;
            } else {
                break;
            }
        }
        // The batch is sorted, so survivors are a suffix.
        let split = batch.partition_point(|p| p.t < cutoff);
        out.skipped = split;
        let survivors = &batch[split..];
        out.inserted = survivors.len();
        self.cube.insert_batch(survivors);
        self.points.extend(survivors.iter().copied());
        self.churn += out.evicted;
        self.maybe_auto_rebuild();
        out
    }

    fn maybe_auto_rebuild(&mut self) {
        if let Some(n) = self.auto_rebuild {
            if self.churn >= n {
                self.rebuild();
            }
        }
    }

    /// Events currently inside the window.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The live cube.
    pub fn cube(&self) -> &IncrementalStkde<S, K> {
        &self.cube
    }

    /// The in-window events, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// The window length in time units.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Arrival time of the newest event, or `None` when empty. A server
    /// uses this to reject stale events instead of tripping the
    /// time-ordering panic.
    pub fn newest_time(&self) -> Option<f64> {
        self.points.back().map(|p| p.t)
    }

    /// The cube's monotone mutation counter (see
    /// [`IncrementalStkde::generation`]).
    pub fn generation(&self) -> u64 {
        self.cube.generation()
    }

    /// How many drift-correcting rebuilds have run, manual and automatic.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Recompute the cube from the stored in-window points with batch
    /// `PB-SYM`, clearing any accumulated float drift. `Θ(G + k·Hs²·Ht)`
    /// for `k` live points.
    pub fn rebuild(&mut self) {
        let points: Vec<Point> = self.points.iter().copied().collect();
        self.cube.clear();
        let problem = self.cube.unit_problem(1.0);
        let (grid, _) = pb_sym::run::<S, K>(&problem, &self.cube.kernel, &points);
        self.cube.grid = grid;
        self.cube.n = points.len();
        self.cube.generation += 1;
        self.churn = 0;
        self.rebuilds += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::GridDims;

    fn domain() -> Domain {
        Domain::from_dims(GridDims::new(24, 20, 16))
    }

    fn batch(points: &[Point]) -> Grid3<f64> {
        let problem = Problem::new(domain(), Bandwidth::new(3.0, 2.0), points.len());
        pb_sym::run::<f64, _>(&problem, &Epanechnikov, points).0
    }

    #[test]
    fn inserts_match_batch() {
        let points = synth::uniform(40, domain().extent(), 31).into_vec();
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        for &p in &points {
            inc.insert(p);
        }
        assert_eq!(inc.len(), 40);
        let diff = batch(&points).max_rel_diff(&inc.snapshot(), 1e-13);
        assert!(diff < 1e-9, "diff {diff}");
    }

    #[test]
    fn remove_undoes_insert() {
        let points = synth::uniform(20, domain().extent(), 32).into_vec();
        let extra = Point::new(12.0, 10.0, 8.0);
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        for &p in &points {
            inc.insert(p);
        }
        inc.insert(extra);
        inc.remove(&extra);
        assert_eq!(inc.len(), 20);
        let diff = batch(&points).max_rel_diff(&inc.snapshot(), 1e-12);
        assert!(diff < 1e-9, "removal must cancel: {diff}");
    }

    #[test]
    fn normalization_tracks_live_count() {
        // Density halves (at the untouched voxel) when an unrelated far
        // point doubles n.
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.5));
        inc.insert(Point::new(5.0, 5.0, 4.0));
        let before = inc.density(5, 5, 4);
        assert!(before > 0.0);
        inc.insert(Point::new(20.0, 18.0, 14.0)); // outside the first cylinder
        let after = inc.density(5, 5, 4);
        assert!((after - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cube_reads_zero() {
        let inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        assert!(inc.is_empty());
        assert_eq!(inc.density(0, 0, 0), 0.0);
        assert!(inc.snapshot().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty cube")]
    fn remove_from_empty_panics() {
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        inc.remove(&Point::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn clear_resets() {
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        inc.insert(Point::new(12.0, 10.0, 8.0));
        inc.clear();
        assert!(inc.is_empty());
        assert_eq!(inc.density(12, 10, 8), 0.0);
    }

    #[test]
    fn window_matches_batch_of_survivors() {
        // Time-ordered stream over a window of 4.0 time units.
        let mut points = synth::uniform(60, domain().extent(), 33).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0), 4.0);
        for &p in &points {
            win.push(p);
        }
        let newest = points.last().unwrap().t;
        let survivors: Vec<Point> = points
            .iter()
            .filter(|p| p.t >= newest - 4.0)
            .copied()
            .collect();
        assert_eq!(win.len(), survivors.len());
        let diff = batch(&survivors).max_rel_diff(&win.cube().snapshot(), 1e-12);
        assert!(diff < 1e-8, "window diverges from batch: {diff}");
    }

    #[test]
    fn push_reports_evictions() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        assert_eq!(win.push(Point::new(5.0, 5.0, 0.5)), 0);
        assert_eq!(win.push(Point::new(6.0, 6.0, 1.0)), 0);
        // t=4: cutoff 2.0 evicts both earlier events.
        assert_eq!(win.push(Point::new(7.0, 7.0, 4.0)), 2);
        assert_eq!(win.len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        win.push(Point::new(5.0, 5.0, 3.0));
        win.push(Point::new(5.0, 5.0, 1.0));
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let mut points = synth::uniform(30, domain().extent(), 34).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0), 5.0);
        for &p in &points {
            win.push(p);
        }
        let before = win.cube().snapshot();
        win.rebuild();
        let after = win.cube().snapshot();
        assert!(before.max_rel_diff(&after, 1e-12) < 1e-8);
        assert_eq!(win.cube().len(), win.len());
    }

    #[test]
    fn insert_batch_matches_one_at_a_time() {
        let points = synth::uniform(50, domain().extent(), 36).into_vec();
        let mut single = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        for &p in &points {
            single.insert(p);
        }
        let mut batched = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        batched.insert_batch(&points);
        assert_eq!(batched.len(), 50);
        // Same points in the same order accumulate in the same order per
        // voxel: the cubes are bit-identical.
        assert_eq!(single.snapshot(), batched.snapshot());
        // One generation step for the whole batch vs. one per point.
        assert_eq!(batched.generation(), 1);
        assert_eq!(single.generation(), 50);
    }

    #[test]
    fn push_batch_matches_sequential_pushes() {
        let mut points = synth::uniform(80, domain().extent(), 37).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        let bw = Bandwidth::new(3.0, 2.0);
        let mut seq = SlidingWindowStkde::<f64>::new(domain(), bw, 3.0);
        for &p in &points {
            seq.push(p);
        }
        let mut bat = SlidingWindowStkde::<f64>::new(domain(), bw, 3.0);
        let mut inserted = 0;
        let mut skipped = 0;
        for chunk in points.chunks(17) {
            let r = bat.push_batch(chunk);
            inserted += r.inserted;
            skipped += r.skipped;
        }
        assert_eq!(inserted + skipped, points.len());
        assert_eq!(bat.len(), seq.len());
        assert!(bat.points().eq(seq.points()), "window contents must agree");
        let diff = seq
            .cube()
            .snapshot()
            .max_rel_diff(&bat.cube().snapshot(), 1e-12);
        assert!(diff < 1e-9, "batched push diverges: {diff}");
    }

    #[test]
    fn push_batch_skips_events_that_age_out_in_batch() {
        // Batch spans 10 time units, window is 2: the early events never
        // get rasterized.
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        let batch = [
            Point::new(5.0, 5.0, 0.5),
            Point::new(6.0, 6.0, 1.0),
            Point::new(7.0, 7.0, 10.0),
        ];
        let r = win.push_batch(&batch);
        assert_eq!(
            r,
            BatchPush {
                inserted: 1,
                evicted: 0,
                skipped: 2
            }
        );
        assert_eq!(win.len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn push_batch_rejects_unsorted_batch() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        win.push_batch(&[Point::new(1.0, 1.0, 3.0), Point::new(1.0, 1.0, 1.0)]);
    }

    #[test]
    fn generation_is_monotone_and_tracks_mutations() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        let mut last = win.generation();
        assert_eq!(last, 0);
        let mut points = synth::uniform(30, domain().extent(), 38).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        for &p in &points {
            win.push(p);
            let g = win.generation();
            assert!(g > last, "push must advance the generation");
            last = g;
        }
        win.rebuild();
        assert!(win.generation() > last, "rebuild must advance too");
    }

    #[test]
    fn read_view_matches_snapshot() {
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        inc.insert_batch(&synth::uniform(25, domain().extent(), 39).into_vec());
        let snap = inc.snapshot();
        // Voxel reads.
        assert_eq!(inc.density_checked(5, 5, 5), Some(snap.get(5, 5, 5)));
        assert_eq!(inc.density_checked(99, 0, 0), None);
        // Range aggregate over the normalized cube.
        let r = VoxelRange {
            x0: 2,
            x1: 14,
            y0: 1,
            y1: 11,
            t0: 3,
            t1: 9,
        };
        let got = inc.density_range(r);
        let want = stats::range_stats(&snap, r);
        assert!((got.sum - want.sum).abs() < 1e-12);
        assert!((got.max - want.max).abs() < 1e-15);
        assert_eq!(got.nonzero, want.nonzero);
        assert_eq!(got.total, want.total);
        // Time-plane export.
        let plane = inc.density_slice(6).unwrap();
        assert_eq!(plane, snap.time_slice(6).to_vec());
        assert!(inc.density_slice(16).is_none());
    }

    #[test]
    fn auto_rebuild_triggers_at_cadence() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 1.0)
            .auto_rebuild_every(4);
        // Each push at t = k/2 evicts one event once the window saturates.
        for k in 0..24 {
            win.push(Point::new(12.0, 10.0, k as f64 * 0.5));
        }
        assert!(win.rebuilds() >= 2, "rebuilds: {}", win.rebuilds());
        assert_eq!(win.cube().len(), win.len());
    }

    #[test]
    fn f32_auto_rebuild_bounds_drift() {
        // Regression for the module-doc promise: with the auto-rebuild
        // hygiene enabled, a long-churning f32 window stays much closer to
        // the batch recomputation than the drift-prone raw stream.
        let bw = Bandwidth::new(3.0, 2.0);
        let mut sorted = synth::uniform(400, domain().extent(), 40).into_vec();
        sorted.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut win = SlidingWindowStkde::<f32>::new(domain(), bw, 0.5).auto_rebuild_every(25);
        for &p in &sorted {
            win.push(p);
        }
        assert!(win.rebuilds() > 0, "cadence must have fired");
        let live = win.cube().snapshot();
        win.rebuild();
        let clean = win.cube().snapshot();
        let diff = live.max_abs_diff(&clean);
        // Between rebuilds at most 25 update pairs can drift — orders of
        // magnitude tighter than the 1e-4 bound the raw 200-pair churn
        // test tolerates above.
        assert!(diff < 2e-6, "auto-rebuilt f32 drift too large: {diff}");
    }

    #[test]
    fn f32_drift_stays_small_over_churn() {
        // 200 insert/evict pairs on an f32 grid: drift must stay tiny.
        let mut win = SlidingWindowStkde::<f32>::new(domain(), Bandwidth::new(3.0, 2.0), 1.0);
        let points = synth::uniform(200, domain().extent(), 35).into_vec();
        let mut sorted = points;
        sorted.sort_by(|a, b| a.t.total_cmp(&b.t));
        for &p in &sorted {
            win.push(p);
        }
        let drifted = win.cube().snapshot();
        win.rebuild();
        let clean = win.cube().snapshot();
        let diff = drifted.max_abs_diff(&clean);
        assert!(diff < 1e-4, "f32 churn drift too large: {diff}");
    }
}
