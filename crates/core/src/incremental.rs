//! Incremental and sliding-window STKDE (extension).
//!
//! The paper's motivation is *interactive exploration* of event data: an
//! analyst pans, filters, and watches new events arrive. Recomputing the
//! full cube on every change costs `Θ(G + n·Hs²·Ht)`; this module
//! maintains the cube under point insertions and removals at
//! `Θ(Hs²·Ht)` per update — one cylinder rasterized with the `PB-SYM`
//! invariants, added or subtracted.
//!
//! The trick is to accumulate the *unnormalized* sum
//! `Σᵢ ks·kt / (hs²·ht)` and divide by the live point count only on
//! reads: the `1/n` factor in the estimator changes with every update,
//! but scaling at query time keeps updates O(cylinder).
//!
//! [`SlidingWindowStkde`] builds a time-windowed view on top: pushing an
//! event evicts everything older than the window — the streaming
//! "last 30 days" surveillance view the epidemiology use-case calls for.
//!
//! Floating-point caveat: removals cancel additions exactly only in exact
//! arithmetic. Drift is bounded by a few ULPs per update pair and is
//! invisible with `f64` grids (the property tests assert tight agreement
//! with batch recomputation); long-running `f32` windows should call
//! [`SlidingWindowStkde::rebuild`] occasionally.

use crate::algorithms::pb_sym;
use crate::kernel_apply::{apply_points_seq, PointKernel};
use crate::problem::Problem;
use std::collections::VecDeque;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, Grid3, Scalar, VoxelRange};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel};

/// An STKDE cube maintained under insertions and removals.
///
/// ```
/// use stkde_core::IncrementalStkde;
/// use stkde_data::Point;
/// use stkde_grid::{Bandwidth, Domain, GridDims};
///
/// let domain = Domain::from_dims(GridDims::new(32, 32, 16));
/// let mut cube = IncrementalStkde::<f64>::new(domain, Bandwidth::new(4.0, 2.0));
/// let p = Point::new(16.0, 16.0, 8.0);
/// cube.insert(p);
/// assert!(cube.density(16, 16, 8) > 0.0);
/// cube.remove(&p);                        // Θ(Hs²·Ht), not a recompute
/// assert_eq!(cube.len(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalStkde<S, K = Epanechnikov> {
    domain: Domain,
    bw: Bandwidth,
    kernel: K,
    /// Unnormalized accumulation: `Σ ks·kt / (hs²·ht)`.
    grid: Grid3<S>,
    n: usize,
}

impl<S: Scalar> IncrementalStkde<S, Epanechnikov> {
    /// Empty cube over `domain` with bandwidth `bw` and the default
    /// Epanechnikov kernel.
    pub fn new(domain: Domain, bw: Bandwidth) -> Self {
        Self::with_kernel(domain, bw, Epanechnikov)
    }
}

impl<S: Scalar, K: SpaceTimeKernel> IncrementalStkde<S, K> {
    /// Empty cube with an explicit kernel.
    pub fn with_kernel(domain: Domain, bw: Bandwidth, kernel: K) -> Self {
        Self {
            domain,
            bw,
            kernel,
            grid: Grid3::zeros(domain.dims()),
            n: 0,
        }
    }

    /// Number of points currently contributing.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if no points contribute.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The domain this cube discretizes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The bandwidths in use.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// A problem description with the estimator's `1/n` stripped (`n = 1`
    /// leaves exactly the `1/(hs²·ht)` factor in the folded norm).
    fn unit_problem(&self, sign: f64) -> Problem {
        let mut p = Problem::new(self.domain, self.bw, 1);
        p.norm *= sign;
        p
    }

    /// Add one event's cylinder. `Θ(Hs²·Ht)`.
    pub fn insert(&mut self, p: Point) {
        let problem = self.unit_problem(1.0);
        let clip = VoxelRange::full(self.domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut self.grid,
            &problem,
            &self.kernel,
            &[p],
            clip,
        );
        self.n += 1;
    }

    /// Subtract one event's cylinder. `Θ(Hs²·Ht)`.
    ///
    /// The caller must only remove points previously inserted (the cube
    /// does not store them); removing anything else leaves the cube
    /// meaningless.
    ///
    /// # Panics
    /// Panics if the cube is empty.
    pub fn remove(&mut self, p: &Point) {
        assert!(self.n > 0, "remove from an empty cube");
        let problem = self.unit_problem(-1.0);
        let clip = VoxelRange::full(self.domain.dims());
        apply_points_seq(
            PointKernel::Sym,
            &mut self.grid,
            &problem,
            &self.kernel,
            std::slice::from_ref(p),
            clip,
        );
        self.n -= 1;
    }

    /// Normalized density at voxel `(x, y, t)` — the estimator
    /// `f̂ = unnormalized / n` (zero when empty).
    pub fn density(&self, x: usize, y: usize, t: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.grid.get(x, y, t).to_f64() / self.n as f64
        }
    }

    /// Materialize the normalized cube (equals a batch `PB-SYM` over the
    /// live points, up to float summation order).
    pub fn snapshot(&self) -> Grid3<S> {
        let inv_n = if self.n == 0 {
            0.0
        } else {
            1.0 / self.n as f64
        };
        let data = self
            .grid
            .as_slice()
            .iter()
            .map(|&v| S::from_f64(v.to_f64() * inv_n))
            .collect();
        Grid3::from_vec(self.domain.dims(), data)
    }

    /// Drop every contribution (reusing the allocation).
    pub fn clear(&mut self) {
        self.grid.clear_parallel();
        self.n = 0;
    }
}

/// A streaming STKDE over the trailing `window` time units.
///
/// Events must arrive in non-decreasing time order (enforced); each push
/// evicts events older than `newest.t - window`. Reads see exactly the
/// in-window events.
#[derive(Debug, Clone)]
pub struct SlidingWindowStkde<S, K = Epanechnikov> {
    cube: IncrementalStkde<S, K>,
    points: VecDeque<Point>,
    window: f64,
}

impl<S: Scalar> SlidingWindowStkde<S, Epanechnikov> {
    /// Empty stream over the trailing `window` time units.
    ///
    /// # Panics
    /// Panics if `window` is not positive and finite.
    pub fn new(domain: Domain, bw: Bandwidth, window: f64) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive and finite"
        );
        Self {
            cube: IncrementalStkde::new(domain, bw),
            points: VecDeque::new(),
            window,
        }
    }
}

impl<S: Scalar, K: SpaceTimeKernel> SlidingWindowStkde<S, K> {
    /// Push the next event; evicts everything older than
    /// `p.t - window`. Returns how many events were evicted.
    ///
    /// # Panics
    /// Panics if `p.t` precedes the newest event already pushed (the
    /// stream must be time-ordered).
    pub fn push(&mut self, p: Point) -> usize {
        if let Some(last) = self.points.back() {
            assert!(
                p.t >= last.t,
                "stream must be time-ordered: got t={} after t={}",
                p.t,
                last.t
            );
        }
        let cutoff = p.t - self.window;
        let mut evicted = 0;
        while let Some(old) = self.points.front() {
            if old.t < cutoff {
                let old = *old;
                self.points.pop_front();
                self.cube.remove(&old);
                evicted += 1;
            } else {
                break;
            }
        }
        self.cube.insert(p);
        self.points.push_back(p);
        evicted
    }

    /// Events currently inside the window.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The live cube.
    pub fn cube(&self) -> &IncrementalStkde<S, K> {
        &self.cube
    }

    /// The in-window events, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// Recompute the cube from the stored in-window points with batch
    /// `PB-SYM`, clearing any accumulated float drift. `Θ(G + k·Hs²·Ht)`
    /// for `k` live points.
    pub fn rebuild(&mut self) {
        let points: Vec<Point> = self.points.iter().copied().collect();
        self.cube.clear();
        let problem = self.cube.unit_problem(1.0);
        let (grid, _) = pb_sym::run::<S, K>(&problem, &self.cube.kernel, &points);
        self.cube.grid = grid;
        self.cube.n = points.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::synth;
    use stkde_grid::GridDims;

    fn domain() -> Domain {
        Domain::from_dims(GridDims::new(24, 20, 16))
    }

    fn batch(points: &[Point]) -> Grid3<f64> {
        let problem = Problem::new(domain(), Bandwidth::new(3.0, 2.0), points.len());
        pb_sym::run::<f64, _>(&problem, &Epanechnikov, points).0
    }

    #[test]
    fn inserts_match_batch() {
        let points = synth::uniform(40, domain().extent(), 31).into_vec();
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        for &p in &points {
            inc.insert(p);
        }
        assert_eq!(inc.len(), 40);
        let diff = batch(&points).max_rel_diff(&inc.snapshot(), 1e-13);
        assert!(diff < 1e-9, "diff {diff}");
    }

    #[test]
    fn remove_undoes_insert() {
        let points = synth::uniform(20, domain().extent(), 32).into_vec();
        let extra = Point::new(12.0, 10.0, 8.0);
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        for &p in &points {
            inc.insert(p);
        }
        inc.insert(extra);
        inc.remove(&extra);
        assert_eq!(inc.len(), 20);
        let diff = batch(&points).max_rel_diff(&inc.snapshot(), 1e-12);
        assert!(diff < 1e-9, "removal must cancel: {diff}");
    }

    #[test]
    fn normalization_tracks_live_count() {
        // Density halves (at the untouched voxel) when an unrelated far
        // point doubles n.
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.5));
        inc.insert(Point::new(5.0, 5.0, 4.0));
        let before = inc.density(5, 5, 4);
        assert!(before > 0.0);
        inc.insert(Point::new(20.0, 18.0, 14.0)); // outside the first cylinder
        let after = inc.density(5, 5, 4);
        assert!((after - before / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cube_reads_zero() {
        let inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        assert!(inc.is_empty());
        assert_eq!(inc.density(0, 0, 0), 0.0);
        assert!(inc.snapshot().as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "empty cube")]
    fn remove_from_empty_panics() {
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        inc.remove(&Point::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn clear_resets() {
        let mut inc = IncrementalStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0));
        inc.insert(Point::new(12.0, 10.0, 8.0));
        inc.clear();
        assert!(inc.is_empty());
        assert_eq!(inc.density(12, 10, 8), 0.0);
    }

    #[test]
    fn window_matches_batch_of_survivors() {
        // Time-ordered stream over a window of 4.0 time units.
        let mut points = synth::uniform(60, domain().extent(), 33).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0), 4.0);
        for &p in &points {
            win.push(p);
        }
        let newest = points.last().unwrap().t;
        let survivors: Vec<Point> = points
            .iter()
            .filter(|p| p.t >= newest - 4.0)
            .copied()
            .collect();
        assert_eq!(win.len(), survivors.len());
        let diff = batch(&survivors).max_rel_diff(&win.cube().snapshot(), 1e-12);
        assert!(diff < 1e-8, "window diverges from batch: {diff}");
    }

    #[test]
    fn push_reports_evictions() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        assert_eq!(win.push(Point::new(5.0, 5.0, 0.5)), 0);
        assert_eq!(win.push(Point::new(6.0, 6.0, 1.0)), 0);
        // t=4: cutoff 2.0 evicts both earlier events.
        assert_eq!(win.push(Point::new(7.0, 7.0, 4.0)), 2);
        assert_eq!(win.len(), 1);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_push_panics() {
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(2.0, 1.0), 2.0);
        win.push(Point::new(5.0, 5.0, 3.0));
        win.push(Point::new(5.0, 5.0, 1.0));
    }

    #[test]
    fn rebuild_matches_incremental_state() {
        let mut points = synth::uniform(30, domain().extent(), 34).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        let mut win = SlidingWindowStkde::<f64>::new(domain(), Bandwidth::new(3.0, 2.0), 5.0);
        for &p in &points {
            win.push(p);
        }
        let before = win.cube().snapshot();
        win.rebuild();
        let after = win.cube().snapshot();
        assert!(before.max_rel_diff(&after, 1e-12) < 1e-8);
        assert_eq!(win.cube().len(), win.len());
    }

    #[test]
    fn f32_drift_stays_small_over_churn() {
        // 200 insert/evict pairs on an f32 grid: drift must stay tiny.
        let mut win = SlidingWindowStkde::<f32>::new(domain(), Bandwidth::new(3.0, 2.0), 1.0);
        let points = synth::uniform(200, domain().extent(), 35).into_vec();
        let mut sorted = points;
        sorted.sort_by(|a, b| a.t.total_cmp(&b.t));
        for &p in &sorted {
            win.push(p);
        }
        let drifted = win.cube().snapshot();
        win.rebuild();
        let clean = win.cube().snapshot();
        let diff = drifted.max_abs_diff(&clean);
        assert!(diff < 1e-4, "f32 churn drift too large: {diff}");
    }
}
