//! The unified STKDE engine: algorithm selection, configuration, execution.

use crate::algorithms::{pb, pb_bar, pb_disk, pb_sym, vb, vb_dec};
use crate::error::{default_memory_budget, StkdeError};
use crate::model;
use crate::parallel::{dd, dr, pd, pd_rep, pd_sched};
use crate::problem::Problem;
use crate::timing::PhaseTimings;
use stkde_data::PointSet;
use stkde_grid::{Bandwidth, Decomp, Domain, Grid3, Scalar};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel};

/// Which STKDE algorithm to run (the paper's full lineup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// Voxel-based gold standard (Algorithm 1).
    Vb,
    /// Voxel-based with point blocking (§6.2).
    VbDec,
    /// Point-based (Algorithm 2).
    Pb,
    /// Point-based, spatial invariant hoisted (§3.2).
    PbDisk,
    /// Point-based, temporal invariant hoisted (§3.2).
    PbBar,
    /// Point-based, both invariants hoisted (Algorithm 3).
    PbSym,
    /// Parallel: domain replication (Algorithm 4).
    PbSymDr,
    /// Parallel: domain decomposition (Algorithm 5).
    PbSymDd {
        /// Subdomain lattice shape.
        decomp: Decomp,
    },
    /// Parallel: phased point decomposition (Algorithm 6).
    PbSymPd {
        /// Requested lattice shape (auto-adjusted to ≥ 2·bandwidth).
        decomp: Decomp,
    },
    /// Parallel: point decomposition with load-aware coloring + DAG
    /// scheduling (§5.2).
    PbSymPdSched {
        /// Requested lattice shape (auto-adjusted).
        decomp: Decomp,
    },
    /// Parallel: point decomposition with critical-path replication
    /// (lexicographic coloring) (§5.2).
    PbSymPdRep {
        /// Requested lattice shape (auto-adjusted).
        decomp: Decomp,
    },
    /// Parallel: replication on top of load-aware scheduling — the
    /// `PB-SYM-PD-SCHED-REP` of Figure 15.
    PbSymPdSchedRep {
        /// Requested lattice shape (auto-adjusted).
        decomp: Decomp,
    },
    /// Pick an algorithm from the cost model (the parametric model the
    /// paper's conclusion calls for).
    Auto,
}

impl Algorithm {
    /// The paper's name for this algorithm.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Vb => "VB",
            Algorithm::VbDec => "VB-DEC",
            Algorithm::Pb => "PB",
            Algorithm::PbDisk => "PB-DISK",
            Algorithm::PbBar => "PB-BAR",
            Algorithm::PbSym => "PB-SYM",
            Algorithm::PbSymDr => "PB-SYM-DR",
            Algorithm::PbSymDd { .. } => "PB-SYM-DD",
            Algorithm::PbSymPd { .. } => "PB-SYM-PD",
            Algorithm::PbSymPdSched { .. } => "PB-SYM-PD-SCHED",
            Algorithm::PbSymPdRep { .. } => "PB-SYM-PD-REP",
            Algorithm::PbSymPdSchedRep { .. } => "PB-SYM-PD-SCHED-REP",
            Algorithm::Auto => "AUTO",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one STKDE computation.
#[derive(Debug, Clone)]
pub struct StkdeResult<S> {
    /// The density grid.
    pub grid: Grid3<S>,
    /// Phase timing breakdown.
    pub timings: PhaseTimings,
    /// The algorithm that actually ran (resolved from `Auto` if needed).
    pub algorithm: Algorithm,
    /// Worker threads used.
    pub threads: usize,
}

/// Builder-style front door to the STKDE engine.
///
/// ```
/// use stkde_core::{Stkde, Algorithm};
/// use stkde_grid::{Domain, GridDims, Bandwidth, Decomp};
/// use stkde_data::{Point, PointSet};
///
/// let domain = Domain::from_dims(GridDims::new(24, 24, 12));
/// let points = PointSet::from_vec(vec![Point::new(12.0, 12.0, 6.0)]);
/// let result = Stkde::new(domain, Bandwidth::new(3.0, 2.0))
///     .algorithm(Algorithm::PbSymDd { decomp: Decomp::cubic(4) })
///     .threads(2)
///     .compute::<f32>(&points)
///     .unwrap();
/// assert_eq!(result.algorithm.name(), "PB-SYM-DD");
/// ```
#[derive(Debug, Clone)]
pub struct Stkde<K = Epanechnikov> {
    domain: Domain,
    bw: Bandwidth,
    algorithm: Algorithm,
    threads: usize,
    memory_limit: usize,
    kernel: K,
}

impl Stkde<Epanechnikov> {
    /// New engine over a domain and bandwidth, with the default
    /// Epanechnikov kernel, `PB-SYM`, and one thread.
    pub fn new(domain: Domain, bw: Bandwidth) -> Self {
        Self {
            domain,
            bw,
            algorithm: Algorithm::PbSym,
            threads: 1,
            memory_limit: default_memory_budget(),
            kernel: Epanechnikov,
        }
    }
}

impl<K: SpaceTimeKernel> Stkde<K> {
    /// Use a different separable space-time kernel.
    pub fn kernel<K2: SpaceTimeKernel>(self, kernel: K2) -> Stkde<K2> {
        Stkde {
            domain: self.domain,
            bw: self.bw,
            algorithm: self.algorithm,
            threads: self.threads,
            memory_limit: self.memory_limit,
            kernel,
        }
    }

    /// Select the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Set the number of worker threads (parallel algorithms only).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Cap the memory the computation may use (DR replicas, REP buffers).
    pub fn memory_limit(mut self, bytes: usize) -> Self {
        self.memory_limit = bytes;
        self
    }

    /// The problem description this engine solves for `n` points.
    pub fn problem(&self, n: usize) -> Problem {
        Problem::new(self.domain, self.bw, n)
    }

    /// Run a *sparse-grid* computation (extension, see [`crate::sparse`]):
    /// sequential sparse `PB-SYM` for one thread, shared-grid parallel
    /// sparse scatter (time slabs + lock-free brick allocation) otherwise.
    /// The configured `algorithm` is ignored — sparseness is a grid-backend
    /// choice, not one of the paper's algorithm variants.
    pub fn compute_sparse<S: Scalar>(
        &self,
        points: &PointSet,
    ) -> Result<crate::sparse::SparseResult<S>, StkdeError> {
        let problem = self.problem(points.len());
        let pts = points.as_slice();
        let (grid, timings) = if self.threads <= 1 {
            crate::sparse::run(&problem, &self.kernel, pts)
        } else {
            crate::sparse::run_par(&problem, &self.kernel, pts, self.threads)?
        };
        Ok(crate::sparse::SparseResult {
            grid,
            timings,
            threads: self.threads,
        })
    }

    /// Run the computation.
    pub fn compute<S: Scalar>(&self, points: &PointSet) -> Result<StkdeResult<S>, StkdeError> {
        let problem = self.problem(points.len());
        let pts = points.as_slice();
        let threads = self.threads;
        if threads == 0 {
            return Err(StkdeError::InvalidConfig("threads must be > 0".into()));
        }
        let algorithm = match self.algorithm {
            Algorithm::Auto => model::select(&problem, threads, self.memory_limit),
            other => other,
        };
        let (grid, timings) = match algorithm {
            Algorithm::Vb => Ok(vb::run(&problem, &self.kernel, pts)),
            Algorithm::VbDec => Ok(vb_dec::run(&problem, &self.kernel, pts)),
            Algorithm::Pb => Ok(pb::run(&problem, &self.kernel, pts)),
            Algorithm::PbDisk => Ok(pb_disk::run(&problem, &self.kernel, pts)),
            Algorithm::PbBar => Ok(pb_bar::run(&problem, &self.kernel, pts)),
            Algorithm::PbSym => Ok(pb_sym::run(&problem, &self.kernel, pts)),
            Algorithm::PbSymDr => dr::run(&problem, &self.kernel, pts, threads, self.memory_limit),
            Algorithm::PbSymDd { decomp } => dd::run(&problem, &self.kernel, pts, decomp, threads),
            Algorithm::PbSymPd { decomp } => pd::run(&problem, &self.kernel, pts, decomp, threads),
            Algorithm::PbSymPdSched { decomp } => pd_sched::run(
                &problem,
                &self.kernel,
                pts,
                decomp,
                threads,
                pd_sched::Ordering::LoadAware,
            ),
            Algorithm::PbSymPdRep { decomp } => pd_rep::run(
                &problem,
                &self.kernel,
                pts,
                decomp,
                threads,
                pd_sched::Ordering::Lexicographic,
                self.memory_limit,
            ),
            Algorithm::PbSymPdSchedRep { decomp } => pd_rep::run(
                &problem,
                &self.kernel,
                pts,
                decomp,
                threads,
                pd_sched::Ordering::LoadAware,
                self.memory_limit,
            ),
            Algorithm::Auto => unreachable!("Auto resolved above"),
        }?;
        Ok(StkdeResult {
            grid,
            timings,
            algorithm,
            threads,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_data::{synth, Point};
    use stkde_grid::GridDims;

    fn engine() -> (Stkde, PointSet) {
        let domain = Domain::from_dims(GridDims::new(24, 24, 12));
        let points = synth::uniform(40, domain.extent(), 17);
        (Stkde::new(domain, Bandwidth::new(3.0, 2.0)), points)
    }

    #[test]
    fn every_algorithm_agrees_with_vb() {
        let (engine, points) = engine();
        let vb = engine
            .clone()
            .algorithm(Algorithm::Vb)
            .compute::<f64>(&points)
            .unwrap();
        let d = Decomp::cubic(4);
        for alg in [
            Algorithm::VbDec,
            Algorithm::Pb,
            Algorithm::PbDisk,
            Algorithm::PbBar,
            Algorithm::PbSym,
            Algorithm::PbSymDr,
            Algorithm::PbSymDd { decomp: d },
            Algorithm::PbSymPd { decomp: d },
            Algorithm::PbSymPdSched { decomp: d },
            Algorithm::PbSymPdRep { decomp: d },
            Algorithm::PbSymPdSchedRep { decomp: d },
        ] {
            let r = engine
                .clone()
                .algorithm(alg)
                .threads(2)
                .compute::<f64>(&points)
                .unwrap();
            let diff = vb.grid.max_rel_diff(&r.grid, 1e-13);
            assert!(diff < 1e-9, "{alg} differs from VB by {diff}");
            assert_eq!(r.algorithm.name(), alg.name());
            assert_eq!(r.threads, 2);
        }
    }

    #[test]
    fn auto_resolves_to_concrete_algorithm() {
        let (engine, points) = engine();
        let r = engine
            .algorithm(Algorithm::Auto)
            .threads(2)
            .compute::<f32>(&points)
            .unwrap();
        assert_ne!(r.algorithm.name(), "AUTO");
    }

    #[test]
    fn zero_threads_rejected() {
        let (engine, points) = engine();
        assert!(matches!(
            engine.threads(0).compute::<f32>(&points),
            Err(StkdeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn custom_kernel_flows_through() {
        let domain = Domain::from_dims(GridDims::new(16, 16, 8));
        let points = PointSet::from_vec(vec![Point::new(8.0, 8.0, 4.0)]);
        let r = Stkde::new(domain, Bandwidth::new(3.0, 2.0))
            .kernel(stkde_kernels::Uniform)
            .algorithm(Algorithm::PbSym)
            .compute::<f64>(&points)
            .unwrap();
        // Uniform kernel: flat density inside the cylinder.
        let a = r.grid.get(8, 8, 4);
        let b = r.grid.get(9, 8, 4);
        assert!(a > 0.0 && (a - b).abs() < 1e-12);
    }

    #[test]
    fn empty_points_supported_everywhere() {
        let (engine, _) = engine();
        let empty = PointSet::new();
        for alg in [
            Algorithm::Vb,
            Algorithm::PbSym,
            Algorithm::PbSymDr,
            Algorithm::PbSymPdSchedRep {
                decomp: Decomp::cubic(2),
            },
        ] {
            let r = engine
                .clone()
                .algorithm(alg)
                .threads(2)
                .compute::<f64>(&empty)
                .unwrap();
            assert!(r.grid.as_slice().iter().all(|&v| v == 0.0), "{alg}");
        }
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(Algorithm::PbSymDr.to_string(), "PB-SYM-DR");
        assert_eq!(
            Algorithm::PbSymPdSchedRep {
                decomp: Decomp::cubic(2)
            }
            .to_string(),
            "PB-SYM-PD-SCHED-REP"
        );
    }
}
