//! Temporal-slab sharding of the sliding-window cube (serve path).
//!
//! The serve tier's scaling problem is a single cube behind a single
//! lock: every long read blocks ingest and vice versa. This module
//! splits the cube into T-axis slab shards — the same balanced
//! partition the distmem backend proved bit-identical
//! ([`crate::distmem::slab`]) — and separates *writer state* from
//! *published state*:
//!
//! - [`ShardedWindowStkde`] is writer-owned: one slab grid + scratch per
//!   shard, mutated in place. A batch fans across shards by temporal
//!   footprint and the per-shard applications run in parallel on the
//!   rayon pool — slabs are disjoint memory, so no locks are involved.
//! - [`CubeSnapshot`] is the published copy-on-write view: after each
//!   batch the writer clones only the slabs whose *epoch* changed and
//!   reuses the untouched `Arc`s ([`ShardedWindowStkde::publish`]).
//!   A reader holding a snapshot sees one immutable, consistent cube —
//!   reads never block ingest and can never observe a torn state.
//!
//! **Bit-identity.** The slabs partition the T axis, so every voxel has
//! exactly one owner shard, and each shard applies the same operation
//! sequence (evictions in eviction order, then inserts in batch order)
//! clipped to its slab. Per-voxel contribution values are
//! clip-independent (the scatter engine's axis tables are indexed by
//! global coordinates), so every voxel accumulates the same values in
//! the same order as the single-lock [`SlidingWindowStkde`] — the cubes
//! are bit-identical, whatever the shard count. Aggregate reads
//! preserve this too: [`CubeSnapshot::density_range`] folds slabs in
//! ascending T through one accumulator
//! ([`stkde_grid::stats::range_stats_into`]), reproducing the exact
//! float summation sequence of the unsharded cube.
//!
//! **Epochs.** Each shard carries an epoch: the cube generation at its
//! last content change. Epochs are drawn from the monotone generation
//! counter, so an `(t0, t1, epoch)` triple can never repeat with
//! different contents — not even across [`reshard`]
//! ([`ShardedWindowStkde::reshard`]) — which makes the triple (plus the
//! live count `n`, which scales every normalized read) a sound cache
//! key: see [`CubeSnapshot::cache_epoch_key`].

use crate::distmem::apply::apply_point_slab;
use crate::distmem::slab;
use crate::kernel_apply::{write_region, Scratch};
use crate::problem::Problem;
use rayon::prelude::*;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;
use stkde_data::Point;
use stkde_grid::{
    stats, ApproxStats, Bandwidth, Domain, Grid3, GridDims, GridStats, MipPyramid, Scalar,
    VoxelRange,
};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel};

pub use crate::incremental::BatchPush;

/// Hard ceiling on the shard count, bounding per-shard metric label
/// cardinality and publish bookkeeping. Grids rarely have more than a
/// few hundred T layers; past ~64 slabs the per-shard work is too small
/// to amortize the fan-out anyway.
pub const MAX_SHARDS: usize = 64;

/// One shard's writer state: an offset slab grid plus its scatter
/// scratch, so parallel shard application shares nothing.
#[derive(Debug)]
struct WriterShard<S> {
    /// First global T layer owned (inclusive).
    t0: usize,
    /// One past the last global T layer owned.
    t1: usize,
    /// The slab accumulator: layer `l` holds global layer `t0 + l`.
    grid: Grid3<S>,
    /// Per-shard scatter buffers (reused across batches).
    scratch: Scratch<S>,
    /// Cube generation at this shard's last content change.
    epoch: u64,
    /// Epoch of the last published copy of this slab.
    published_epoch: u64,
    /// Cylinder applications that actually wrote, in the last batch.
    last_batch_ops: u64,
}

impl<S: Scalar> WriterShard<S> {
    fn new(dims: GridDims, t0: usize, t1: usize) -> Self {
        Self {
            t0,
            t1,
            grid: Grid3::zeros(GridDims::new(dims.gx, dims.gy, t1 - t0)),
            scratch: Scratch::default(),
            epoch: 0,
            // `u64::MAX` forces the first publish to copy the (empty)
            // slab, so a snapshot exists from generation 0.
            published_epoch: u64::MAX,
            last_batch_ops: 0,
        }
    }

    /// This shard's slab as a global-coordinate voxel range.
    fn clip(&self, dims: GridDims) -> VoxelRange {
        VoxelRange {
            x0: 0,
            x1: dims.gx,
            y0: 0,
            y1: dims.gy,
            t0: self.t0,
            t1: self.t1,
        }
    }
}

/// One shard's published (immutable) slab: the copy-on-write unit.
#[derive(Debug)]
pub struct ShardPlanes<S> {
    /// First global T layer held (inclusive).
    pub t0: usize,
    /// One past the last global T layer held.
    pub t1: usize,
    /// Cube generation at this slab's last content change.
    pub epoch: u64,
    /// The unnormalized slab accumulator (layer `l` = global `t0 + l`).
    pub grid: Grid3<S>,
    /// Lazily built mip pyramid over this slab (the approximate read
    /// path). Living inside the copy-on-write `Arc`, a built pyramid
    /// rides along with every snapshot that shares the slab — only slabs
    /// whose epoch moved get a fresh `ShardPlanes` and re-reduce on the
    /// next approximate read.
    pyramid: OnceLock<Arc<MipPyramid>>,
}

impl<S: Scalar> ShardPlanes<S> {
    fn new(t0: usize, t1: usize, epoch: u64, grid: Grid3<S>) -> Self {
        Self {
            t0,
            t1,
            epoch,
            grid,
            pyramid: OnceLock::new(),
        }
    }

    /// The slab's mip pyramid, built (rayon-parallel) on first use and
    /// cached for the lifetime of this copy-on-write slab.
    pub fn pyramid(&self) -> &Arc<MipPyramid> {
        self.pyramid
            .get_or_init(|| Arc::new(MipPyramid::build(&self.grid)))
    }

    /// The pyramid if a previous read already built it.
    pub fn pyramid_if_built(&self) -> Option<&Arc<MipPyramid>> {
        self.pyramid.get()
    }
}

/// A region answer from the approximate read path.
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxRange {
    /// Normalized aggregates. On an approximate answer (`level > 0`),
    /// `nonzero` is a certified *upper bound* on the true non-zero count
    /// (every other field carries the `error_bound` guarantee below); on
    /// the exact path it is exact.
    pub stats: GridStats,
    /// Pyramid level served from (`0` = exact path).
    pub level: usize,
    /// Certified per-voxel density error bound: `|approx − exact| ≤
    /// error_bound` for `max` and `min`, and `|sum_approx − sum_exact| ≤
    /// error_bound · total`. Includes the caller-supplied additive base
    /// term (kernel LUT error) and a float-summation allowance.
    pub error_bound: f64,
    /// Pyramid cells visited to produce the answer (0 on the exact path).
    pub cells: usize,
}

/// A time-plane answer from the approximate read path: cell means at the
/// serving level's spatial resolution (`level = 0` ⇒ the exact full-
/// resolution plane).
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxSlice {
    /// Pyramid level served from (`0` = exact path).
    pub level: usize,
    /// Base voxels per cell edge (`2^level`).
    pub cell: usize,
    /// Cells per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Row-major `height × width` normalized densities; base voxel
    /// `(x, y)` maps to `values[(y >> level) · width + (x >> level)]`.
    pub values: Vec<f64>,
    /// Certified per-voxel density error bound (as in [`ApproxRange`]).
    pub error_bound: f64,
}

/// What [`CubeSnapshot::ensure_pyramids`] did (for build metrics).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PyramidBuildReport {
    /// Slab pyramids built by this call (0 = all were already resident).
    pub built: usize,
    /// Wall seconds spent building.
    pub seconds: f64,
    /// Total resident pyramid bytes across all slabs after the call.
    pub bytes: usize,
}

/// An immutable, consistent view of the whole sharded cube, published
/// atomically by the writer after each batch. Cheap to hold: untouched
/// slabs are shared `Arc`s with the previous snapshot.
///
/// Read methods mirror [`crate::IncrementalStkde`] exactly (same
/// normalization, same empty-cube conventions) and are bit-identical to
/// reads of the single-lock cube at the same state.
#[derive(Debug)]
pub struct CubeSnapshot<S> {
    domain: Domain,
    /// Live (in-window) event count — the estimator's `1/n`.
    n: usize,
    generation: u64,
    rebuilds: usize,
    newest: Option<f64>,
    shards: Vec<Arc<ShardPlanes<S>>>,
}

impl<S: Scalar> CubeSnapshot<S> {
    /// The domain this snapshot discretizes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Events inside the window at publish time.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no events contribute.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The cube generation this snapshot was published at.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Rebuilds performed up to publish time.
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// Arrival time of the newest in-window event at publish time.
    pub fn newest_time(&self) -> Option<f64> {
        self.newest
    }

    /// The published shard slabs, ascending in T.
    pub fn shards(&self) -> &[Arc<ShardPlanes<S>>] {
        &self.shards
    }

    /// The shard owning global T layer `t` (`t` must be in range).
    fn owner(&self, t: usize) -> &ShardPlanes<S> {
        let gt = self.domain.dims().gt;
        &self.shards[slab::owner_of(gt, self.shards.len(), t)]
    }

    /// Normalized density at voxel `(x, y, t)` (zero when empty); the
    /// coordinates must be inside the grid.
    pub fn density(&self, x: usize, y: usize, t: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let plane = self.owner(t);
        plane.grid.get(x, y, t - plane.t0).to_f64() / self.n as f64
    }

    /// Bounds-checked [`density`](Self::density), `None` outside the grid.
    pub fn density_checked(&self, x: usize, y: usize, t: usize) -> Option<f64> {
        if self.domain.dims().contains(x, y, t) {
            Some(self.density(x, y, t))
        } else {
            None
        }
    }

    /// Summary statistics of the normalized density inside a voxel box,
    /// clipped to the grid — bit-identical to
    /// [`crate::IncrementalStkde::density_range`] at the same state: the
    /// fold continues one accumulator across slabs in ascending T, so
    /// the float summation sequence matches the unsharded iteration.
    pub fn density_range(&self, r: VoxelRange) -> GridStats {
        let dims = self.domain.dims();
        let r = r.clipped(dims);
        let mut s = GridStats {
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            nonzero: 0,
            total: r.volume(),
        };
        if r.is_empty() {
            s.total = 0;
        } else {
            for plane in self.touched(r.t0, r.t1) {
                let local = VoxelRange {
                    t0: r.t0.max(plane.t0) - plane.t0,
                    t1: r.t1.min(plane.t1) - plane.t0,
                    ..r
                };
                stats::range_stats_into(&plane.grid, local, &mut s);
            }
        }
        if self.n == 0 {
            // No contributions: the accumulator is identically zero and
            // the estimator is defined as zero.
            if s.total > 0 {
                s.max = 0.0;
                s.min = 0.0;
            }
            return s;
        }
        let inv_n = 1.0 / self.n as f64;
        s.sum *= inv_n;
        s.max *= inv_n;
        s.min *= inv_n;
        s
    }

    /// The normalized time plane at `t` as a row-major `Gy × Gx` vector,
    /// or `None` when `t` is out of range.
    pub fn density_slice(&self, t: usize) -> Option<Vec<f64>> {
        if t >= self.domain.dims().gt {
            return None;
        }
        let inv_n = if self.n == 0 {
            0.0
        } else {
            1.0 / self.n as f64
        };
        let plane = self.owner(t);
        Some(
            plane
                .grid
                .time_slice(t - plane.t0)
                .iter()
                .map(|&v| v.to_f64() * inv_n)
                .collect(),
        )
    }

    /// Build any missing slab pyramids now (they are otherwise built
    /// lazily on first approximate read) and report what happened, for
    /// the serve tier's build-seconds histogram and resident-bytes gauge.
    pub fn ensure_pyramids(&self) -> PyramidBuildReport {
        let mut report = PyramidBuildReport {
            built: 0,
            seconds: 0.0,
            bytes: 0,
        };
        for plane in &self.shards {
            if plane.pyramid_if_built().is_none() {
                let start = Instant::now();
                let p = plane.pyramid();
                report.seconds += start.elapsed().as_secs_f64();
                report.built += 1;
                report.bytes += p.heap_bytes();
            } else {
                report.bytes += plane.pyramid().heap_bytes();
            }
        }
        report
    }

    /// Resident pyramid bytes across slabs (counting only pyramids some
    /// read has already built).
    pub fn pyramid_bytes(&self) -> usize {
        self.shards
            .iter()
            .filter_map(|p| p.pyramid_if_built())
            .map(|p| p.heap_bytes())
            .sum()
    }

    /// Exact peak density magnitude of the whole cube,
    /// `max(|max|, |min|) / n` — the reference scale for relative error
    /// budgets. Pyramid max/min propagate exactly, so this equals the
    /// true grid peak (builds pyramids on first use). Zero when empty.
    pub fn peak_density(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let mut peak = 0.0f64;
        for plane in &self.shards {
            match plane.pyramid().root() {
                Some(root) => peak = peak.max(root.max.abs()).max(root.min.abs()),
                // A one-voxel slab has no pyramid levels; read it directly.
                None => peak = peak.max(plane.grid.as_slice()[0].to_f64().abs()),
            }
        }
        peak / self.n as f64
    }

    /// Error-bounded approximate region aggregates.
    ///
    /// Walks down from the coarsest pyramid level until the certified
    /// per-voxel bound fits the budget `max_err · peak_density()`
    /// (`base_err` — e.g. the serve kernel's LUT interpolation error, in
    /// density units — is part of the bound); serves from that level, or
    /// falls through to the exact path ([`density_range`]
    /// (Self::density_range), bit-identical) when no level fits or
    /// `max_err ≤ 0`. The fold visits slabs in ascending T with the same
    /// clipping as the exact path, so the two agree on which voxels are
    /// in the box.
    pub fn density_range_approx(&self, r: VoxelRange, max_err: f64, base_err: f64) -> ApproxRange {
        let dims = self.domain.dims();
        let r = r.clipped(dims);
        if max_err > 0.0 && self.n > 0 && !r.is_empty() {
            let budget = max_err * self.peak_density();
            let inv_n = 1.0 / self.n as f64;
            let deepest = self
                .touched(r.t0, r.t1)
                .map(|p| p.pyramid().levels())
                .max()
                .unwrap_or(0);
            for level in (1..=deepest).rev() {
                let mut acc = ApproxStats {
                    sum: 0.0,
                    max: f64::NEG_INFINITY,
                    min: f64::INFINITY,
                    nonzero_upper: 0,
                    total: 0,
                    env: 0.0,
                    scale: 0.0,
                    cells: 0,
                };
                for plane in self.touched(r.t0, r.t1) {
                    let local = VoxelRange {
                        t0: r.t0.max(plane.t0) - plane.t0,
                        t1: r.t1.min(plane.t1) - plane.t0,
                        ..r
                    };
                    let p = plane.pyramid();
                    // A slab shallower than the walk serves from its own
                    // coarsest level; a one-voxel slab is served exactly.
                    let slab_level = level.min(p.levels());
                    if slab_level == 0 {
                        let s = stats::range_stats(&plane.grid, local);
                        acc.sum += s.sum;
                        acc.max = acc.max.max(s.max);
                        acc.min = acc.min.min(s.min);
                        acc.nonzero_upper += s.nonzero;
                        acc.total += s.total;
                        acc.scale = acc.scale.max(s.max.abs()).max(s.min.abs());
                        continue;
                    }
                    let a = p.range_estimate(slab_level, local);
                    acc.sum += a.sum;
                    acc.max = acc.max.max(a.max);
                    acc.min = acc.min.min(a.min);
                    acc.nonzero_upper += a.nonzero_upper;
                    acc.total += a.total;
                    acc.env = acc.env.max(a.env);
                    acc.scale = acc.scale.max(a.scale);
                    acc.cells += a.cells;
                }
                let bound = (acc.env + acc.rounding_slack()) * inv_n + base_err;
                if bound <= budget {
                    return ApproxRange {
                        stats: GridStats {
                            sum: acc.sum * inv_n,
                            max: acc.max * inv_n,
                            min: acc.min * inv_n,
                            nonzero: acc.nonzero_upper,
                            total: acc.total,
                        },
                        level,
                        error_bound: bound,
                        cells: acc.cells,
                    };
                }
            }
        }
        ApproxRange {
            stats: self.density_range(r),
            level: 0,
            error_bound: base_err,
            cells: 0,
        }
    }

    /// Error-bounded approximate time plane, or `None` when `t` is out
    /// of range. Same level walk and budget semantics as
    /// [`density_range_approx`](Self::density_range_approx); the exact
    /// fallback returns the full-resolution plane of
    /// [`density_slice`](Self::density_slice) with `level = 0`.
    pub fn density_slice_approx(
        &self,
        t: usize,
        max_err: f64,
        base_err: f64,
    ) -> Option<ApproxSlice> {
        let dims = self.domain.dims();
        if t >= dims.gt {
            return None;
        }
        if max_err > 0.0 && self.n > 0 {
            let budget = max_err * self.peak_density();
            let inv_n = 1.0 / self.n as f64;
            let plane = self.owner(t);
            let p = plane.pyramid();
            for level in (1..=p.levels()).rev() {
                let est = p.slice_estimate(level, t - plane.t0);
                let bound = (est.env + est.rounding_slack()) * inv_n + base_err;
                if bound <= budget {
                    return Some(ApproxSlice {
                        level,
                        cell: 1 << level,
                        width: est.width,
                        height: est.height,
                        values: est.values.iter().map(|v| v * inv_n).collect(),
                        error_bound: bound,
                    });
                }
            }
        }
        self.density_slice(t).map(|values| ApproxSlice {
            level: 0,
            cell: 1,
            width: dims.gx,
            height: dims.gy,
            values,
            error_bound: base_err,
        })
    }

    /// The shards whose slabs intersect global layers `[t0, t1)`, in
    /// ascending T order.
    pub fn touched(&self, t0: usize, t1: usize) -> impl Iterator<Item = &Arc<ShardPlanes<S>>> {
        let gt = self.domain.dims().gt;
        slab::owners_of_layers(gt, self.shards.len(), t0, t1).map(|i| &self.shards[i])
    }

    /// A cache key fragment pinning everything a normalized read over
    /// global layers `[t0, t1)` depends on: the live count `n` (every
    /// normalized value scales by `1/n`) and the `(t0, t1, epoch)` of
    /// each intersecting shard. Epochs are generations — monotone across
    /// reshards — so a stale entry can never collide with a fresh key.
    /// Writes that only touch *other* slabs (and keep `n` unchanged)
    /// leave the key intact, which is the point: per-shard epoch keying
    /// survives foreign-shard ingest where a whole-cube generation key
    /// would invalidate everything.
    pub fn cache_epoch_key(&self, t0: usize, t1: usize) -> String {
        let mut key = format!("n{}", self.n);
        for plane in self.touched(t0, t1) {
            // Writing to a String cannot fail; ignore the fmt plumbing.
            let _ = write!(key, ",{}-{}@{}", plane.t0, plane.t1, plane.epoch);
        }
        key
    }

    /// Concatenate the slabs into one full (unnormalized) grid. The
    /// layout is T-outermost, so this is a straight copy in shard order
    /// — used by conformance tests to compare against the single-lock
    /// cube with `Grid3`'s bit-exact equality.
    pub fn assemble(&self) -> Grid3<S> {
        let dims = self.domain.dims();
        let mut data = Vec::with_capacity(dims.gx * dims.gy * dims.gt);
        for plane in &self.shards {
            data.extend_from_slice(plane.grid.as_slice());
        }
        Grid3::from_vec(dims, data)
    }
}

/// What a batch did to each shard (for per-shard ingest metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardBatchStats {
    /// First global T layer of the shard.
    pub t0: usize,
    /// One past the last global T layer of the shard.
    pub t1: usize,
    /// The shard's current epoch.
    pub epoch: u64,
    /// Cylinder applications (evictions + inserts) that intersected the
    /// slab in the last batch.
    pub ops: u64,
}

/// A sliding-window STKDE cube sharded into temporal slabs, with
/// copy-on-write snapshot publication.
///
/// Semantics mirror [`SlidingWindowStkde`](crate::SlidingWindowStkde)
/// exactly — same time-ordering contract, same eviction rule, same
/// generation accounting, bit-identical voxel values (see the module
/// docs for the argument) — but ingest applies each batch to all shards
/// in parallel, and reads go through published [`CubeSnapshot`]s
/// instead of locking the writer.
#[derive(Debug)]
pub struct ShardedWindowStkde<S, K = Epanechnikov> {
    domain: Domain,
    bw: Bandwidth,
    kernel: K,
    window: f64,
    shards: Vec<WriterShard<S>>,
    points: VecDeque<Point>,
    n: usize,
    generation: u64,
    auto_rebuild: Option<usize>,
    churn: usize,
    rebuilds: usize,
    /// Last published copy of each slab (`Arc`s shared with snapshots).
    published: Vec<Arc<ShardPlanes<S>>>,
}

impl<S: Scalar> ShardedWindowStkde<S, Epanechnikov> {
    /// Empty sharded window with the default Epanechnikov kernel.
    /// `shards` is clamped to `[1, min(Gt, MAX_SHARDS)]`, so `shards = 1`
    /// is the degenerate single-slab cube and a request larger than the
    /// T axis cannot create empty slabs.
    ///
    /// # Panics
    /// Panics if `window` is not positive and finite.
    pub fn new(domain: Domain, bw: Bandwidth, window: f64, shards: usize) -> Self {
        Self::with_kernel(domain, bw, window, shards, Epanechnikov)
    }
}

impl<S: Scalar, K: SpaceTimeKernel> ShardedWindowStkde<S, K> {
    /// Empty sharded window with an explicit kernel (see [`new`](ShardedWindowStkde::new)).
    ///
    /// # Panics
    /// Panics if `window` is not positive and finite.
    pub fn with_kernel(
        domain: Domain,
        bw: Bandwidth,
        window: f64,
        shards: usize,
        kernel: K,
    ) -> Self {
        assert!(
            window > 0.0 && window.is_finite(),
            "window must be positive and finite"
        );
        let mut this = Self {
            domain,
            bw,
            kernel,
            window,
            shards: Vec::new(),
            points: VecDeque::new(),
            n: 0,
            generation: 0,
            auto_rebuild: None,
            churn: 0,
            rebuilds: 0,
            published: Vec::new(),
        };
        this.shards = this.make_shards(shards);
        this
    }

    fn make_shards(&self, requested: usize) -> Vec<WriterShard<S>> {
        let dims = self.domain.dims();
        let size = requested.clamp(1, dims.gt.min(MAX_SHARDS));
        (0..size)
            .map(|rank| {
                let (t0, t1) = slab::slab_bounds(dims.gt, size, rank);
                WriterShard::new(dims, t0, t1)
            })
            .collect()
    }

    /// Enable the drift-hygiene auto-rebuild (same cadence semantics as
    /// [`SlidingWindowStkde::auto_rebuild_every`](crate::SlidingWindowStkde::auto_rebuild_every)).
    ///
    /// # Panics
    /// Panics if `n` is zero.
    #[must_use]
    pub fn auto_rebuild_every(mut self, n: usize) -> Self {
        assert!(n > 0, "auto-rebuild cadence must be >= 1");
        self.auto_rebuild = Some(n);
        self
    }

    /// The domain this cube discretizes.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The bandwidths in use.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bw
    }

    /// The window length in time units.
    pub fn window(&self) -> f64 {
        self.window
    }

    /// Events currently inside the window.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the window holds no events.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The in-window events, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &Point> {
        self.points.iter()
    }

    /// Arrival time of the newest event, or `None` when empty.
    pub fn newest_time(&self) -> Option<f64> {
        self.points.back().map(|p| p.t)
    }

    /// Monotone mutation counter, advanced exactly like the single-lock
    /// window's (one step per eviction, one per non-empty insert batch,
    /// two per rebuild) — equal generations mean bit-identical cubes
    /// *across the two implementations*.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Drift-correcting rebuilds performed (manual + automatic).
    pub fn rebuilds(&self) -> usize {
        self.rebuilds
    }

    /// The live shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard stats of the most recent batch (slab bounds, epoch,
    /// applied ops), for the serve tier's per-shard metrics.
    pub fn shard_batch_stats(&self) -> Vec<ShardBatchStats> {
        self.shards
            .iter()
            .map(|s| ShardBatchStats {
                t0: s.t0,
                t1: s.t1,
                epoch: s.epoch,
                ops: s.last_batch_ops,
            })
            .collect()
    }

    /// A problem description with the estimator's `1/n` stripped, signed
    /// for insertion (+) or removal (−) — the incremental unit problem.
    fn unit_problem(&self, sign: f64) -> Problem {
        let mut p = Problem::new(self.domain, self.bw, 1);
        p.norm *= sign;
        p
    }

    /// Fan `removals` then `inserts` across all shards and apply them in
    /// parallel, each clipped to its slab. Slabs are disjoint memory, so
    /// the shard loop is embarrassingly parallel; within a shard the
    /// ops apply sequentially in the given order, which is what makes
    /// every voxel's accumulation order match the single-lock path.
    fn apply_ops(&mut self, removals: &[Point], inserts: &[Point]) {
        let remove = self.unit_problem(-1.0);
        let insert = self.unit_problem(1.0);
        let dims = self.domain.dims();
        let kernel = &self.kernel;
        self.shards.par_iter_mut().for_each(|shard| {
            let clip = shard.clip(dims);
            let mut ops = 0u64;
            for (problem, batch) in [(&remove, removals), (&insert, inserts)] {
                for p in batch {
                    if write_region(problem, p, clip).is_empty() {
                        continue;
                    }
                    apply_point_slab(
                        &mut shard.grid,
                        shard.t0,
                        problem,
                        kernel,
                        p,
                        clip,
                        &mut shard.scratch,
                    );
                    ops += 1;
                }
            }
            shard.last_batch_ops = ops;
        });
    }

    /// Stamp the current generation onto every shard whose last batch
    /// wrote something (content changed ⇒ new epoch).
    fn bump_epochs(&mut self) {
        let g = self.generation;
        for shard in &mut self.shards {
            if shard.last_batch_ops > 0 {
                shard.epoch = g;
            }
        }
    }

    /// Push a time-ordered batch — the same contract and bookkeeping as
    /// [`SlidingWindowStkde::push_batch`](crate::SlidingWindowStkde::push_batch):
    /// evictions against the last event's cutoff, in-batch age-outs
    /// skipped, survivors inserted, identical generation accounting.
    ///
    /// # Panics
    /// Panics if the batch is not internally time-ordered or starts
    /// before the newest event already pushed.
    pub fn push_batch(&mut self, batch: &[Point]) -> BatchPush {
        let Some((first, last)) = batch.first().zip(batch.last()) else {
            for shard in &mut self.shards {
                shard.last_batch_ops = 0;
            }
            return BatchPush::default();
        };
        if let Some(prev) = self.points.back() {
            assert!(
                first.t >= prev.t,
                "stream must be time-ordered: got t={} after t={}",
                first.t,
                prev.t
            );
        }
        assert!(
            batch.windows(2).all(|w| w[0].t <= w[1].t),
            "batch must be time-ordered"
        );
        let cutoff = last.t - self.window;
        let mut out = BatchPush::default();
        let mut evicted: Vec<Point> = Vec::new();
        while let Some(old) = self.points.front() {
            if old.t < cutoff {
                evicted.push(*old);
                self.points.pop_front();
                out.evicted += 1;
            } else {
                break;
            }
        }
        assert!(
            self.n >= evicted.len(),
            "evicting more events than are live"
        );
        // The batch is sorted, so survivors are a suffix.
        let split = batch.partition_point(|p| p.t < cutoff);
        out.skipped = split;
        let survivors = &batch[split..];
        out.inserted = survivors.len();

        self.apply_ops(&evicted, survivors);
        self.n -= evicted.len();
        self.n += survivors.len();
        // Mirror the single-lock generation accounting: one step per
        // `remove`, one per non-empty `insert_batch`.
        self.generation += out.evicted as u64;
        if !survivors.is_empty() {
            self.generation += 1;
        }
        self.bump_epochs();
        self.points.extend(survivors.iter().copied());
        self.churn += out.evicted;
        self.maybe_auto_rebuild();
        out
    }

    fn maybe_auto_rebuild(&mut self) {
        if let Some(n) = self.auto_rebuild {
            if self.churn >= n {
                self.rebuild();
            }
        }
    }

    /// Recompute every slab from the stored in-window points, clearing
    /// accumulated float drift. Bit-identical to the single-lock
    /// [`rebuild`](crate::SlidingWindowStkde::rebuild): both reduce to a
    /// sequential re-application of the live points in storage order
    /// onto a zeroed grid (clipped per slab here, which does not change
    /// per-voxel values or order).
    pub fn rebuild(&mut self) {
        let points: Vec<Point> = self.points.iter().copied().collect();
        self.rebuild_from(&points);
        // Mirror the single path: `clear` (+1) then the rebuild step (+1).
        self.generation += 2;
        self.n = points.len();
        self.churn = 0;
        self.rebuilds += 1;
        let g = self.generation;
        for shard in &mut self.shards {
            shard.epoch = g;
        }
    }

    /// Zero every slab and re-apply `points` in order, clipped per shard.
    fn rebuild_from(&mut self, points: &[Point]) {
        let insert = self.unit_problem(1.0);
        let dims = self.domain.dims();
        let kernel = &self.kernel;
        self.shards.par_iter_mut().for_each(|shard| {
            shard.grid.as_mut_slice().fill(S::from_f64(0.0));
            let clip = shard.clip(dims);
            for p in points {
                if write_region(&insert, p, clip).is_empty() {
                    continue;
                }
                apply_point_slab(
                    &mut shard.grid,
                    shard.t0,
                    &insert,
                    kernel,
                    p,
                    clip,
                    &mut shard.scratch,
                );
            }
            shard.last_batch_ops = 0;
        });
    }

    /// Repartition into `shards` slabs (clamped like
    /// [`new`](ShardedWindowStkde::new)) and rebuild from the live
    /// points. Counts as a rebuild; every new shard starts at the
    /// post-reshard generation, so cache keys minted under the old
    /// layout can never match the new one. Returns the actual count.
    pub fn reshard(&mut self, shards: usize) -> usize {
        self.shards = self.make_shards(shards);
        self.published.clear();
        self.rebuild();
        self.shards.len()
    }

    /// Publish the current state as an immutable [`CubeSnapshot`]:
    /// slabs whose epoch changed since the last publish are cloned,
    /// untouched slabs share their previous `Arc`. One pointer swap of
    /// the returned `Arc` hands readers a consistent whole-cube view.
    pub fn publish(&mut self) -> Arc<CubeSnapshot<S>> {
        // Reshard (or first publish) invalidates the published vector.
        if self.published.len() != self.shards.len() {
            self.published.clear();
        }
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let current = self.published.get(i).map(|p| p.epoch);
            if current != Some(shard.epoch) {
                let plane = Arc::new(ShardPlanes::new(
                    shard.t0,
                    shard.t1,
                    shard.epoch,
                    shard.grid.clone(),
                ));
                if i < self.published.len() {
                    self.published[i] = plane;
                } else {
                    self.published.push(plane);
                }
                shard.published_epoch = shard.epoch;
            }
        }
        Arc::new(CubeSnapshot {
            domain: self.domain,
            n: self.n,
            generation: self.generation,
            rebuilds: self.rebuilds,
            newest: self.newest_time(),
            shards: self.published.clone(),
        })
    }

    /// Total heap bytes across the writer slabs (the live cube size).
    pub fn heap_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.grid.heap_bytes()).sum()
    }

    /// Concatenate the writer slabs into one full unnormalized grid
    /// (T-outermost layout makes this a straight copy) — the conformance
    /// hook for bit-exact comparison against the single-lock cube.
    pub fn assemble(&self) -> Grid3<S> {
        let dims = self.domain.dims();
        let mut data = Vec::with_capacity(dims.gx * dims.gy * dims.gt);
        for shard in &self.shards {
            data.extend_from_slice(shard.grid.as_slice());
        }
        Grid3::from_vec(dims, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SlidingWindowStkde;
    use stkde_data::synth;
    use stkde_grid::GridDims;

    fn domain() -> Domain {
        Domain::from_dims(GridDims::new(24, 20, 16))
    }

    fn bw() -> Bandwidth {
        Bandwidth::new(3.0, 2.0)
    }

    fn stream(n: usize, seed: u64) -> Vec<Point> {
        let mut points = synth::uniform(n, domain().extent(), seed).into_vec();
        points.sort_by(|a, b| a.t.total_cmp(&b.t));
        points
    }

    /// Drive sharded and single-lock windows with identical batches and
    /// assert bit-exact agreement after every step.
    fn conformance(shards: usize, window: f64, chunk: usize, seed: u64) {
        let points = stream(90, seed);
        let mut sharded = ShardedWindowStkde::<f64>::new(domain(), bw(), window, shards);
        let mut single = SlidingWindowStkde::<f64>::new(domain(), bw(), window);
        for batch in points.chunks(chunk) {
            let a = sharded.push_batch(batch);
            let b = single.push_batch(batch);
            assert_eq!(a, b, "batch accounting must agree");
            assert_eq!(sharded.len(), single.len());
            assert_eq!(sharded.generation(), single.generation());
            assert_eq!(
                sharded.assemble(),
                *single.cube().grid(),
                "cubes must be bit-identical (shards={shards})"
            );
        }
        sharded.rebuild();
        single.rebuild();
        assert_eq!(sharded.generation(), single.generation());
        assert_eq!(sharded.assemble(), *single.cube().grid());
    }

    #[test]
    fn bit_identical_to_single_lock_across_shard_counts() {
        for shards in [1, 2, 3, 4, 7] {
            conformance(shards, 4.0, 13, 41);
        }
    }

    #[test]
    fn bit_identical_with_heavy_eviction() {
        conformance(4, 1.0, 7, 42);
    }

    #[test]
    fn snapshot_reads_match_single_lock_reads() {
        let points = stream(60, 43);
        let mut sharded = ShardedWindowStkde::<f64>::new(domain(), bw(), 5.0, 4);
        let mut single = SlidingWindowStkde::<f64>::new(domain(), bw(), 5.0);
        for batch in points.chunks(11) {
            sharded.push_batch(batch);
            single.push_batch(batch);
        }
        let snap = sharded.publish();
        assert_eq!(snap.len(), single.len());
        assert_eq!(snap.generation(), single.generation());
        assert_eq!(snap.assemble(), *single.cube().grid());
        // Voxel reads.
        for (x, y, t) in [(0, 0, 0), (12, 10, 8), (23, 19, 15), (5, 17, 3)] {
            assert_eq!(
                snap.density_checked(x, y, t),
                single.cube().density_checked(x, y, t)
            );
        }
        assert_eq!(snap.density_checked(99, 0, 0), None);
        // Range aggregates — bit-identical, including boxes spanning
        // shard boundaries.
        for r in [
            VoxelRange::full(domain().dims()),
            VoxelRange {
                x0: 2,
                x1: 14,
                y0: 1,
                y1: 11,
                t0: 3,
                t1: 9,
            },
            VoxelRange {
                x0: 0,
                x1: 24,
                y0: 0,
                y1: 20,
                t0: 7,
                t1: 8,
            },
        ] {
            assert_eq!(snap.density_range(r), single.cube().density_range(r));
        }
        // Inverted box: empty stats, no panic.
        let inverted = VoxelRange {
            x0: 5,
            x1: 2,
            y0: 0,
            y1: 20,
            t0: 0,
            t1: 16,
        };
        assert_eq!(snap.density_range(inverted).total, 0);
        // Time planes.
        for t in 0..domain().dims().gt {
            assert_eq!(snap.density_slice(t), single.cube().density_slice(t));
        }
        assert!(snap.density_slice(16).is_none());
    }

    #[test]
    fn publish_reuses_untouched_slabs() {
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 1e6, 4);
        // One event early in time: only the first shard(s) change.
        cube.push_batch(&[Point::new(12.0, 10.0, 1.0)]);
        let a = cube.publish();
        cube.push_batch(&[Point::new(12.0, 10.0, 1.5)]);
        let b = cube.publish();
        assert!(
            Arc::ptr_eq(&a.shards()[3], &b.shards()[3]),
            "untouched slab must be shared, not copied"
        );
        assert!(
            !Arc::ptr_eq(&a.shards()[0], &b.shards()[0]),
            "touched slab must be copied"
        );
        // The old snapshot still reads its own state.
        assert!(a.generation() < b.generation());
    }

    #[test]
    fn epoch_key_ignores_foreign_slab_writes_only_when_n_is_stable() {
        let dims = domain().dims();
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 2.0, 4);
        cube.push_batch(&[Point::new(12.0, 10.0, 1.0)]);
        cube.push_batch(&[Point::new(12.0, 10.0, 2.0)]);
        let k0 = cube.publish().cache_epoch_key(12, dims.gt);
        // Evict one + insert one, both far from the last shard: n stays
        // 2 and the last shard's slab is untouched -> key unchanged.
        cube.push_batch(&[Point::new(12.0, 10.0, 3.3)]);
        let snap = cube.publish();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.cache_epoch_key(12, dims.gt), k0);
        // An insert without eviction changes n -> key must change even
        // though the last shard is still untouched.
        cube.push_batch(&[Point::new(12.0, 10.0, 3.4)]);
        assert_ne!(cube.publish().cache_epoch_key(12, dims.gt), k0);
    }

    #[test]
    fn reshard_preserves_contents_and_advances_generation() {
        let points = stream(40, 44);
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 6.0, 2);
        cube.push_batch(&points);
        let before = cube.assemble();
        let g = cube.generation();
        let mut reference = SlidingWindowStkde::<f64>::new(domain(), bw(), 6.0);
        reference.push_batch(&points);
        reference.rebuild();
        for shards in [4, 1, 3] {
            let actual = cube.reshard(shards);
            assert_eq!(actual, shards);
            // Values equal the single-lock rebuild bit-for-bit, and stay
            // within float-drift distance of the pre-reshard state.
            assert_eq!(cube.assemble(), *reference.cube().grid());
            assert!(cube.assemble().max_rel_diff(&before, 1e-12) < 1e-9);
            reference.rebuild();
        }
        assert!(cube.generation() > g);
        // Requests are clamped, never zero, never past the T axis.
        assert_eq!(cube.reshard(0), 1);
        assert_eq!(cube.reshard(1000), domain().dims().gt.min(MAX_SHARDS));
    }

    #[test]
    fn approx_range_bound_holds_and_zero_budget_is_exact() {
        let points = stream(80, 45);
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 8.0, 4);
        cube.push_batch(&points);
        let snap = cube.publish();
        let boxes = [
            VoxelRange::full(domain().dims()),
            VoxelRange {
                x0: 3,
                x1: 21,
                y0: 2,
                y1: 17,
                t0: 1,
                t1: 14,
            },
            VoxelRange {
                x0: 8,
                x1: 16,
                y0: 8,
                y1: 16,
                t0: 7,
                t1: 9,
            },
        ];
        for r in boxes {
            let exact = snap.density_range(r);
            for max_err in [0.01, 0.1, 0.5] {
                let a = snap.density_range_approx(r, max_err, 0.0);
                assert!((a.stats.max - exact.max).abs() <= a.error_bound);
                assert!((a.stats.min - exact.min).abs() <= a.error_bound);
                assert!(
                    (a.stats.sum - exact.sum).abs() <= a.error_bound * exact.total as f64,
                    "sum {} vs {} bound {}",
                    a.stats.sum,
                    exact.sum,
                    a.error_bound
                );
                assert!(a.stats.nonzero >= exact.nonzero);
                if a.level > 0 {
                    assert!(a.error_bound <= max_err * snap.peak_density());
                }
            }
            // max_err = 0 (and negative) degenerate to the bit-exact path.
            for budget in [0.0, -1.0] {
                let a = snap.density_range_approx(r, budget, 0.0);
                assert_eq!(a.level, 0);
                assert_eq!(a.stats, exact);
                assert_eq!(a.error_bound, 0.0);
            }
        }
        // A generous budget on the full grid serves from the coarsest level.
        let a = snap.density_range_approx(VoxelRange::full(domain().dims()), 0.9, 0.0);
        assert!(a.level > 0, "wide budget should serve approximately");
    }

    #[test]
    fn approx_slice_bound_holds() {
        let points = stream(60, 46);
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 8.0, 3);
        cube.push_batch(&points);
        let snap = cube.publish();
        let dims = domain().dims();
        for t in [0, 5, 11, 15] {
            let exact = snap.density_slice(t).unwrap();
            for max_err in [0.05, 0.3] {
                let a = snap.density_slice_approx(t, max_err, 0.0).unwrap();
                for y in 0..dims.gy {
                    for x in 0..dims.gx {
                        let v = a.values[(y >> a.level) * a.width + (x >> a.level)];
                        let e = exact[y * dims.gx + x];
                        assert!(
                            (v - e).abs() <= a.error_bound,
                            "t={t} ({x},{y}): {v} vs {e} bound {}",
                            a.error_bound
                        );
                    }
                }
            }
            let a = snap.density_slice_approx(t, 0.0, 0.0).unwrap();
            assert_eq!(a.level, 0);
            assert_eq!(a.values, exact);
        }
        assert!(snap.density_slice_approx(dims.gt, 0.5, 0.0).is_none());
    }

    #[test]
    fn pyramids_ride_cow_slabs_across_publishes() {
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 1e6, 4);
        cube.push_batch(&[Point::new(12.0, 10.0, 1.0)]);
        let a = cube.publish();
        let report = a.ensure_pyramids();
        assert_eq!(report.built, 4);
        assert!(report.bytes > 0);
        assert_eq!(a.pyramid_bytes(), report.bytes);
        // Re-ensuring is free.
        assert_eq!(a.ensure_pyramids().built, 0);
        // An early-time write touches only the first slab: the other
        // slabs' pyramids ride their shared Arcs into the next snapshot,
        // and only the touched slab re-reduces.
        cube.push_batch(&[Point::new(12.0, 10.0, 1.5)]);
        let b = cube.publish();
        assert!(b.shards()[3].pyramid_if_built().is_some());
        assert!(b.shards()[0].pyramid_if_built().is_none());
        assert_eq!(b.ensure_pyramids().built, 1);
        // Exact peak matches the pyramid-reported peak.
        let full = b.density_range(VoxelRange::full(domain().dims()));
        assert_eq!(b.peak_density(), full.max.abs().max(full.min.abs()));
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_out_of_order_batches() {
        let mut cube = ShardedWindowStkde::<f64>::new(domain(), bw(), 2.0, 4);
        cube.push_batch(&[Point::new(1.0, 1.0, 3.0)]);
        cube.push_batch(&[Point::new(1.0, 1.0, 1.0)]);
    }
}
