//! Edge-case tests for the distributed exchange strategies, with the
//! adversarial point placements where distributed KDE implementations
//! classically diverge: empty ranks, degenerate point distributions,
//! events exactly on slab boundaries, and bandwidths wider than a slab.

use stkde_core::algorithms::pb_sym;
use stkde_core::distmem::{self, DistStrategy, HaloMode};
use stkde_core::Problem;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims};
use stkde_kernels::Epanechnikov;

const STRATEGIES: [DistStrategy; 2] = [DistStrategy::PointExchange, DistStrategy::HaloExchange];

fn check_against_sequential(
    problem: &Problem,
    points: &[Point],
    ranks: usize,
    strategy: DistStrategy,
    what: &str,
) -> distmem::DistResult<f64> {
    let (seq, _) = pb_sym::run::<f64, _>(problem, &Epanechnikov, points);
    let r = distmem::run::<f64, _>(problem, &Epanechnikov, points, ranks, strategy)
        .unwrap_or_else(|e| panic!("{what} ({strategy}, {ranks} ranks): {e}"));
    let diff = seq.max_rel_diff(&r.grid, 1e-15);
    assert!(
        diff < 1e-12,
        "{what} ({strategy}, {ranks} ranks): deviates by {diff:e}"
    );
    r
}

#[test]
fn empty_pointset_on_every_rank_count() {
    let problem = Problem::new(
        Domain::from_dims(GridDims::new(12, 10, 18)),
        Bandwidth::new(2.0, 2.0),
        0,
    );
    for strategy in STRATEGIES {
        for ranks in [1, 3, 6] {
            let r = check_against_sequential(&problem, &[], ranks, strategy, "empty pointset");
            assert!(r.grid.as_slice().iter().all(|&v| v == 0.0));
            assert_eq!(r.total_bytes(), {
                // Only the gather phase moves data: every non-root rank
                // ships its (empty-density) slab, plus the empty routing
                // batches which carry no point bytes.
                r.stats.iter().map(|s| s.bytes_sent).sum()
            });
        }
    }
}

#[test]
fn fewer_points_than_ranks_leaves_ranks_idle() {
    // 3 points over 6 ranks: at least three ranks start with no local
    // points, and (for halo) several own slabs no cylinder reaches.
    let domain = Domain::from_dims(GridDims::new(16, 16, 18));
    let problem = Problem::new(domain, Bandwidth::new(2.0, 1.0), 3);
    let points = vec![
        Point::new(3.2, 4.1, 2.5),
        Point::new(8.9, 9.3, 2.9),
        Point::new(12.4, 2.2, 3.1),
    ];
    for strategy in STRATEGIES {
        let r = check_against_sequential(&problem, &points, 6, strategy, "sparse ranks");
        // Idle ranks must report zero work, not garbage.
        assert!(r.processed.iter().filter(|&&p| p == 0).count() >= 3);
        assert_eq!(r.compute_secs.len(), 6);
    }
}

#[test]
fn all_points_on_one_slab() {
    // Every event inside rank 0's slab (layers [0, 5) at 4 ranks over
    // gt=20): point exchange must route everything to the slab interval
    // its halos touch, halo exchange must send ghosts only upward.
    let domain = Domain::from_dims(GridDims::new(14, 14, 20));
    let problem = Problem::new(domain, Bandwidth::new(2.5, 2.0), 12);
    let points: Vec<Point> = (0..12)
        .map(|i| {
            Point::new(
                1.0 + (i as f64) * 0.9,
                12.0 - (i as f64) * 0.7,
                0.3 + (i as f64) * 0.35, // t in [0.3, 4.2) — all layer < 5
            )
        })
        .collect();
    for strategy in STRATEGIES {
        let r = check_against_sequential(&problem, &points, 4, strategy, "one-slab hotspot");
        match strategy {
            DistStrategy::HaloExchange => {
                // All work lands on rank 0 (plus whatever straddle copies
                // the strategy makes); ranks 2..4 rasterize nothing.
                assert_eq!(r.processed[2], 0);
                assert_eq!(r.processed[3], 0);
                assert_eq!(r.processed.iter().sum::<usize>(), points.len());
            }
            DistStrategy::PointExchange => {
                // Replicas may spill into rank 1 (Ht=2 from layer 4) but
                // never beyond the halo reach.
                assert_eq!(r.processed[2] + r.processed[3], 0);
            }
        }
    }
}

#[test]
fn points_exactly_on_slab_boundaries() {
    // gt=20 at 4 ranks ⇒ boundaries at layers 5, 10, 15. World t == the
    // boundary coordinate floors into the *upper* slab; both strategies
    // must agree with sequential regardless of that convention, and with
    // each other bit-for-bit wherever summation order coincides.
    let domain = Domain::from_dims(GridDims::new(12, 12, 20));
    let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), 8);
    let points: Vec<Point> = [5.0, 10.0, 15.0]
        .iter()
        .flat_map(|&t| {
            [
                Point::new(4.2, 6.6, t),         // exactly on the boundary
                Point::new(7.8, 3.1, t - 1e-12), // a hair below
            ]
        })
        .chain([
            Point::new(6.0, 6.0, 0.0),  // domain floor
            Point::new(6.0, 6.0, 20.0), // domain ceiling (clamps to last layer)
        ])
        .collect();
    assert_eq!(points.len(), 8);
    for strategy in STRATEGIES {
        for ranks in [2, 4] {
            check_against_sequential(&problem, &points, ranks, strategy, "boundary points");
        }
    }
}

#[test]
fn bandwidth_wider_than_a_slab() {
    // 8 ranks over gt=24 ⇒ slab width 3, but Ht=7: a halo spans two full
    // neighbor slabs plus change, and a single cylinder can touch five
    // ranks. The expected-sender sets and multi-slab ghost shipping must
    // still be exact.
    let domain = Domain::from_dims(GridDims::new(10, 10, 24));
    let problem = Problem::new(domain, Bandwidth::new(2.0, 7.0), 30);
    let points: Vec<Point> = (0..30)
        .map(|i| {
            Point::new(
                (i % 9) as f64 + 0.7,
                ((i * 3) % 9) as f64 + 0.4,
                (i as f64) * 0.8 + 0.1,
            )
        })
        .collect();
    for strategy in STRATEGIES {
        let r = check_against_sequential(&problem, &points, 8, strategy, "wide bandwidth");
        if strategy == DistStrategy::PointExchange {
            // Ht(7) > slab width(3): nearly every point must be
            // replicated to several ranks.
            assert!(
                r.replication_factor(points.len()) > 3.0,
                "replication {} should reflect halo >> slab",
                r.replication_factor(points.len())
            );
        }
    }
}

#[test]
fn single_layer_slabs() {
    // ranks == gt: every slab is one layer thick — the extreme
    // decomposition where every cylinder straddles.
    let domain = Domain::from_dims(GridDims::new(8, 8, 6));
    let problem = Problem::new(domain, Bandwidth::new(2.0, 2.0), 10);
    let points: Vec<Point> = (0..10)
        .map(|i| {
            Point::new(
                (i % 7) as f64 + 0.5,
                (i % 5) as f64 + 0.5,
                (i % 6) as f64 + 0.5,
            )
        })
        .collect();
    for strategy in STRATEGIES {
        check_against_sequential(&problem, &points, 6, strategy, "single-layer slabs");
    }
}

#[test]
fn halo_modes_agree_on_edge_instances() {
    // The overlapped split (boundary points first) must agree with the
    // phased schedule on the nastiest decomposition, where *every* point
    // is a boundary point.
    let domain = Domain::from_dims(GridDims::new(8, 8, 6));
    let problem = Problem::new(domain, Bandwidth::new(2.0, 3.0), 9);
    let points: Vec<Point> = (0..9)
        .map(|i| {
            Point::new(
                (i % 7) as f64 + 0.4,
                (i % 5) as f64 + 0.6,
                (i % 6) as f64 + 0.5,
            )
        })
        .collect();
    let (seq, _) = pb_sym::run::<f64, _>(&problem, &Epanechnikov, &points);
    let mut grids: Vec<Grid3<f64>> = Vec::new();
    for mode in [HaloMode::Overlapped, HaloMode::Phased] {
        let r = distmem::run_with_mode::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            6,
            DistStrategy::HaloExchange,
            mode,
        )
        .unwrap();
        assert!(seq.max_rel_diff(&r.grid, 1e-15) < 1e-12, "{mode} deviates");
        grids.push(r.grid);
    }
    // With every point on the boundary, the overlapped interior set is
    // empty and the apply order coincides: bit-identical.
    assert_eq!(grids[0].as_slice(), grids[1].as_slice());
}
