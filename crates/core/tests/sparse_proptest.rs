//! Property tests for the Morton-brick sparse backend: on random
//! domains, bandwidths, and kernels, the sparse scatter must be
//! **bit-identical** — `assert_eq!` on the raw scalar vectors, not
//! within-epsilon — to the dense `PB-SYM` reference, for `f32` and
//! `f64`, sequentially and across forced slab counts of the parallel
//! path.
//!
//! Domain dimensions are drawn *around* the brick (8) and chunk (64)
//! edges so cylinders routinely straddle brick columns, brick layers,
//! and chunk boundaries, and get clipped by domain edges — the cases
//! where the per-brick segmentation of `axpy_row` and the trimmed chord
//! spans could plausibly diverge from the dense write path.

use proptest::prelude::*;
use stkde_core::algorithms::pb_sym;
use stkde_core::{sparse, Problem};
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, GridDims};
use stkde_kernels::{Epanechnikov, Quartic, SpaceTimeKernel};

#[derive(Debug, Clone)]
struct Case {
    domain: Domain,
    bw: Bandwidth,
    points: Vec<Point>,
}

/// Dimension biased toward brick/chunk boundaries: mostly values within
/// ±2 of a multiple of 8 (including 64 itself), occasionally arbitrary.
fn boundary_dim() -> impl Strategy<Value = usize> {
    (1usize..9, -2isize..3, 0usize..5, 2usize..70).prop_map(|(k, d, pick, free)| {
        if pick == 0 {
            free
        } else {
            (k * 8).saturating_add_signed(d).max(2)
        }
    })
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        boundary_dim(),
        boundary_dim(),
        boundary_dim(),
        (0.6f64..7.0, 0.6f64..4.0),
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0..24),
    )
        .prop_map(|(gx, gy, gt, (hs, ht), pts)| {
            let domain = Domain::from_dims(GridDims::new(gx, gy, gt));
            // Points across the whole extent, so cylinders get clipped at
            // every face of the domain as well as straddling bricks.
            let points: Vec<Point> = pts
                .into_iter()
                .map(|(fx, fy, ft)| {
                    Point::new(
                        fx * (gx as f64 - 1e-9),
                        fy * (gy as f64 - 1e-9),
                        ft * (gt as f64 - 1e-9),
                    )
                })
                .collect();
            Case {
                domain,
                bw: Bandwidth::new(hs, ht),
                points,
            }
        })
}

fn check_bitwise<K: SpaceTimeKernel>(case: &Case, kernel: &K) -> Result<(), TestCaseError> {
    let problem = Problem::new(case.domain, case.bw, case.points.len());

    let (dense64, _) = pb_sym::run::<f64, _>(&problem, kernel, &case.points);
    let (sparse64, _) = sparse::run::<f64, _>(&problem, kernel, &case.points);
    prop_assert_eq!(&sparse64.to_dense(), &dense64, "f64 sequential sparse");

    let (dense32, _) = pb_sym::run::<f32, _>(&problem, kernel, &case.points);
    let (sparse32, _) = sparse::run::<f32, _>(&problem, kernel, &case.points);
    prop_assert_eq!(&sparse32.to_dense(), &dense32, "f32 sequential sparse");

    // Parallel path at forced slab counts (the container may be
    // single-core; run_par's adaptive count would then never exercise
    // multi-slab bucketing or boundary-straddling bricks).
    for nslabs in [2usize, 5] {
        let (par, _) = sparse::run_par_slabs::<f64, _>(&problem, kernel, &case.points, 2, nslabs)
            .expect("threads >= 1");
        prop_assert_eq!(&par.to_dense(), &dense64, "f64 par nslabs={}", nslabs);
        let (par32, _) = sparse::run_par_slabs::<f32, _>(&problem, kernel, &case.points, 2, nslabs)
            .expect("threads >= 1");
        prop_assert_eq!(&par32.to_dense(), &dense32, "f32 par nslabs={}", nslabs);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn sparse_bitwise_matches_dense_epanechnikov(case in case_strategy()) {
        check_bitwise(&case, &Epanechnikov)?;
    }

    #[test]
    fn sparse_bitwise_matches_dense_quartic(case in case_strategy()) {
        check_bitwise(&case, &Quartic)?;
    }

    #[test]
    fn allocation_never_exceeds_touched_bricks(case in case_strategy()) {
        let problem = Problem::new(case.domain, case.bw, case.points.len());
        let (grid, _) = sparse::run::<f64, _>(&problem, &Epanechnikov, &case.points);
        // Union bound: every point's cylinder bounding box, in bricks.
        let vbw = problem.domain.voxel_bandwidth(case.bw);
        let per_point = (2 * vbw.hs / 8 + 2).pow(2) * (2 * vbw.ht / 8 + 2);
        prop_assert!(
            grid.allocated_bricks() <= (case.points.len() * per_point).min(grid.table_len()),
            "{} bricks for {} points",
            grid.allocated_bricks(),
            case.points.len()
        );
        if case.points.is_empty() {
            prop_assert_eq!(grid.allocated_bricks(), 0);
        }
    }
}
