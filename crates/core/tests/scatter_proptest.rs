//! Property tests for the span-clipped, vectorized scatter engine: every
//! strategy must match an independent naive per-voxel reference on random
//! domains (non-unit resolutions, shifted origins), random bandwidths,
//! off-center points, and partial clips — including chords clipped by a
//! subdomain boundary, the `PB-SYM-DD` case.

use proptest::prelude::*;
use stkde_core::kernel_apply::{apply_points_seq, PointKernel};
use stkde_core::Problem;
use stkde_data::Point;
use stkde_grid::{Bandwidth, Domain, Extent, Grid3, Resolution, VoxelRange};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel, Tabulated, TruncatedGaussian};

/// Ground truth by definition: evaluate the estimator at every voxel of
/// the clip region, with no cylinder boxes, invariants, chords, or axis
/// tables — `Θ(G·n)` and trivially correct.
fn naive_reference<K: SpaceTimeKernel>(
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    clip: VoxelRange,
) -> Grid3<f64> {
    let mut g: Grid3<f64> = Grid3::zeros(problem.domain.dims());
    for p in points {
        for t in clip.t0..clip.t1 {
            for y in clip.y0..clip.y1 {
                for x in clip.x0..clip.x1 {
                    let c = problem.domain.voxel_center(x, y, t);
                    let (u, v) = problem.uv(c[0], c[1], p);
                    let w = problem.w(c[2], p);
                    let val = kernel.eval(u, v, w);
                    if val != 0.0 {
                        g.add(x, y, t, val * problem.norm);
                    }
                }
            }
        }
    }
    g
}

#[derive(Debug, Clone)]
struct Case {
    domain: Domain,
    bw: Bandwidth,
    points: Vec<Point>,
    clip: VoxelRange,
}

fn case_strategy() -> impl Strategy<Value = Case> {
    (
        (6usize..20, 6usize..20, 4usize..10),
        (0.5f64..2.5, 0.5f64..2.0),
        (-7.0f64..7.0, -3.0f64..3.0, -11.0f64..11.0),
        (0.6f64..5.0, 0.6f64..3.0),
        proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 1..8),
        (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0, 0.2f64..1.0),
    )
        .prop_map(
            |((gx, gy, gt), (sres, tres), (ox, oy, ot), (hs, ht), pts, clip_frac)| {
                let min = [ox, oy, ot];
                let max = [
                    ox + gx as f64 * sres,
                    oy + gy as f64 * sres,
                    ot + gt as f64 * tres,
                ];
                let domain =
                    Domain::from_extent(Extent::new(min, max), Resolution::new(sres, tres));
                let dims = domain.dims();
                // Points anywhere inside the extent, including corners
                // whose cylinders are clipped by the grid boundary.
                let points = pts
                    .into_iter()
                    .map(|(fx, fy, ft)| {
                        Point::new(
                            min[0] + fx * (max[0] - min[0]),
                            min[1] + fy * (max[1] - min[1]),
                            min[2] + ft * (max[2] - min[2]),
                        )
                    })
                    .collect();
                // A random sub-box clip (the PB-SYM-DD case): chords of
                // boundary-straddling cylinders are cut mid-disk.
                let (cx, cy, ct, cw) = clip_frac;
                let sub = |f: f64, n: usize| -> (usize, usize) {
                    let lo = (f * n as f64) as usize;
                    let hi = (lo + 1 + (cw * n as f64) as usize).min(n);
                    (lo.min(n - 1), hi.max(lo.min(n - 1) + 1))
                };
                let (x0, x1) = sub(cx, dims.gx);
                let (y0, y1) = sub(cy, dims.gy);
                let (t0, t1) = sub(ct, dims.gt);
                Case {
                    domain,
                    bw: Bandwidth::new(hs, ht),
                    points,
                    clip: VoxelRange {
                        x0,
                        x1,
                        y0,
                        y1,
                        t0,
                        t1,
                    },
                }
            },
        )
}

fn run_engine<S: stkde_grid::Scalar, K: SpaceTimeKernel>(
    case: &Case,
    kernel: &K,
    which: PointKernel,
    clip: VoxelRange,
) -> Grid3<S> {
    let problem = Problem::new(case.domain, case.bw, case.points.len());
    let mut g: Grid3<S> = Grid3::zeros(case.domain.dims());
    apply_points_seq(which, &mut g, &problem, kernel, &case.points, clip);
    g
}

fn to_f64(g: &Grid3<f32>) -> Grid3<f64> {
    Grid3::from_vec(g.dims(), g.as_slice().iter().map(|&v| v as f64).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy, full grid, f64: ≤ 1e-10 relative against the
    /// per-voxel reference.
    #[test]
    fn f64_strategies_match_naive_full_grid(case in case_strategy()) {
        let problem = Problem::new(case.domain, case.bw, case.points.len());
        let full = VoxelRange::full(case.domain.dims());
        let naive = naive_reference(&problem, &Epanechnikov, &case.points, full);
        for which in [
            PointKernel::Plain,
            PointKernel::Disk,
            PointKernel::Bar,
            PointKernel::Sym,
        ] {
            let g = run_engine::<f64, _>(&case, &Epanechnikov, which, full);
            let diff = naive.max_rel_diff(&g, 1e-14);
            prop_assert!(diff < 1e-10, "{which:?} diverges from naive by {diff}");
        }
    }

    /// Partial clips (PB-SYM-DD): chords cut by the subdomain boundary
    /// still match the reference restricted to the same clip.
    #[test]
    fn f64_sym_matches_naive_under_partial_clip(case in case_strategy()) {
        let problem = Problem::new(case.domain, case.bw, case.points.len());
        let naive = naive_reference(&problem, &Epanechnikov, &case.points, case.clip);
        let g = run_engine::<f64, _>(&case, &Epanechnikov, PointKernel::Sym, case.clip);
        let diff = naive.max_rel_diff(&g, 1e-14);
        prop_assert!(diff < 1e-10, "clipped sym diverges by {diff} (clip {})", case.clip);
    }

    /// f32 grids: the native-scalar inner loop stays within f32 rounding
    /// of the f64 reference (per-add relative error ~1e-7, a few adds).
    #[test]
    fn f32_sym_matches_naive(case in case_strategy()) {
        let problem = Problem::new(case.domain, case.bw, case.points.len());
        let naive = naive_reference(&problem, &Epanechnikov, &case.points, case.clip);
        let g = run_engine::<f32, _>(&case, &Epanechnikov, PointKernel::Sym, case.clip);
        let diff = naive.max_rel_diff(&to_f64(&g), 1e-6);
        prop_assert!(diff < 1e-3, "f32 sym diverges by {diff}");
    }

    /// Transcendental and LUT kernels ride the same engine: the Gaussian
    /// must match its own naive evaluation tightly, and the tabulated
    /// wrapper must match *its* naive evaluation (the LUT error is a
    /// kernel property, not an engine property).
    #[test]
    fn f64_sym_matches_naive_for_gaussian_and_lut(case in case_strategy()) {
        let problem = Problem::new(case.domain, case.bw, case.points.len());
        let full = VoxelRange::full(case.domain.dims());

        let gauss = TruncatedGaussian::default();
        let naive = naive_reference(&problem, &gauss, &case.points, full);
        let g = run_engine::<f64, _>(&case, &gauss, PointKernel::Sym, full);
        let diff = naive.max_rel_diff(&g, 1e-14);
        prop_assert!(diff < 1e-10, "gaussian sym diverges by {diff}");

        let lut = Tabulated::new(TruncatedGaussian::default());
        let naive = naive_reference(&problem, &lut, &case.points, full);
        let g = run_engine::<f64, _>(&case, &lut, PointKernel::Sym, full);
        let diff = naive.max_rel_diff(&g, 1e-14);
        prop_assert!(diff < 1e-10, "tabulated sym diverges by {diff}");
    }
}
