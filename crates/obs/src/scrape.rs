//! Parser for the Prometheus text exposition format — the read side of
//! [`Registry::render`](crate::Registry::render), used by
//! `stkde-serve top` to turn a `/metrics` scrape back into numbers.
//!
//! Always compiled (independent of the `obs` feature): parsing a scrape
//! from a *remote* daemon is useful even from a build whose own
//! instrumentation is off.

/// One sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name (for histograms, includes the `_bucket`/`_sum`/
    /// `_count` suffix).
    pub name: String,
    /// Label pairs in source order, unescaped.
    pub labels: Vec<(String, String)>,
    /// Sample value. `+Inf`/`-Inf`/`NaN` parse to the matching floats.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parse an exposition-format payload. Comment (`#`) and blank lines
/// are skipped; malformed lines are dropped rather than failing the
/// whole scrape (a monitoring client should degrade, not die).
pub fn parse_text(text: &str) -> Vec<Sample> {
    text.lines().filter_map(parse_line).collect()
}

fn parse_line(line: &str) -> Option<Sample> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let (name, rest) = split_name(line)?;
    let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
        parse_labels(r)?
    } else {
        (Vec::new(), rest)
    };
    let value = parse_value(rest.trim())?;
    Some(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

fn split_name(line: &str) -> Option<(&str, &str)> {
    let end = line.find(|c: char| c == '{' || c.is_whitespace())?;
    if end == 0 {
        return None;
    }
    Some((&line[..end], &line[end..]))
}

/// Parse `key="value",...}` (the opening brace already consumed),
/// returning the pairs and the remainder after the closing brace.
fn parse_labels(mut rest: &str) -> Option<(Vec<(String, String)>, &str)> {
    let mut labels = Vec::new();
    loop {
        rest = rest.trim_start_matches([',', ' ']);
        if let Some(after) = rest.strip_prefix('}') {
            return Some((labels, after));
        }
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        rest = rest[eq + 1..].strip_prefix('"')?;
        let (value, after) = take_quoted(rest)?;
        labels.push((key, value));
        rest = after;
    }
}

/// Consume an escaped label value up to its closing quote.
fn take_quoted(s: &str) -> Option<(String, &str)> {
    let mut out = String::new();
    let mut chars = s.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, &s[i + 1..])),
            '\\' => match chars.next()?.1 {
                'n' => out.push('\n'),
                '\\' => out.push('\\'),
                '"' => out.push('"'),
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn parse_value(s: &str) -> Option<f64> {
    // A timestamp may follow the value; take the first token.
    let tok = s.split_whitespace().next()?;
    match tok {
        "+Inf" => Some(f64::INFINITY),
        "-Inf" => Some(f64::NEG_INFINITY),
        "NaN" => Some(f64::NAN),
        t => t.parse().ok(),
    }
}

/// Parse the `le` label of a histogram bucket (`"+Inf"` included).
pub fn parse_le(s: &str) -> Option<f64> {
    parse_value(s)
}

/// Estimate a quantile from cumulative `(le, count)` histogram buckets
/// (as scraped from `name_bucket` samples), by the same linear
/// interpolation the live [`Histogram`](crate::Histogram) uses.
/// Buckets need not be sorted; `None` if empty or the total count is 0.
pub fn quantile_from_buckets(buckets: &[(f64, u64)], q: f64) -> Option<f64> {
    let mut sorted: Vec<(f64, u64)> = buckets.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));
    let total = sorted.last()?.1;
    if total == 0 {
        return None;
    }
    let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
    let mut prev_le = 0.0;
    let mut prev_cum = 0u64;
    for &(le, cum) in &sorted {
        if cum >= target {
            if !le.is_finite() {
                return Some(prev_le);
            }
            let in_bucket = cum - prev_cum;
            if in_bucket == 0 {
                return Some(le);
            }
            let frac = (target - prev_cum) as f64 / in_bucket as f64;
            return Some(prev_le + (le - prev_le) * frac);
        }
        prev_le = le;
        prev_cum = cum;
    }
    Some(prev_le)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_labeled_and_special_values() {
        let text = "\
# HELP m help text
# TYPE m counter
m 3
m{a=\"x\"} 4.5
m_bucket{a=\"x\",le=\"+Inf\"} 7
weird{v=\"q\\\"u\\\\o\\nte\"} 1
bad line without value
";
        let samples = parse_text(text);
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0].name, "m");
        assert_eq!(samples[0].value, 3.0);
        assert_eq!(samples[1].label("a"), Some("x"));
        assert_eq!(samples[2].label("le"), Some("+Inf"));
        assert_eq!(samples[3].label("v"), Some("q\"u\\o\nte"));
    }

    #[test]
    fn quantile_from_buckets_interpolates() {
        // 10 obs ≤ 1, 90 more ≤ 2 (cumulative 100).
        let buckets = [(1.0, 10), (2.0, 100), (f64::INFINITY, 100)];
        let p50 = quantile_from_buckets(&buckets, 0.5).unwrap();
        assert!((1.0..=2.0).contains(&p50), "{p50}");
        // Mass in +Inf → lower bound of the last finite bucket.
        let buckets = [(1.0, 0), (f64::INFINITY, 5)];
        assert_eq!(quantile_from_buckets(&buckets, 0.9), Some(1.0));
        assert_eq!(quantile_from_buckets(&[], 0.5), None);
        assert_eq!(
            quantile_from_buckets(&[(1.0, 0), (f64::INFINITY, 0)], 0.5),
            None
        );
    }

    #[cfg(feature = "obs")]
    #[test]
    fn render_parse_roundtrip() {
        use crate::Kind;
        let r = crate::Registry::new();
        r.describe("rt_total", Kind::Counter, "round trip");
        r.counter("rt_total", &[("k", "a\"b\\c")]).add(12);
        let h = r.histogram("rt_seconds", &[]);
        h.observe(0.25);
        h.observe(3.0);
        let samples = parse_text(&r.render());
        let c = samples.iter().find(|s| s.name == "rt_total").unwrap();
        assert_eq!(c.value, 12.0);
        assert_eq!(c.label("k"), Some("a\"b\\c"));
        let count = samples
            .iter()
            .find(|s| s.name == "rt_seconds_count")
            .unwrap();
        assert_eq!(count.value, 2.0);
        let buckets: Vec<(f64, u64)> = samples
            .iter()
            .filter(|s| s.name == "rt_seconds_bucket")
            .map(|s| {
                (
                    s.label("le").unwrap().parse().unwrap_or(f64::INFINITY),
                    s.value as u64,
                )
            })
            .collect();
        let p99 = quantile_from_buckets(&buckets, 0.99).unwrap();
        assert!((2.0..=4.0).contains(&p99), "{p99}");
    }
}
