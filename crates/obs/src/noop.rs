//! Feature-off twins of the live API: every handle is a zero-sized
//! unit, every method an empty inlineable body, so instrumented call
//! sites compile to nothing. Signatures mirror `registry`/`trace`
//! exactly — the two builds must be drop-in interchangeable.

use crate::{Kind, SpanRecord};

/// No-op counter (feature `obs` disabled).
#[derive(Clone, Copy, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn add_release(&self, _n: u64) {}
    /// No-op.
    #[inline(always)]
    pub fn sub_release(&self, _n: u64) {}
    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> u64 {
        0
    }
    /// Always 0.
    #[inline(always)]
    pub fn get_acquire(&self) -> u64 {
        0
    }
}

/// No-op gauge (feature `obs` disabled).
#[derive(Clone, Copy, Default)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}
    /// Always 0.
    #[inline(always)]
    pub fn get(&self) -> f64 {
        0.0
    }
}

/// No-op histogram (feature `obs` disabled).
#[derive(Clone, Copy, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn observe(&self, _v: f64) {}
    /// Always 0.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
    /// Always 0.
    #[inline(always)]
    pub fn sum(&self) -> f64 {
        0.0
    }
    /// Always 0.
    #[inline(always)]
    pub fn quantile(&self, _q: f64) -> f64 {
        0.0
    }
}

/// No-op registry (feature `obs` disabled).
#[derive(Default)]
pub struct Registry;

impl Registry {
    /// An inert registry.
    pub fn new() -> Self {
        Registry
    }
    /// No-op.
    #[inline(always)]
    pub fn describe(&self, _name: &str, _kind: Kind, _help: &str) {}
    /// A no-op counter.
    #[inline(always)]
    pub fn counter(&self, _name: &str, _labels: &[(&str, &str)]) -> Counter {
        Counter
    }
    /// A no-op gauge.
    #[inline(always)]
    pub fn gauge(&self, _name: &str, _labels: &[(&str, &str)]) -> Gauge {
        Gauge
    }
    /// A no-op histogram.
    #[inline(always)]
    pub fn histogram(&self, _name: &str, _labels: &[(&str, &str)]) -> Histogram {
        Histogram
    }
    /// Always the empty string.
    #[inline(always)]
    pub fn render(&self) -> String {
        String::new()
    }
}

/// The process-global (inert) registry.
#[inline(always)]
pub fn global() -> &'static Registry {
    static GLOBAL: Registry = Registry;
    &GLOBAL
}

/// No-op span guard (feature `obs` disabled).
#[must_use = "a span measures until the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard;

/// Open a no-op span.
#[inline(always)]
pub fn span(_name: &'static str) -> SpanGuard {
    SpanGuard
}

/// Always empty.
#[inline(always)]
pub fn recent_spans() -> Vec<SpanRecord> {
    Vec::new()
}

/// Always the empty JSON array.
#[inline(always)]
pub fn trace_json() -> String {
    "[]".to_string()
}
