//! In-tree metrics + tracing core (`stkde-obs`).
//!
//! The serve tier, the scatter engine, the work-stealing pool, and the
//! comm ranks all report through this crate: a process-global registry
//! of named **counters**, **gauges**, and log-bucketed **histograms**
//! on lock-free atomics, plus lightweight **spans** feeding a bounded
//! ring-buffer trace store. The registry renders in the Prometheus text
//! exposition format (version 0.0.4) for `GET /metrics`, and
//! [`scrape`] parses that same format back for `stkde-serve top`.
//!
//! # The `obs` feature
//!
//! crates.io is unreachable here, so this is in-tree by the same
//! discipline as the HTTP layer — and because instrumentation sits on
//! the paper's hot paths, the whole crate is feature-gated. With `obs`
//! **off** (the default) every type in this crate is a zero-sized no-op
//! and every method an empty `#[inline]` body: the scatter bench
//! measures the uninstrumented engine. With `obs` **on** (pulled in
//! transitively by `stkde-server`, or explicitly via
//! `cargo bench --features obs`), the same API records for real. The
//! two builds are compared by `bench_guard` in CI to bound the
//! overhead of instrumentation.
//!
//! # Handles, not lookups
//!
//! Registry lookups take a `Mutex`; hot sites must not. The
//! [`counter!`]/[`gauge!`]/[`histogram!`] macros cache the handle in a
//! per-call-site `OnceLock`, so the steady-state cost of a counter
//! bump is one `Relaxed` `fetch_add`:
//!
//! ```
//! let c = stkde_obs::counter!("stkde_example_total");
//! c.inc();
//! ```
//!
//! Handles are `Copy` references into leaked cells, so they can be
//! stashed in structs (the pool caches per-worker handles at spawn).
//!
//! # Memory-ordering policy
//!
//! All metric loads and stores are `Ordering::Relaxed`: these are
//! monotone tallies and last-write-wins gauges read by monitoring
//! code that tolerates slight staleness; no reader derives an
//! inter-thread happens-before edge from them. The one exception is
//! the server's ingest quiescence check, which uses the explicit
//! [`Counter::add_release`]/[`Counter::get_acquire`] pair to keep the
//! Release/Acquire discipline its drain protocol had before it moved
//! onto this registry.

#![warn(missing_docs)]

pub mod scrape;

#[cfg(feature = "obs")]
mod registry;
#[cfg(feature = "obs")]
mod trace;

#[cfg(feature = "obs")]
pub use registry::{global, Counter, Gauge, Histogram, Registry};
#[cfg(feature = "obs")]
pub use trace::{recent_spans, span, trace_json, SpanGuard};

#[cfg(not(feature = "obs"))]
mod noop;
#[cfg(not(feature = "obs"))]
pub use noop::{
    global, recent_spans, span, trace_json, Counter, Gauge, Histogram, Registry, SpanGuard,
};

/// What a metric family is — determines its `# TYPE` line and how
/// instances render.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing `u64` tally.
    Counter,
    /// Last-write-wins `f64` level.
    Gauge,
    /// Log₂-bucketed `f64` distribution with count and sum.
    Histogram,
}

impl Kind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(&self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One finished span, as stored in the trace ring buffer.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Static span name (the argument to [`span`]).
    pub name: &'static str,
    /// Nanoseconds since the process obs epoch when the span opened.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on the opening thread (0 = top-level).
    pub depth: u16,
    /// Name of the thread the span ran on.
    pub thread: String,
    /// Global completion sequence number (monotone).
    pub seq: u64,
}

/// Every metric name emitted by the workspace, in one place.
///
/// Instrumentation sites reference these constants so a rename cannot
/// silently fork the names the server describes, the CI smoke test
/// greps, and OBSERVABILITY.md documents.
pub mod names {
    /// Points pushed through `apply_point` (scatter engine).
    pub const SCATTER_POINTS: &str = "stkde_scatter_points_total";
    /// Non-empty chord rows written by the PB-SYM engine.
    pub const SCATTER_CHORD_ROWS: &str = "stkde_scatter_chord_rows_total";
    /// Voxels actually written by the PB-SYM engine (chord × plane).
    pub const SCATTER_VOXELS_WRITTEN: &str = "stkde_scatter_voxels_written_total";
    /// Voxels in the clipped bounding boxes of scattered points.
    pub const SCATTER_BOX_VOXELS: &str = "stkde_scatter_box_voxels_total";

    /// 8³ bricks materialized by the sparse backend (per run).
    pub const SPARSE_BRICKS_ALLOCATED: &str = "stkde_sparse_bricks_allocated_total";
    /// Brick-row segments written by the sparse scatter loop.
    pub const SPARSE_BRICKS_TOUCHED: &str = "stkde_sparse_bricks_touched_total";
    /// Brick allocations lost to a concurrent CAS winner (duplicate
    /// zero-fill discarded; counts contended slot materializations).
    pub const SPARSE_ALLOC_CAS_RACES: &str = "stkde_sparse_alloc_cas_races_total";

    /// Successful steals, labeled by stealing worker.
    pub const POOL_STEALS: &str = "stkde_pool_steals_total";
    /// Full sweeps that found no work, labeled by worker.
    pub const POOL_STEAL_FAILURES: &str = "stkde_pool_steal_failures_total";
    /// Jobs executed, labeled by worker.
    pub const POOL_TASKS: &str = "stkde_pool_tasks_total";
    /// Times a worker parked on the sleep gate.
    pub const POOL_PARKS: &str = "stkde_pool_parks_total";
    /// Wake broadcasts issued while at least one worker slept.
    pub const POOL_WAKES: &str = "stkde_pool_wakes_total";

    /// Events accepted into the ingest queue.
    pub const INGEST_RECEIVED: &str = "stkde_ingest_events_received_total";
    /// Settled events by `outcome` label: applied / stale / aged_in_batch.
    pub const INGEST_EVENTS: &str = "stkde_ingest_events_total";
    /// Events evicted by window slides.
    pub const INGEST_EVICTIONS: &str = "stkde_ingest_evictions_total";
    /// Write batches applied by the ingest writer.
    pub const INGEST_BATCHES: &str = "stkde_ingest_batches_total";
    /// Channel sends coalesced into those batches.
    pub const INGEST_COALESCED_SENDS: &str = "stkde_ingest_coalesced_sends_total";
    /// Batch size distribution (events per applied batch).
    pub const INGEST_BATCH_SIZE: &str = "stkde_ingest_batch_size";
    /// Wall time per applied batch.
    pub const INGEST_APPLY_SECONDS: &str = "stkde_ingest_apply_seconds";
    /// Events received but not yet settled (the generation lag).
    pub const INGEST_QUEUE_DEPTH: &str = "stkde_ingest_queue_depth";
    /// Events per channel send in the most recent batch.
    pub const INGEST_LAST_COALESCE_RATIO: &str = "stkde_ingest_last_coalesce_ratio";
    /// Full cube rebuilds triggered by eviction churn.
    pub const INGEST_REBUILDS: &str = "stkde_ingest_rebuilds_total";

    /// Cylinder applications (inserts + evictions) that intersected a
    /// shard's slab, labeled by `shard`.
    pub const SHARD_INGEST_EVENTS: &str = "stkde_shard_ingest_events_total";
    /// Copy-on-write slab publications, labeled by `shard`.
    pub const SHARD_PUBLISHES: &str = "stkde_shard_publishes_total";
    /// A shard's content epoch (generation at last change), by `shard`.
    pub const SHARD_EPOCH: &str = "stkde_shard_epoch";
    /// Time layers owned by a shard's slab, by `shard`.
    pub const SHARD_LAYERS: &str = "stkde_shard_layers";
    /// Live temporal-slab shards in the serve path.
    pub const SHARD_COUNT: &str = "stkde_shard_count";

    /// Cube write generation (bumps on every batch/rebuild).
    pub const CUBE_GENERATION: &str = "stkde_cube_generation";
    /// Events currently inside the sliding window.
    pub const CUBE_LIVE_EVENTS: &str = "stkde_cube_live_events";
    /// Heap bytes held by the density cube.
    pub const CUBE_BYTES: &str = "stkde_cube_bytes";

    /// HTTP requests by `endpoint`, `method`, `status`.
    pub const HTTP_REQUESTS: &str = "stkde_http_requests_total";
    /// HTTP request latency by `endpoint`.
    pub const HTTP_REQUEST_SECONDS: &str = "stkde_http_request_seconds";

    /// Query-cache hits.
    pub const CACHE_HITS: &str = "stkde_cache_hits_total";
    /// Query-cache misses.
    pub const CACHE_MISSES: &str = "stkde_cache_misses_total";
    /// Entries currently cached.
    pub const CACHE_ENTRIES: &str = "stkde_cache_entries";

    /// Approximate-path answers computed, labeled by pyramid `level`
    /// (`level="0"` = the budget missed every level and the query was
    /// served exactly).
    pub const APPROX_QUERIES: &str = "stkde_approx_queries_total";
    /// Wall seconds spent building slab mip pyramids.
    pub const APPROX_PYRAMID_BUILD_SECONDS: &str = "stkde_approx_pyramid_build_seconds";
    /// Resident bytes of slab mip pyramids in the published snapshot.
    pub const APPROX_PYRAMID_BYTES: &str = "stkde_approx_pyramid_bytes";

    /// Messages sent, labeled by `rank`.
    pub const COMM_MSGS_SENT: &str = "stkde_comm_msgs_sent_total";
    /// Payload bytes sent, labeled by `rank`.
    pub const COMM_BYTES_SENT: &str = "stkde_comm_bytes_sent_total";
    /// Messages received, labeled by `rank`.
    pub const COMM_MSGS_RECV: &str = "stkde_comm_msgs_recv_total";
    /// Payload bytes received, labeled by `rank`.
    pub const COMM_BYTES_RECV: &str = "stkde_comm_bytes_recv_total";
    /// Wire frames sent (chunked codec), labeled by `rank`.
    pub const COMM_FRAMES_SENT: &str = "stkde_comm_frames_sent_total";
    /// Wire frames received, labeled by `rank`.
    pub const COMM_FRAMES_RECV: &str = "stkde_comm_frames_recv_total";
    /// Barriers participated in, labeled by `rank`.
    pub const COMM_BARRIERS: &str = "stkde_comm_barriers_total";

    /// Rank-local scatter time in the halo exchange, by `mode`.
    pub const HALO_COMPUTE_SECONDS: &str = "stkde_halo_compute_seconds";
    /// Time blocked waiting for neighbor halos, by `mode`.
    pub const HALO_WAIT_SECONDS: &str = "stkde_halo_wait_seconds";

    /// Span durations from the tracing layer, by `span`.
    pub const SPAN_SECONDS: &str = "stkde_span_seconds";
    /// Seconds since the process obs epoch.
    pub const UPTIME_SECONDS: &str = "stkde_uptime_seconds";
}

/// A [`Counter`](crate::Counter) handle for `$name`, cached per call
/// site so the registry lock is paid once.
///
/// Labels, when given, must be constant for the call site — the first
/// resolution is cached. For dynamic labels call
/// [`Registry::counter`](crate::Registry::counter) directly.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter!($name, &[])
    };
    ($name:expr, $labels:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Counter> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().counter($name, $labels))
    }};
}

/// A [`Gauge`](crate::Gauge) handle for `$name`, cached per call site.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {
        $crate::gauge!($name, &[])
    };
    ($name:expr, $labels:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Gauge> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().gauge($name, $labels))
    }};
}

/// A [`Histogram`](crate::Histogram) handle for `$name`, cached per
/// call site.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {
        $crate::histogram!($name, &[])
    };
    ($name:expr, $labels:expr) => {{
        static CELL: ::std::sync::OnceLock<$crate::Histogram> = ::std::sync::OnceLock::new();
        *CELL.get_or_init(|| $crate::global().histogram($name, $labels))
    }};
}

#[cfg(all(test, not(feature = "obs")))]
mod noop_tests {
    // With the feature off the whole API must still typecheck and cost
    // nothing observable: handles are unit structs, renders are empty.
    #[test]
    fn disabled_api_is_inert() {
        let c = crate::counter!("stkde_test_total");
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 0);
        let g = crate::gauge!("stkde_test_gauge");
        g.set(3.5);
        assert_eq!(g.get(), 0.0);
        let h = crate::histogram!("stkde_test_seconds");
        h.observe(1.0);
        assert_eq!(h.count(), 0);
        assert_eq!(crate::global().render(), "");
        let _s = crate::span("noop");
        assert!(crate::recent_spans().is_empty());
        assert_eq!(crate::trace_json(), "[]");
    }
}
