//! Live metric registry: atomic cells behind `Copy` handles, rendered
//! in the Prometheus text exposition format.
//!
//! The registry is a `Mutex<BTreeMap>` of families; the mutex is taken
//! on handle *creation* and on *render* only. Handles are references
//! into `Box::leak`ed cells, so recording never locks — metric cells
//! live for the process lifetime by design (bounded by the number of
//! distinct (name, labels) pairs, which is small and static here).

use crate::Kind;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Finite histogram bucket upper bounds are `2^k` for
/// `k ∈ [MIN_EXP, MAX_EXP]` — ~1 ns to ~2·10⁹ when observing seconds,
/// and 1 to ~2·10⁹ when observing sizes. One more bucket catches
/// everything above (`+Inf`).
const MIN_EXP: i32 = -30;
const MAX_EXP: i32 = 31;
const FINITE_BUCKETS: usize = (MAX_EXP - MIN_EXP + 1) as usize;
const NBUCKETS: usize = FINITE_BUCKETS + 1;

/// Bucket index for an observation: the smallest `2^k ≥ v` (so bounds
/// are inclusive upper bounds, as Prometheus `le` requires), clamped
/// into range. Non-positive and NaN observations land in the first
/// bucket.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    let e = v.log2().ceil() as i32;
    if e < MIN_EXP {
        0
    } else if e > MAX_EXP {
        NBUCKETS - 1
    } else {
        (e - MIN_EXP) as usize
    }
}

/// `(lower, upper]` bounds of bucket `i`; the last bucket's upper
/// bound is `+Inf`.
fn bucket_bounds(i: usize) -> (f64, f64) {
    let lo = if i == 0 {
        0.0
    } else {
        2f64.powi(MIN_EXP + i as i32 - 1)
    };
    let hi = if i >= FINITE_BUCKETS {
        f64::INFINITY
    } else {
        2f64.powi(MIN_EXP + i as i32)
    };
    (lo, hi)
}

/// Monotone `u64` tally. `Copy`; cheap to stash in structs.
#[derive(Clone, Copy)]
pub struct Counter(&'static AtomicU64);

impl Counter {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add `n` with Release ordering, for counters that *publish*:
    /// pairs with [`Counter::get_acquire`] (the server's ingest drain
    /// check keeps its pre-registry Release/Acquire discipline).
    #[inline]
    pub fn add_release(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Release);
    }

    /// Subtract `n` with Release ordering. Exists solely to compensate
    /// a failed publish (the ingest path pre-counts an event before the
    /// channel send and must roll back if the channel is closed);
    /// anything else would break counter monotonicity.
    #[inline]
    pub fn sub_release(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Release);
    }

    /// Current value (Relaxed; may lag concurrent writers).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Current value with Acquire ordering; pairs with
    /// [`Counter::add_release`].
    #[inline]
    pub fn get_acquire(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }
}

/// Last-write-wins `f64` level (stored as bits in an `AtomicU64`).
#[derive(Clone, Copy)]
pub struct Gauge(&'static AtomicU64);

impl Gauge {
    /// Set the level.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// The cell behind a [`Histogram`] handle.
pub(crate) struct HistogramCell {
    buckets: [AtomicU64; NBUCKETS],
    count: AtomicU64,
    /// `f64` bits, updated by CAS — observe() is batch/request-scale,
    /// not per-voxel, so the loop never contends meaningfully.
    sum_bits: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }
}

/// Log₂-bucketed `f64` distribution.
#[derive(Clone, Copy)]
pub struct Histogram(&'static HistogramCell);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let cell = self.0;
        cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        cell.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = cell.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match cell.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Estimate the `q`-quantile (`q ∈ [0, 1]`) by linear
    /// interpolation inside the covering bucket — the same estimate
    /// Prometheus's `histogram_quantile` would compute from the
    /// exported buckets. Returns 0 for an empty histogram; for mass in
    /// the `+Inf` bucket, returns that bucket's lower bound.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            if cum + c >= target {
                let (lo, hi) = bucket_bounds(i);
                if !hi.is_finite() {
                    return lo;
                }
                let frac = (target - cum) as f64 / c as f64;
                return lo + (hi - lo) * frac;
            }
            cum += c;
        }
        0.0
    }
}

enum CellRef {
    Counter(&'static AtomicU64),
    Gauge(&'static AtomicU64),
    Histogram(&'static HistogramCell),
}

struct Family {
    kind: Kind,
    help: String,
    /// Instances keyed by their rendered (escaped, comma-joined) label
    /// pairs; `""` is the unlabeled instance. Cells are leaked once at
    /// creation so handles can be `Copy + 'static`.
    instances: BTreeMap<String, &'static CellRef>,
}

/// A metric registry. [`global()`] is the process-wide one every
/// instrumentation site records into; fresh registries are for tests
/// and for one-shot renders of external data (the per-rank comm dump).
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    /// Declare a family's help text (and kind) up front, so it renders
    /// with `# HELP`/`# TYPE` — and a zero-valued sample, if no
    /// instance exists yet. Idempotent; later calls overwrite help.
    pub fn describe(&self, name: &str, kind: Kind, help: &str) {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: String::new(),
            instances: BTreeMap::new(),
        });
        assert_kind(name, fam.kind, kind);
        fam.help = help.to_string();
    }

    /// The counter for `(name, labels)`, created on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different kind — two call
    /// sites disagreeing about a metric's type is a programming error
    /// worth failing loudly on.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let cell = self.cell(name, labels, Kind::Counter, || {
            CellRef::Counter(Box::leak(Box::new(AtomicU64::new(0))))
        });
        match cell {
            &CellRef::Counter(c) => Counter(c),
            // `cell` guarantees the kind matches the constructor.
            _ => unreachable!(),
        }
    }

    /// The gauge for `(name, labels)`, created on first use.
    ///
    /// # Panics
    /// On kind mismatch, as for [`Registry::counter`].
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let cell = self.cell(name, labels, Kind::Gauge, || {
            CellRef::Gauge(Box::leak(Box::new(AtomicU64::new(0f64.to_bits()))))
        });
        match cell {
            &CellRef::Gauge(g) => Gauge(g),
            _ => unreachable!(),
        }
    }

    /// The histogram for `(name, labels)`, created on first use.
    ///
    /// # Panics
    /// On kind mismatch, as for [`Registry::counter`].
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let cell = self.cell(name, labels, Kind::Histogram, || {
            CellRef::Histogram(Box::leak(Box::new(HistogramCell::new())))
        });
        match cell {
            &CellRef::Histogram(h) => Histogram(h),
            _ => unreachable!(),
        }
    }

    fn cell(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> CellRef,
    ) -> &'static CellRef {
        let key = render_labels(labels);
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: String::new(),
            instances: BTreeMap::new(),
        });
        assert_kind(name, fam.kind, kind);
        fam.instances
            .entry(key)
            .or_insert_with(|| &*Box::leak(Box::new(make())))
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format (families sorted by name, instances by label set).
    ///
    /// Values are read without a snapshot: a scrape racing writers may
    /// see a sum slightly behind its count, which monitoring
    /// consumers tolerate by design.
    pub fn render(&self) -> String {
        let fams = self.families.lock().unwrap();
        let mut out = String::with_capacity(4096);
        for (name, fam) in fams.iter() {
            if !fam.help.is_empty() {
                out.push_str("# HELP ");
                out.push_str(name);
                out.push(' ');
                out.push_str(&escape_help(&fam.help));
                out.push('\n');
            }
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push(' ');
            out.push_str(fam.kind.as_str());
            out.push('\n');
            if fam.instances.is_empty() {
                render_zero(&mut out, name, fam.kind);
            }
            for (labels, cell) in &fam.instances {
                match cell {
                    CellRef::Counter(c) => {
                        push_sample(
                            &mut out,
                            name,
                            labels,
                            &c.load(Ordering::Relaxed).to_string(),
                        );
                    }
                    CellRef::Gauge(g) => {
                        let v = f64::from_bits(g.load(Ordering::Relaxed));
                        push_sample(&mut out, name, labels, &fmt_value(v));
                    }
                    CellRef::Histogram(h) => render_histogram(&mut out, name, labels, h),
                }
            }
        }
        out
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

fn assert_kind(name: &str, have: Kind, want: Kind) {
    assert!(
        have == want,
        "metric `{name}` registered as {} but used as {}",
        have.as_str(),
        want.as_str()
    );
}

/// `name{labels} value\n`, eliding the braces for the unlabeled
/// instance.
fn push_sample(out: &mut String, name: &str, labels: &str, value: &str) {
    out.push_str(name);
    if !labels.is_empty() {
        out.push('{');
        out.push_str(labels);
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

fn render_zero(out: &mut String, name: &str, kind: Kind) {
    match kind {
        Kind::Counter | Kind::Gauge => push_sample(out, name, "", "0"),
        Kind::Histogram => {
            push_sample(out, &format!("{name}_bucket"), "le=\"+Inf\"", "0");
            push_sample(out, &format!("{name}_sum"), "", "0");
            push_sample(out, &format!("{name}_count"), "", "0");
        }
    }
}

fn render_histogram(out: &mut String, name: &str, labels: &str, h: &HistogramCell) {
    let bucket_name = format!("{name}_bucket");
    let mut cum = 0u64;
    for i in 0..FINITE_BUCKETS {
        let c = h.buckets[i].load(Ordering::Relaxed);
        if c == 0 {
            continue;
        }
        cum += c;
        let le = fmt_value(bucket_bounds(i).1);
        let ls = join_labels(labels, &format!("le=\"{le}\""));
        push_sample(out, &bucket_name, &ls, &cum.to_string());
    }
    cum += h.buckets[NBUCKETS - 1].load(Ordering::Relaxed);
    let ls = join_labels(labels, "le=\"+Inf\"");
    push_sample(out, &bucket_name, &ls, &cum.to_string());
    push_sample(
        out,
        &format!("{name}_sum"),
        labels,
        &fmt_value(f64::from_bits(h.sum_bits.load(Ordering::Relaxed))),
    );
    push_sample(
        out,
        &format!("{name}_count"),
        labels,
        &h.count.load(Ordering::Relaxed).to_string(),
    );
}

fn join_labels(base: &str, extra: &str) -> String {
    if base.is_empty() {
        extra.to_string()
    } else {
        format!("{base},{extra}")
    }
}

/// Sort label pairs by key and render them escaped: a handle's
/// identity must not depend on argument order at the call site.
fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<_> = labels.to_vec();
    pairs.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out
}

/// Label-value escaping per the exposition format: backslash, double
/// quote, and line feed.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// HELP text escaping: backslash and line feed only (quotes are legal).
fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` sample value: integers plainly, small magnitudes in
/// scientific notation (keeps the 2⁻³⁰-second bucket bound readable),
/// everything else via shortest-roundtrip decimal.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".to_string();
    }
    if v == f64::INFINITY {
        return "+Inf".to_string();
    }
    if v == f64::NEG_INFINITY {
        return "-Inf".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else if v.abs() >= 1e-3 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_inclusive_powers_of_two() {
        // Exact powers of two land in the bucket whose upper bound they
        // equal (`le` is inclusive), one ulp more spills into the next.
        let h = Registry::new().histogram("b", &[]);
        h.observe(8.0);
        h.observe(8.0 + f64::EPSILON * 8.0);
        h.observe(9.0);
        assert_eq!(bucket_index(8.0), (3 - MIN_EXP) as usize);
        assert_eq!(
            bucket_index(8.0 + 8.0 * f64::EPSILON),
            (4 - MIN_EXP) as usize
        );
        assert_eq!(bucket_index(9.0), (4 - MIN_EXP) as usize);
        assert_eq!(bucket_bounds((3 - MIN_EXP) as usize).1, 8.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn bucket_index_clamps_and_tolerates_junk() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-3.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e-300), 0);
        assert_eq!(bucket_index(1e300), NBUCKETS - 1);
        assert_eq!(bucket_bounds(NBUCKETS - 1).1, f64::INFINITY);
    }

    #[test]
    fn quantile_estimates_bracket_the_data() {
        let r = Registry::new();
        let h = r.histogram("q", &[]);
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // uniform on (0, 1]
        }
        // Log buckets bound each estimate within a factor of 2.
        let p50 = h.quantile(0.5);
        assert!((0.25..=1.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.5..=1.0).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1.0 + 1e-12);
        assert_eq!(Registry::new().histogram("e", &[]).quantile(0.5), 0.0);
    }

    #[test]
    fn quantile_uses_inf_bucket_lower_bound() {
        let r = Registry::new();
        let h = r.histogram("q", &[]);
        h.observe(1e300);
        let top = bucket_bounds(NBUCKETS - 1).0;
        assert_eq!(h.quantile(0.5), top);
    }

    #[test]
    fn exposition_text_is_exact() {
        let r = Registry::new();
        r.describe("stkde_x_total", Kind::Counter, "Things counted.");
        r.counter("stkde_x_total", &[("endpoint", "/density")])
            .add(3);
        r.describe("stkde_g", Kind::Gauge, "A level.");
        r.gauge("stkde_g", &[]).set(2.5);
        r.describe("stkde_h_seconds", Kind::Histogram, "A latency.");
        let h = r.histogram("stkde_h_seconds", &[]);
        h.observe(0.5);
        h.observe(0.5);
        h.observe(2.0);
        let text = r.render();
        let expected = "\
# HELP stkde_g A level.
# TYPE stkde_g gauge
stkde_g 2.5
# HELP stkde_h_seconds A latency.
# TYPE stkde_h_seconds histogram
stkde_h_seconds_bucket{le=\"0.5\"} 2
stkde_h_seconds_bucket{le=\"2\"} 3
stkde_h_seconds_bucket{le=\"+Inf\"} 3
stkde_h_seconds_sum 3
stkde_h_seconds_count 3
# HELP stkde_x_total Things counted.
# TYPE stkde_x_total counter
stkde_x_total{endpoint=\"/density\"} 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn described_but_unused_families_render_zero_samples() {
        let r = Registry::new();
        r.describe("stkde_c_total", Kind::Counter, "c");
        r.describe("stkde_h_seconds", Kind::Histogram, "h");
        let text = r.render();
        assert!(text.contains("stkde_c_total 0\n"), "{text}");
        assert!(text.contains("stkde_h_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("stkde_h_seconds_sum 0\n"));
        assert!(text.contains("stkde_h_seconds_count 0\n"));
    }

    #[test]
    fn label_values_are_escaped_and_keys_sorted() {
        let r = Registry::new();
        r.counter("m", &[("b", "x\"y\\z\nw"), ("a", "1")]).inc();
        let text = r.render();
        assert!(
            text.contains("m{a=\"1\",b=\"x\\\"y\\\\z\\nw\"} 1\n"),
            "{text}"
        );
        // Same labels in the other order resolve to the same cell.
        r.counter("m", &[("a", "1"), ("b", "x\"y\\z\nw")]).inc();
        assert!(r.render().contains("} 2\n"));
    }

    #[test]
    fn help_text_is_escaped() {
        let r = Registry::new();
        r.describe("m", Kind::Gauge, "line\nbreak\\slash");
        assert!(r.render().contains("# HELP m line\\nbreak\\\\slash\n"));
    }

    #[test]
    #[should_panic(expected = "registered as counter but used as gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("m", &[]).inc();
        r.gauge("m", &[]);
    }

    #[test]
    fn concurrent_increments_lose_nothing() {
        // 8 threads × 100k increments on one counter plus a histogram:
        // the whole point of the atomic cells.
        let r = Box::leak(Box::new(Registry::new()));
        let c = r.counter("stkde_conc_total", &[]);
        let h = r.histogram("stkde_conc_seconds", &[]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(move || {
                    for i in 0..100_000u64 {
                        c.inc();
                        if i % 100 == 0 {
                            h.observe(0.001);
                        }
                    }
                });
            }
        });
        assert_eq!(c.get(), 800_000);
        assert_eq!(h.count(), 8_000);
        assert!((h.sum() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn release_acquire_counter_api_roundtrips() {
        let r = Registry::new();
        let c = r.counter("m", &[]);
        c.add_release(5);
        c.sub_release(2);
        assert_eq!(c.get_acquire(), 3);
    }

    #[test]
    fn fmt_value_covers_the_interesting_shapes() {
        assert_eq!(fmt_value(8.0), "8");
        assert_eq!(fmt_value(0.25), "0.25");
        assert_eq!(fmt_value(2f64.powi(-30)), "9.313225746154785e-10");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(-1.0), "-1");
    }
}
