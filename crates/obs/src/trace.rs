//! Lightweight spans: guard-scoped timings on a thread-local depth
//! stack, recorded into a bounded ring buffer and mirrored into
//! `stkde_span_seconds{span=...}` histograms.
//!
//! Spans are for batch/request-scale work (an ingest batch, a halo
//! exchange, a cache fill) — the guard takes two monotonic-clock reads
//! and, on drop, one short mutex hold on the trace ring. Per-voxel or
//! per-steal paths use bare counters instead.

use crate::{names, SpanRecord};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Most recent spans retained for `GET /trace`.
const TRACE_CAP: usize = 1024;

static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static DEPTH: Cell<u16> = const { Cell::new(0) };
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process obs epoch (first use of the clock).
pub(crate) fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

fn ring() -> &'static Mutex<VecDeque<SpanRecord>> {
    static RING: OnceLock<Mutex<VecDeque<SpanRecord>>> = OnceLock::new();
    RING.get_or_init(|| Mutex::new(VecDeque::with_capacity(TRACE_CAP)))
}

/// Open a span; it closes (and records) when the guard drops.
///
/// ```
/// {
///     let _s = stkde_obs::span("ingest_batch");
///     // ... timed work ...
/// } // recorded here
/// ```
pub fn span(name: &'static str) -> SpanGuard {
    let depth = DEPTH.with(|d| {
        let cur = d.get();
        d.set(cur.saturating_add(1));
        cur
    });
    SpanGuard {
        name,
        start_ns: now_ns(),
        depth,
    }
}

/// Live span; closes on drop.
#[must_use = "a span measures until the guard drops; binding it to _ closes it immediately"]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    depth: u16,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        crate::global()
            .histogram(names::SPAN_SECONDS, &[("span", self.name)])
            .observe(dur_ns as f64 * 1e-9);
        let record = SpanRecord {
            name: self.name,
            start_ns: self.start_ns,
            dur_ns,
            depth: self.depth,
            thread: std::thread::current()
                .name()
                .unwrap_or("<unnamed>")
                .to_string(),
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
        };
        let mut ring = ring().lock().unwrap();
        if ring.len() == TRACE_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

/// The retained spans, oldest first.
pub fn recent_spans() -> Vec<SpanRecord> {
    ring().lock().unwrap().iter().cloned().collect()
}

/// The retained spans as a JSON array (the `GET /trace` body).
pub fn trace_json() -> String {
    let spans = recent_spans();
    let mut out = String::with_capacity(64 * spans.len() + 2);
    out.push('[');
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"start_ns\":{},\"dur_ns\":{},\"depth\":{},\"thread\":\"{}\",\"seq\":{}}}",
            escape_json(s.name),
            s.start_ns,
            s.dur_ns,
            s.depth,
            escape_json(&s.thread),
            s.seq
        ));
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_record_and_bound_the_ring() {
        {
            let _outer = span("obs_test_outer");
            let _inner = span("obs_test_inner");
        }
        let spans = recent_spans();
        let inner = spans
            .iter()
            .rev()
            .find(|s| s.name == "obs_test_inner")
            .expect("inner span recorded");
        let outer = spans
            .iter()
            .rev()
            .find(|s| s.name == "obs_test_outer")
            .expect("outer span recorded");
        assert_eq!(inner.depth, outer.depth + 1);
        assert!(inner.seq < outer.seq, "inner guard drops first");
        assert!(outer.dur_ns >= inner.dur_ns);

        for _ in 0..(TRACE_CAP + 10) {
            let _s = span("obs_test_fill");
        }
        assert_eq!(recent_spans().len(), TRACE_CAP);

        // The span histogram saw them too.
        let h = crate::global().histogram(names::SPAN_SECONDS, &[("span", "obs_test_fill")]);
        assert!(h.count() >= (TRACE_CAP + 10) as u64);
    }

    #[test]
    fn trace_json_is_wellformed_and_escaped() {
        {
            let _s = span("obs_test_json");
        }
        let json = trace_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"name\":\"obs_test_json\""));
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }
}
