//! Typed communication errors.
//!
//! The in-process [`World`](crate::World) turns protocol bugs into panics
//! (a deadlock between threads of one test is best crashed on). The
//! multi-process [`ProcessWorld`](crate::process::ProcessWorld) cannot:
//! a peer is a separate OS process that may die, stall, or speak garbage,
//! and the surviving ranks must report that within a bounded deadline
//! instead of hanging CI. Everything fallible in the process backend
//! therefore returns [`CommError`].

use std::fmt;

/// Errors from the chunked wire codec ([`payload`](crate::payload)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// A frame did not start with the frame magic byte.
    BadMagic(u8),
    /// A frame carried flag bits this codec does not define.
    BadFlags(u8),
    /// A frame advertised a chunk longer than the negotiated maximum.
    OversizedChunk {
        /// Advertised chunk payload length.
        len: usize,
        /// Maximum chunk payload length this decoder accepts.
        max: usize,
    },
    /// Reassembling a message would exceed the configured message cap.
    OversizedMessage {
        /// Reassembled length the message would reach.
        len: usize,
        /// Maximum message length this decoder accepts.
        max: usize,
    },
    /// A continuation frame changed tag mid-message; a stream must carry
    /// each message's chunks contiguously.
    MixedTags {
        /// Tag of the message under reassembly.
        started: u32,
        /// Tag the offending frame carried.
        got: u32,
    },
    /// The stream ended inside a frame or mid-message.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A complete message failed payload-level decoding.
    BadPayload(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadMagic(b) => write!(f, "bad frame magic byte 0x{b:02x}"),
            CodecError::BadFlags(b) => write!(f, "undefined frame flag bits 0x{b:02x}"),
            CodecError::OversizedChunk { len, max } => {
                write!(f, "chunk of {len} bytes exceeds the {max}-byte chunk limit")
            }
            CodecError::OversizedMessage { len, max } => {
                write!(f, "message of {len} bytes exceeds the {max}-byte cap")
            }
            CodecError::MixedTags { started, got } => write!(
                f,
                "frame tagged {got} interleaved into unfinished message tagged {started}"
            ),
            CodecError::Truncated { context } => write!(f, "stream truncated while {context}"),
            CodecError::BadPayload(why) => write!(f, "payload decode failed: {why}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Errors from a multi-process world: spawn, bootstrap, transport, or a
/// peer rank failing to hold up the protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The wire codec rejected incoming bytes.
    Codec(CodecError),
    /// An I/O operation on a socket or child handle failed.
    Io(String),
    /// A peer's connection closed while traffic was still expected.
    PeerClosed {
        /// The rank whose connection dropped (or this rank's whole inbox).
        rank: usize,
    },
    /// A blocking operation exceeded its deadline.
    Timeout {
        /// How long the operation waited, in milliseconds.
        waited_ms: u64,
        /// What the operation was waiting for.
        waiting_for: String,
    },
    /// A rank process exited abnormally or broke the launch protocol.
    RankFailed {
        /// The failing rank.
        rank: usize,
        /// Human-readable failure description (exit status, log tail…).
        detail: String,
    },
    /// Launching a rank process failed.
    Spawn(String),
    /// The launch/shutdown protocol was violated.
    Protocol(String),
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Codec(e) => write!(f, "codec error: {e}"),
            CommError::Io(e) => write!(f, "i/o error: {e}"),
            CommError::PeerClosed { rank } => {
                write!(f, "connection to rank {rank} closed unexpectedly")
            }
            CommError::Timeout {
                waited_ms,
                waiting_for,
            } => write!(
                f,
                "timed out after {waited_ms} ms waiting for {waiting_for}"
            ),
            CommError::RankFailed { rank, detail } => write!(f, "rank {rank} failed: {detail}"),
            CommError::Spawn(e) => write!(f, "failed to spawn rank process: {e}"),
            CommError::Protocol(e) => write!(f, "protocol violation: {e}"),
        }
    }
}

impl std::error::Error for CommError {}

impl From<CodecError> for CommError {
    fn from(e: CodecError) -> Self {
        CommError::Codec(e)
    }
}

impl From<std::io::Error> for CommError {
    fn from(e: std::io::Error) -> Self {
        CommError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(Box<dyn std::error::Error>, &str)> = vec![
            (Box::new(CodecError::BadMagic(0xab)), "0xab"),
            (
                Box::new(CodecError::OversizedChunk { len: 9, max: 4 }),
                "chunk",
            ),
            (
                Box::new(CommError::Timeout {
                    waited_ms: 250,
                    waiting_for: "halo from rank 2".into(),
                }),
                "250 ms",
            ),
            (
                Box::new(CommError::RankFailed {
                    rank: 3,
                    detail: "exit code 7".into(),
                }),
                "rank 3",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn codec_errors_convert() {
        let e: CommError = CodecError::Truncated { context: "header" }.into();
        assert!(matches!(e, CommError::Codec(_)));
    }
}
