//! Latency/bandwidth communication cost model.
//!
//! The substrate runs ranks as threads on one host, so measured wall-clock
//! says little about a real cluster. Instead, each rank's *accounted*
//! traffic ([`RankStats`]) is priced with the classic postal model
//! `T = msgs·α + bytes·β` and combined with the rank's measured compute
//! time to yield a modeled makespan — the same measured-work-plus-model
//! methodology the paper uses for its Graham-bound analysis (§5.2).

use crate::world::RankStats;

/// Postal-model network parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommCost {
    /// Per-message latency α in seconds (includes header/software
    /// overhead).
    pub latency: f64,
    /// Per-byte transfer time β in seconds (1 / bandwidth).
    pub inv_bandwidth: f64,
}

impl CommCost {
    /// 10 Gb/s Ethernet with ~10 µs end-to-end latency.
    pub const ETHERNET_10G: Self = Self {
        latency: 10e-6,
        inv_bandwidth: 1.0 / 1.25e9,
    };

    /// HDR InfiniBand-class fabric: ~1 µs latency, ~25 GB/s.
    pub const INFINIBAND: Self = Self {
        latency: 1e-6,
        inv_bandwidth: 1.0 / 25e9,
    };

    /// A zero-cost network (upper bound: perfect interconnect).
    pub const FREE: Self = Self {
        latency: 0.0,
        inv_bandwidth: 0.0,
    };

    /// Seconds this rank spends communicating under the model. Sends and
    /// receives are both priced — a rank pays to inject and to drain.
    ///
    /// The latency term is charged per wire *frame* when the backend
    /// reports frames (the chunked multi-process transport emits
    /// `ceil(bytes/chunk)` frames per message); the in-process world
    /// reports no frames, so whole messages are the floor. This keeps
    /// modeled time honest about chunking's per-frame software overhead.
    pub fn rank_time(&self, s: &RankStats) -> f64 {
        let injections = s.msgs_sent.max(s.frames_sent);
        let drains = s.msgs_recv.max(s.frames_recv);
        (injections + drains) as f64 * self.latency
            + (s.bytes_sent + s.bytes_recv) as f64 * self.inv_bandwidth
    }
}

/// A modeled distributed execution: measured per-rank compute plus priced
/// per-rank communication.
#[derive(Debug, Clone)]
pub struct ModeledRun {
    /// Measured compute seconds per rank.
    pub compute: Vec<f64>,
    /// Modeled communication seconds per rank.
    pub comm: Vec<f64>,
}

impl ModeledRun {
    /// Price a run from measured compute times and accounted traffic.
    ///
    /// # Panics
    /// Panics if the slices disagree in length.
    pub fn price(compute: Vec<f64>, stats: &[RankStats], cost: CommCost) -> Self {
        assert_eq!(compute.len(), stats.len(), "one compute time per rank");
        let comm = stats.iter().map(|s| cost.rank_time(s)).collect();
        Self { compute, comm }
    }

    /// Modeled makespan: the slowest rank's compute + comm total.
    ///
    /// Bulk-synchronous view (compute phase, then exchange phase), which
    /// matches how the distributed STKDE algorithms are structured.
    pub fn makespan(&self) -> f64 {
        self.compute
            .iter()
            .zip(&self.comm)
            .map(|(&c, &m)| c + m)
            .fold(0.0, f64::max)
    }

    /// Modeled speedup against a sequential reference time.
    pub fn speedup(&self, sequential: f64) -> f64 {
        let m = self.makespan();
        if m == 0.0 {
            0.0
        } else {
            sequential / m
        }
    }

    /// Load imbalance of the compute phase: max/mean (1.0 = perfect).
    pub fn imbalance(&self) -> f64 {
        if self.compute.is_empty() {
            return 1.0;
        }
        let max = self.compute.iter().fold(0.0f64, |a, &b| a.max(b));
        let mean = self.compute.iter().sum::<f64>() / self.compute.len() as f64;
        if mean == 0.0 {
            1.0
        } else {
            max / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(msgs: usize, bytes: usize) -> RankStats {
        RankStats {
            msgs_sent: msgs,
            bytes_sent: bytes,
            ..RankStats::default()
        }
    }

    #[test]
    fn postal_model_prices_messages_and_bytes() {
        let c = CommCost {
            latency: 1e-3,
            inv_bandwidth: 1e-6,
        };
        let t = c.rank_time(&stats(10, 1000));
        assert!((t - (10.0 * 1e-3 + 1000.0 * 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn chunked_frames_raise_the_latency_term() {
        let c = CommCost {
            latency: 1e-3,
            inv_bandwidth: 0.0,
        };
        let whole = stats(2, 1 << 20);
        // Same two messages, chunked into 32 frames by a process backend.
        let chunked = RankStats {
            frames_sent: 32,
            ..whole
        };
        assert!((c.rank_time(&whole) - 2e-3).abs() < 1e-12);
        assert!((c.rank_time(&chunked) - 32e-3).abs() < 1e-12);
    }

    #[test]
    fn free_network_costs_nothing() {
        assert_eq!(CommCost::FREE.rank_time(&stats(1000, 1 << 30)), 0.0);
    }

    #[test]
    fn infiniband_beats_ethernet() {
        let s = stats(100, 10_000_000);
        assert!(CommCost::INFINIBAND.rank_time(&s) < CommCost::ETHERNET_10G.rank_time(&s));
    }

    #[test]
    fn makespan_is_max_rank_total() {
        let run = ModeledRun {
            compute: vec![1.0, 2.0, 0.5],
            comm: vec![0.5, 0.1, 0.2],
        };
        assert!((run.makespan() - 2.1).abs() < 1e-12);
        assert!((run.speedup(4.2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn price_combines_measured_and_modeled() {
        let run = ModeledRun::price(
            vec![1.0, 1.0],
            &[stats(0, 0), stats(1, 0)],
            CommCost {
                latency: 0.5,
                inv_bandwidth: 0.0,
            },
        );
        assert!((run.makespan() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn imbalance_of_even_load_is_one() {
        let run = ModeledRun {
            compute: vec![2.0, 2.0, 2.0],
            comm: vec![0.0; 3],
        };
        assert!((run.imbalance() - 1.0).abs() < 1e-12);
        let skew = ModeledRun {
            compute: vec![4.0, 1.0, 1.0],
            comm: vec![0.0; 3],
        };
        assert!(skew.imbalance() > 1.9);
    }

    #[test]
    #[should_panic(expected = "one compute time per rank")]
    fn price_length_mismatch_panics() {
        let _ = ModeledRun::price(vec![1.0], &[], CommCost::FREE);
    }
}
