//! `ProcessWorld`: a real multi-process SPMD backend for [`WorldComm`].
//!
//! Ranks are separate OS processes spawned from a rank executable and
//! wired together with Unix-domain sockets under a per-world temp
//! directory — zero dependencies beyond `std`, fully offline. Messages
//! travel as chunked, length-prefixed frames (see
//! [`payload`](crate::payload)), so a multi-megabyte ghost-zone transfer
//! never requires an unbounded single write and a stalled peer surfaces
//! as a typed [`CommError::Timeout`] rather than a hang.
//!
//! # Launch protocol
//!
//! The parent ([`ProcessWorld::launch`]) binds `<dir>/coord.sock`, then
//! spawns one child per rank with the environment below. Each child
//! ([`RankBoot::from_env`] + [`RankBoot::connect`]):
//!
//! 1. binds its own mesh listener at `<dir>/rank<r>.sock`;
//! 2. connects to `coord.sock` and sends a `HELLO(rank)` frame;
//! 3. connects to every lower rank's listener (retrying until the
//!    deadline — peers may still be starting) and sends `IDENT(rank)`;
//!    accepts one connection from every higher rank and reads its
//!    `IDENT`;
//! 4. runs the rank program over the resulting full mesh
//!    ([`ProcessComm`]);
//! 5. reports `DONE(stats ‖ output)` — or `FAIL(reason)` — on the
//!    coordinator socket and exits.
//!
//! The parent collects one `DONE`/`FAIL` per rank concurrently, kills
//! every child on the first failure (fail-fast: surviving ranks would
//! only burn their own timeouts), and returns per-rank outputs and
//! traffic stats exactly like the in-process [`World`](crate::World).
//!
//! # Environment variables (the rank-spawn protocol)
//!
//! | variable | meaning |
//! |---|---|
//! | `STKDE_RANK` | this process's rank id, `0..size` |
//! | `STKDE_RANK_SIZE` | number of ranks in the world |
//! | `STKDE_RANK_DIR` | directory holding `coord.sock` / `rank<r>.sock` |
//! | `STKDE_RANK_TIMEOUT_MS` | per-operation deadline for blocking comm |
//! | `STKDE_RANK_CHUNK` | wire chunk payload size in bytes |
//! | `STKDE_RANK_LOG_DIR` | (parent, optional) write per-rank logs here |
//!
//! Everything else in the parent's configured environment is forwarded
//! verbatim, which is how rank programs receive their problem spec.

use crate::error::{CodecError, CommError};
use crate::payload::{frames_for, write_message, FrameDecoder, WireMessage, WirePayload};
use crate::world::{RankStats, WorldComm, WorldOutput};
use std::io::Read;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Env var: rank id of a spawned process.
pub const ENV_RANK: &str = "STKDE_RANK";
/// Env var: world size.
pub const ENV_SIZE: &str = "STKDE_RANK_SIZE";
/// Env var: socket directory.
pub const ENV_DIR: &str = "STKDE_RANK_DIR";
/// Env var: per-operation communication deadline in milliseconds.
pub const ENV_TIMEOUT_MS: &str = "STKDE_RANK_TIMEOUT_MS";
/// Env var: wire chunk payload size in bytes.
pub const ENV_CHUNK: &str = "STKDE_RANK_CHUNK";
/// Env var (read by the parent): directory for per-rank log files; when
/// set, each rank's stdout+stderr go to `<dir>/rank<r>.log` so CI can
/// upload them on failure.
pub const ENV_LOG_DIR: &str = "STKDE_RANK_LOG_DIR";

/// Tags at or above this value are reserved for the transport (HELLO,
/// DONE, barriers…); user sends assert below it.
pub const TAG_RESERVED_BASE: u32 = 0xFFFF_FF00;

const TAG_HELLO: u32 = 0xFFFF_FF01;
const TAG_DONE: u32 = 0xFFFF_FF02;
const TAG_FAIL: u32 = 0xFFFF_FF03;
const TAG_IDENT: u32 = 0xFFFF_FF04;
const TAG_BARRIER_ARRIVE: u32 = 0xFFFF_FF05;
const TAG_BARRIER_RELEASE: u32 = 0xFFFF_FF06;

/// Default per-operation deadline for blocking communication.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

const STATS_WORDS: usize = 7;

fn encode_u32(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

fn decode_u32(bytes: &[u8], what: &str) -> Result<u32, CommError> {
    let arr: [u8; 4] = bytes.try_into().map_err(|_| {
        CommError::Protocol(format!("{what}: expected 4 bytes, got {}", bytes.len()))
    })?;
    Ok(u32::from_le_bytes(arr))
}

fn encode_stats(s: &RankStats) -> [u8; STATS_WORDS * 8] {
    let words = [
        s.msgs_sent as u64,
        s.bytes_sent as u64,
        s.msgs_recv as u64,
        s.bytes_recv as u64,
        s.barriers as u64,
        s.frames_sent as u64,
        s.frames_recv as u64,
    ];
    let mut out = [0u8; STATS_WORDS * 8];
    for (chunk, w) in out.chunks_exact_mut(8).zip(words) {
        chunk.copy_from_slice(&w.to_le_bytes());
    }
    out
}

fn decode_stats(bytes: &[u8]) -> Result<RankStats, CommError> {
    if bytes.len() < STATS_WORDS * 8 {
        return Err(CommError::Protocol(format!(
            "DONE report too short for stats: {} bytes",
            bytes.len()
        )));
    }
    let mut words = [0u64; STATS_WORDS];
    for (w, chunk) in words.iter_mut().zip(bytes.chunks_exact(8)) {
        *w = u64::from_le_bytes(chunk.try_into().expect("chunks_exact(8)"));
    }
    Ok(RankStats {
        msgs_sent: words[0] as usize,
        bytes_sent: words[1] as usize,
        msgs_recv: words[2] as usize,
        bytes_recv: words[3] as usize,
        barriers: words[4] as usize,
        frames_sent: words[5] as usize,
        frames_recv: words[6] as usize,
    })
}

/// Read one complete chunked message from `stream`, blocking at most
/// until `deadline`.
fn read_message_deadline(
    stream: &mut UnixStream,
    dec: &mut FrameDecoder,
    deadline: Instant,
    what: &str,
) -> Result<WireMessage, CommError> {
    let started = Instant::now();
    let mut buf = [0u8; 16 * 1024];
    loop {
        if let Some(m) = dec.next_message() {
            return Ok(m);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(CommError::Timeout {
                waited_ms: (now - started).as_millis() as u64,
                waiting_for: what.to_string(),
            });
        }
        // A zero read timeout means "block forever" on Unix sockets, so
        // clamp the remaining window to at least one millisecond.
        stream.set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))?;
        match stream.read(&mut buf) {
            Ok(0) => {
                dec.finish()?;
                return Err(CommError::Protocol(format!(
                    "connection closed while waiting for {what}"
                )));
            }
            Ok(n) => dec.push(&buf[..n])?,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e.into()),
        }
    }
}

// ---------------------------------------------------------------------------
// Parent side.
// ---------------------------------------------------------------------------

/// Builder/launcher for a multi-process SPMD world.
///
/// The configured executable is spawned once per rank; it must call
/// [`RankBoot::from_env`] early and hand the boot to a rank program (see
/// the module docs for the full protocol).
#[derive(Debug, Clone)]
pub struct ProcessWorld {
    size: usize,
    exe: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    timeout: Duration,
    run_timeout: Duration,
    chunk: usize,
}

impl ProcessWorld {
    /// A world of `size` rank processes spawned from `exe`.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize, exe: impl Into<PathBuf>) -> Self {
        assert!(size > 0, "world size must be > 0");
        Self {
            size,
            exe: exe.into(),
            args: Vec::new(),
            envs: Vec::new(),
            timeout: DEFAULT_TIMEOUT,
            run_timeout: Duration::from_secs(120),
            chunk: crate::payload::DEFAULT_CHUNK,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Append a command-line argument for every rank process.
    pub fn arg(mut self, a: impl Into<String>) -> Self {
        self.args.push(a.into());
        self
    }

    /// Set an environment variable for every rank process (how rank
    /// programs receive their problem spec).
    pub fn env(mut self, k: impl Into<String>, v: impl Into<String>) -> Self {
        self.envs.push((k.into(), v.into()));
        self
    }

    /// Per-operation deadline for blocking communication inside ranks
    /// (exported as `STKDE_RANK_TIMEOUT_MS`).
    pub fn timeout(mut self, d: Duration) -> Self {
        self.timeout = d;
        self
    }

    /// Overall wall-clock budget for the whole launch (bootstrap +
    /// compute + collection). Exceeding it kills every rank and errors.
    pub fn run_timeout(mut self, d: Duration) -> Self {
        self.run_timeout = d;
        self
    }

    /// Wire chunk payload size in bytes (exported as `STKDE_RANK_CHUNK`).
    ///
    /// # Panics
    /// Panics if `bytes` is zero.
    pub fn chunk(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "chunk size must be > 0");
        self.chunk = bytes;
        self
    }

    /// Spawn all ranks, run them to completion, and collect each rank's
    /// output blob and traffic stats (indexed by rank).
    ///
    /// # Errors
    /// [`CommError::Spawn`] when a process cannot start,
    /// [`CommError::RankFailed`] when a rank exits abnormally or reports
    /// `FAIL` (the detail includes a log tail), [`CommError::Timeout`]
    /// when the run exceeds [`run_timeout`](Self::run_timeout). On any
    /// error every surviving rank is killed before returning.
    pub fn launch(&self) -> Result<WorldOutput<Vec<u8>>, CommError> {
        // Relaxed: the id only needs to be unique, not ordered with
        // anything — each fetch_add returns a distinct value regardless.
        static WORLD_ID: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "stkde-world-{}-{}",
            std::process::id(),
            WORLD_ID.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir)?;
        let result = self.launch_in(&dir);
        let _ = std::fs::remove_dir_all(&dir);
        result
    }

    fn launch_in(&self, dir: &std::path::Path) -> Result<WorldOutput<Vec<u8>>, CommError> {
        let deadline = Instant::now() + self.run_timeout;
        let listener = UnixListener::bind(dir.join("coord.sock"))?;
        listener.set_nonblocking(true)?;

        // Each launch logs into its own subdirectory (named after the
        // unique socket dir), so concurrent worlds never clobber each
        // other's rank logs.
        let log_dir: Option<PathBuf> = std::env::var_os(ENV_LOG_DIR).map(|base| {
            let mut p = PathBuf::from(base);
            if let Some(name) = dir.file_name() {
                p.push(name);
            }
            p
        });
        if let Some(ld) = &log_dir {
            std::fs::create_dir_all(ld)?;
        }

        let mut children = Vec::with_capacity(self.size);
        let mut logs: Vec<Arc<Mutex<Vec<u8>>>> = Vec::with_capacity(self.size);
        let mut drains = Vec::new();
        for rank in 0..self.size {
            let mut cmd = std::process::Command::new(&self.exe);
            cmd.args(&self.args)
                .env(ENV_RANK, rank.to_string())
                .env(ENV_SIZE, self.size.to_string())
                .env(ENV_DIR, dir)
                .env(ENV_TIMEOUT_MS, self.timeout.as_millis().to_string())
                .env(ENV_CHUNK, self.chunk.to_string())
                .envs(self.envs.iter().map(|(k, v)| (k, v)))
                .stdin(std::process::Stdio::null());
            let log = Arc::new(Mutex::new(Vec::new()));
            if let Some(ld) = &log_dir {
                let file = std::fs::File::create(ld.join(format!("rank{rank}.log")))?;
                cmd.stdout(file.try_clone()?).stderr(file);
            } else {
                cmd.stdout(std::process::Stdio::piped())
                    .stderr(std::process::Stdio::piped());
            }
            let mut child = cmd
                .spawn()
                .map_err(|e| CommError::Spawn(format!("rank {rank} ({:?}): {e}", self.exe)))?;
            // Drain captured output on dedicated threads so a chatty rank
            // can never fill its pipe and stall.
            for taken in [
                child
                    .stdout
                    .take()
                    .map(|s| Box::new(s) as Box<dyn Read + Send>),
                child
                    .stderr
                    .take()
                    .map(|s| Box::new(s) as Box<dyn Read + Send>),
            ]
            .into_iter()
            .flatten()
            {
                let sink = Arc::clone(&log);
                drains.push(std::thread::spawn(move || {
                    let mut src = taken;
                    let mut buf = [0u8; 4096];
                    while let Ok(n) = src.read(&mut buf) {
                        if n == 0 {
                            break;
                        }
                        sink.lock().expect("log sink").extend_from_slice(&buf[..n]);
                    }
                }));
            }
            logs.push(log);
            children.push(child);
        }

        let result = self.drive(&listener, &mut children, deadline);

        // Whatever happened, no child may outlive the launch.
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
        for d in drains {
            let _ = d.join();
        }

        result.map_err(|(rank, err)| self.describe_failure(rank, err, &logs, &log_dir))
    }

    /// Run the coordinator protocol; on error, report which rank (if
    /// any specific one) caused it.
    fn drive(
        &self,
        listener: &UnixListener,
        children: &mut [std::process::Child],
        deadline: Instant,
    ) -> Result<WorldOutput<Vec<u8>>, (Option<usize>, CommError)> {
        // Phase 1: accept one HELLO per rank. Each connection keeps its
        // decoder for phase 2 — a fast rank's DONE may already be
        // buffered behind its HELLO.
        let mut conns: Vec<Option<(UnixStream, FrameDecoder)>> =
            (0..self.size).map(|_| None).collect();
        let mut connected = 0;
        while connected < self.size {
            if Instant::now() >= deadline {
                return Err((
                    None,
                    CommError::Timeout {
                        waited_ms: self.run_timeout.as_millis() as u64,
                        waiting_for: format!("rank hello ({connected}/{} connected)", self.size),
                    },
                ));
            }
            // A child that *crashes* before HELLO would stall the accept
            // loop for the whole run budget; notice it early instead. A
            // zero exit is not a failure here: a fast rank can finish the
            // entire protocol and exit while its HELLO and DONE still sit
            // in the socket backlog, ready to be accepted and read.
            for (rank, child) in children.iter_mut().enumerate() {
                if conns[rank].is_none() {
                    if let Ok(Some(status)) = child.try_wait() {
                        if !status.success() {
                            return Err((
                                Some(rank),
                                CommError::RankFailed {
                                    rank,
                                    detail: format!("exited before hello: {status}"),
                                },
                            ));
                        }
                    }
                }
            }
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // BSD-derived systems hand accepted sockets the
                    // listener's nonblocking flag; the collectors expect
                    // blocking streams.
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| (None, e.into()))?;
                    let mut dec = decoder_for(self.chunk);
                    let hello =
                        read_message_deadline(&mut stream, &mut dec, deadline, "rank hello")
                            .map_err(|e| (None, e))?;
                    if hello.tag != TAG_HELLO {
                        return Err((
                            None,
                            CommError::Protocol(format!("expected HELLO, got tag {}", hello.tag)),
                        ));
                    }
                    let rank =
                        decode_u32(&hello.bytes, "hello rank").map_err(|e| (None, e))? as usize;
                    if rank >= self.size || conns[rank].is_some() {
                        return Err((
                            None,
                            CommError::Protocol(format!("bad or duplicate hello from rank {rank}")),
                        ));
                    }
                    conns[rank] = Some((stream, dec));
                    connected += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err((None, e.into())),
            }
        }

        // Phase 2: collect DONE/FAIL from every rank concurrently so one
        // stalled rank cannot serialize behind a healthy one — and so the
        // first failure can kill the world immediately.
        let (tx, rx) = channel::<(usize, Result<(RankStats, Vec<u8>), CommError>)>();
        let mut collectors = Vec::with_capacity(self.size);
        for (rank, conn) in conns.iter_mut().enumerate() {
            let (mut stream, mut dec) = conn.take().expect("all ranks connected");
            let tx = tx.clone();
            collectors.push(std::thread::spawn(move || {
                let res = read_message_deadline(
                    &mut stream,
                    &mut dec,
                    deadline,
                    "rank completion report",
                )
                .and_then(|m| match m.tag {
                    TAG_DONE => {
                        let stats = decode_stats(&m.bytes)?;
                        Ok((stats, m.bytes[STATS_WORDS * 8..].to_vec()))
                    }
                    TAG_FAIL => Err(CommError::RankFailed {
                        rank,
                        detail: String::from_utf8_lossy(&m.bytes).into_owned(),
                    }),
                    other => Err(CommError::Protocol(format!(
                        "expected DONE/FAIL, got tag {other}"
                    ))),
                })
                // Attribute every collection failure to its rank: an EOF
                // here means the rank died without reporting, a timeout
                // means it never finished.
                .map_err(|e| match e {
                    CommError::RankFailed { .. } => e,
                    other => CommError::RankFailed {
                        rank,
                        detail: other.to_string(),
                    },
                });
                let _ = tx.send((rank, res));
            }));
        }
        drop(tx);

        let mut outputs: Vec<Option<Vec<u8>>> = (0..self.size).map(|_| None).collect();
        let mut stats: Vec<RankStats> = vec![RankStats::default(); self.size];
        let mut failure: Option<(usize, CommError)> = None;
        for _ in 0..self.size {
            match rx.recv_timeout(deadline.saturating_duration_since(Instant::now())) {
                Ok((rank, Ok((s, out)))) => {
                    stats[rank] = s;
                    outputs[rank] = Some(out);
                }
                Ok((rank, Err(e))) => {
                    failure = Some((rank, e));
                    break;
                }
                Err(_) => {
                    failure = Some((
                        usize::MAX,
                        CommError::Timeout {
                            waited_ms: self.run_timeout.as_millis() as u64,
                            waiting_for: "rank completion reports".to_string(),
                        },
                    ));
                    break;
                }
            }
        }
        if let Some((rank, err)) = failure {
            // Fail fast: kill everyone so the remaining collectors see
            // EOF instead of burning the full deadline.
            for child in children.iter_mut() {
                let _ = child.kill();
            }
            for c in collectors {
                let _ = c.join();
            }
            return Err(((rank != usize::MAX).then_some(rank), err));
        }
        for c in collectors {
            let _ = c.join();
        }

        // Phase 3: reap exit statuses within the remaining budget.
        for (rank, child) in children.iter_mut().enumerate() {
            loop {
                match child.try_wait() {
                    Ok(Some(status)) if status.success() => break,
                    Ok(Some(status)) => {
                        return Err((
                            Some(rank),
                            CommError::RankFailed {
                                rank,
                                detail: format!("reported DONE but exited with {status}"),
                            },
                        ));
                    }
                    Ok(None) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Ok(None) => {
                        return Err((
                            Some(rank),
                            CommError::RankFailed {
                                rank,
                                detail: "reported DONE but never exited".to_string(),
                            },
                        ));
                    }
                    Err(e) => return Err((Some(rank), e.into())),
                }
            }
        }

        #[cfg(feature = "obs")]
        crate::world::record_rank_stats(stkde_obs::global(), &stats);
        Ok(WorldOutput {
            outputs: outputs
                .into_iter()
                .map(|o| o.expect("every rank reported"))
                .collect(),
            stats,
        })
    }

    /// Attach the failing rank's captured log tail to the error.
    fn describe_failure(
        &self,
        rank: Option<usize>,
        err: CommError,
        logs: &[Arc<Mutex<Vec<u8>>>],
        log_dir: &Option<PathBuf>,
    ) -> CommError {
        let Some(rank) = rank else { return err };
        let tail = match log_dir {
            Some(ld) => std::fs::read(ld.join(format!("rank{rank}.log"))).unwrap_or_default(),
            None => logs
                .get(rank)
                .map(|l| l.lock().expect("log sink").clone())
                .unwrap_or_default(),
        };
        if tail.is_empty() {
            return err;
        }
        let text = String::from_utf8_lossy(&tail);
        let tail: String = text
            .lines()
            .rev()
            .take(12)
            .collect::<Vec<_>>()
            .into_iter()
            .rev()
            .collect::<Vec<_>>()
            .join("\n  ");
        CommError::RankFailed {
            rank,
            detail: format!("{err}; rank {rank} log tail:\n  {tail}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Child side.
// ---------------------------------------------------------------------------

/// The rank identity a spawned process reads from its environment.
#[derive(Debug, Clone)]
pub struct RankBoot {
    /// This process's rank.
    pub rank: usize,
    /// World size.
    pub size: usize,
    dir: PathBuf,
    timeout: Duration,
    chunk: usize,
}

impl RankBoot {
    /// Detect whether this process was spawned as a rank.
    ///
    /// Returns `Ok(None)` when `STKDE_RANK` is unset (a normal
    /// invocation).
    ///
    /// # Errors
    /// [`CommError::Protocol`] when the rank environment is incomplete or
    /// unparsable — a spawned rank with half an environment is a bug.
    pub fn from_env() -> Result<Option<RankBoot>, CommError> {
        let Ok(rank) = std::env::var(ENV_RANK) else {
            return Ok(None);
        };
        let get = |key: &str| {
            std::env::var(key)
                .map_err(|_| CommError::Protocol(format!("{ENV_RANK} set but {key} missing")))
        };
        let parse = |key: &str, v: String| {
            v.parse::<u64>()
                .map_err(|_| CommError::Protocol(format!("{key}={v} is not a number")))
        };
        let rank = parse(ENV_RANK, rank)? as usize;
        let size = parse(ENV_SIZE, get(ENV_SIZE)?)? as usize;
        let dir = PathBuf::from(get(ENV_DIR)?);
        let timeout = Duration::from_millis(parse(ENV_TIMEOUT_MS, get(ENV_TIMEOUT_MS)?)?);
        let chunk = parse(ENV_CHUNK, get(ENV_CHUNK)?)? as usize;
        if size == 0 || rank >= size {
            return Err(CommError::Protocol(format!(
                "rank {rank} out of range for size {size}"
            )));
        }
        if chunk == 0 {
            return Err(CommError::Protocol("chunk size of zero".to_string()));
        }
        Ok(Some(RankBoot {
            rank,
            size,
            dir,
            timeout,
            chunk,
        }))
    }

    /// Establish the full rank mesh and the coordinator link.
    ///
    /// # Errors
    /// Any bootstrap failure: missing sockets, peers that never appear
    /// within the deadline, or transport errors.
    pub fn connect<P: WirePayload>(&self) -> Result<ProcessComm<P>, CommError> {
        let deadline = Instant::now() + self.timeout;
        let listener = UnixListener::bind(self.dir.join(format!("rank{}.sock", self.rank)))?;

        let mut coord = UnixStream::connect(self.dir.join("coord.sock"))?;
        write_message(
            &mut coord,
            TAG_HELLO,
            &encode_u32(self.rank as u32),
            self.chunk,
        )?;

        // Each peer slot carries its decoder: an eager peer's first user
        // frames may already trail its IDENT in the stream, and those
        // bytes must reach the reader thread, not be dropped.
        let mut peers: Vec<Option<(UnixStream, FrameDecoder)>> =
            (0..self.size).map(|_| None).collect();
        // Higher rank connects to lower rank's listener: rank r dials
        // every j < r, then accepts every j > r.
        for (j, slot) in peers.iter_mut().enumerate().take(self.rank) {
            let path = self.dir.join(format!("rank{j}.sock"));
            let mut stream = loop {
                match UnixStream::connect(&path) {
                    Ok(s) => break s,
                    Err(_) if Instant::now() < deadline => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => {
                        return Err(CommError::Timeout {
                            waited_ms: self.timeout.as_millis() as u64,
                            waiting_for: format!("rank {j}'s mesh listener ({e})"),
                        });
                    }
                }
            };
            write_message(
                &mut stream,
                TAG_IDENT,
                &encode_u32(self.rank as u32),
                self.chunk,
            )?;
            *slot = Some((stream, decoder_for(self.chunk)));
        }
        listener.set_nonblocking(true)?;
        let mut accepted = 0;
        while accepted < self.size - 1 - self.rank {
            match listener.accept() {
                Ok((mut stream, _)) => {
                    // BSD-derived systems hand accepted sockets the
                    // listener's nonblocking flag; readers expect a
                    // blocking stream.
                    stream.set_nonblocking(false)?;
                    let mut dec = decoder_for(self.chunk);
                    let ident =
                        read_message_deadline(&mut stream, &mut dec, deadline, "peer ident")?;
                    if ident.tag != TAG_IDENT {
                        return Err(CommError::Protocol(format!(
                            "expected IDENT, got tag {}",
                            ident.tag
                        )));
                    }
                    let j = decode_u32(&ident.bytes, "ident rank")? as usize;
                    if j <= self.rank || j >= self.size || peers[j].is_some() {
                        return Err(CommError::Protocol(format!(
                            "bad or duplicate ident from rank {j}"
                        )));
                    }
                    stream.set_read_timeout(None)?;
                    peers[j] = Some((stream, dec));
                    accepted += 1;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(CommError::Timeout {
                            waited_ms: self.timeout.as_millis() as u64,
                            waiting_for: format!(
                                "mesh connections from higher ranks ({accepted} of {})",
                                self.size - 1 - self.rank
                            ),
                        });
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }

        // Wire up per-peer reader/writer threads. Sends are posted to a
        // writer thread and never block the rank (that is what lets halo
        // exchange overlap compute); receives drain a shared inbox.
        let (inbox_tx, inbox) = channel::<InboxItem<P>>();
        let mut peer_tx: Vec<Option<OutboundTx>> = (0..self.size).map(|_| None).collect();
        let mut writers = Vec::new();
        for (j, slot) in peers.iter_mut().enumerate() {
            let Some((stream, dec)) = slot.take() else {
                continue;
            };
            let reader = stream.try_clone()?;
            reader.set_read_timeout(None)?;
            let rtx = inbox_tx.clone();
            std::thread::spawn(move || reader_loop::<P>(j, reader, rtx, dec));
            let (tx, rx) = channel::<(u32, Vec<u8>)>();
            let wtx = inbox_tx.clone();
            let chunk = self.chunk;
            writers.push(std::thread::spawn(move || {
                writer_loop::<P>(j, stream, rx, chunk, wtx)
            }));
            peer_tx[j] = Some(tx);
        }
        drop(inbox_tx);

        Ok(ProcessComm {
            rank: self.rank,
            size: self.size,
            timeout: self.timeout,
            chunk: self.chunk,
            peer_tx,
            inbox,
            pending: Vec::new(),
            control_pending: Vec::new(),
            coord,
            writers,
            stats: RankStats::default(),
        })
    }
}

/// Outbound handle to one peer's writer thread: `(tag, encoded bytes)`.
type OutboundTx = Sender<(u32, Vec<u8>)>;

enum InboxItem<P> {
    User {
        from: usize,
        tag: u32,
        payload: P,
        frames: usize,
    },
    Control {
        from: usize,
        tag: u32,
    },
    Failed(CommError),
}

/// A frame decoder sized for a connection's negotiated chunk (control
/// frames are tiny, so the larger of the two limits always admits them).
fn decoder_for(chunk: usize) -> FrameDecoder {
    FrameDecoder::with_limits(
        chunk.max(crate::payload::DEFAULT_CHUNK),
        crate::payload::DEFAULT_MAX_MESSAGE,
    )
}

fn reader_loop<P: WirePayload>(
    from: usize,
    mut stream: UnixStream,
    tx: Sender<InboxItem<P>>,
    mut dec: FrameDecoder,
) {
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        // Drain first: the bootstrap may have handed over a decoder that
        // already holds complete messages.
        while let Some(m) = dec.next_message() {
            let item = if m.tag >= TAG_RESERVED_BASE {
                InboxItem::Control { from, tag: m.tag }
            } else {
                match P::decode(&m.bytes) {
                    Ok(payload) => InboxItem::User {
                        from,
                        tag: m.tag,
                        payload,
                        frames: m.frames,
                    },
                    Err(e) => {
                        let _ = tx.send(InboxItem::Failed(e.into()));
                        return;
                    }
                }
            };
            if tx.send(item).is_err() {
                return;
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                // Clean EOF (peer finished) just ends the stream; EOF
                // inside a frame is a protocol failure worth reporting.
                if dec.finish().is_err() {
                    let _ = tx.send(InboxItem::Failed(CommError::Codec(CodecError::Truncated {
                        context: "mid-message peer disconnect",
                    })));
                }
                return;
            }
            Ok(n) => {
                if let Err(e) = dec.push(&buf[..n]) {
                    let _ = tx.send(InboxItem::Failed(e.into()));
                    return;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => {
                let _ = tx.send(InboxItem::Failed(CommError::Io(format!(
                    "read from rank {from}: {e}"
                ))));
                return;
            }
        }
    }
}

fn writer_loop<P: WirePayload>(
    to: usize,
    mut stream: UnixStream,
    rx: Receiver<(u32, Vec<u8>)>,
    chunk: usize,
    tx: Sender<InboxItem<P>>,
) -> Result<(), CommError> {
    while let Ok((tag, bytes)) = rx.recv() {
        if let Err(e) = write_message(&mut stream, tag, &bytes, chunk) {
            let err = CommError::Io(format!("send to rank {to}: {e}"));
            let _ = tx.send(InboxItem::Failed(err.clone()));
            return Err(err);
        }
    }
    Ok(())
}

struct PendingMsg<P> {
    from: usize,
    tag: u32,
    payload: P,
    frames: usize,
}

/// One rank's endpoint in a [`ProcessWorld`]: the mesh sockets, the
/// coordinator link, and traffic accounting. Implements [`WorldComm`], so
/// rank code is shared verbatim with the in-process backend.
///
/// Sends are handed to per-peer writer threads and never block the rank;
/// receives block with a per-operation deadline
/// (`STKDE_RANK_TIMEOUT_MS`) and surface dead or stalled peers as typed
/// errors.
pub struct ProcessComm<P: WirePayload> {
    rank: usize,
    size: usize,
    timeout: Duration,
    chunk: usize,
    peer_tx: Vec<Option<OutboundTx>>,
    inbox: Receiver<InboxItem<P>>,
    pending: Vec<PendingMsg<P>>,
    control_pending: Vec<(usize, u32)>,
    coord: UnixStream,
    writers: Vec<std::thread::JoinHandle<Result<(), CommError>>>,
    stats: RankStats,
}

impl<P: WirePayload> ProcessComm<P> {
    /// Pull one inbox item into the pending buffers, waiting at most
    /// until `deadline`.
    fn pump_one(
        &mut self,
        started: Instant,
        deadline: Instant,
        what: impl Fn() -> String,
    ) -> Result<(), CommError> {
        let now = Instant::now();
        if now >= deadline {
            return Err(CommError::Timeout {
                waited_ms: (now - started).as_millis() as u64,
                waiting_for: what(),
            });
        }
        match self.inbox.recv_timeout(deadline - now) {
            Ok(InboxItem::User {
                from,
                tag,
                payload,
                frames,
            }) => {
                self.pending.push(PendingMsg {
                    from,
                    tag,
                    payload,
                    frames,
                });
                Ok(())
            }
            Ok(InboxItem::Control { from, tag }) => {
                self.control_pending.push((from, tag));
                Ok(())
            }
            Ok(InboxItem::Failed(e)) => Err(e),
            Err(RecvTimeoutError::Timeout) => Err(CommError::Timeout {
                waited_ms: (Instant::now() - started).as_millis() as u64,
                waiting_for: what(),
            }),
            Err(RecvTimeoutError::Disconnected) => Err(CommError::PeerClosed { rank: self.rank }),
        }
    }

    fn take_pending(&mut self, i: usize) -> P {
        let msg = self.pending.remove(i);
        // Self-sends are delivered but never billed, mirroring the
        // in-process world.
        if msg.from != self.rank {
            self.stats.msgs_recv += 1;
            self.stats.bytes_recv += msg.payload.byte_len();
            self.stats.frames_recv += msg.frames;
        }
        msg.payload
    }

    fn send_control(&mut self, to: usize, tag: u32) -> Result<(), CommError> {
        self.peer_tx[to]
            .as_ref()
            .expect("non-self slot always has a writer")
            .send((tag, Vec::new()))
            .map_err(|_| CommError::PeerClosed { rank: to })
    }

    fn wait_control(&mut self, from: usize, tag: u32, deadline: Instant) -> Result<(), CommError> {
        let started = Instant::now();
        loop {
            if let Some(i) = self
                .control_pending
                .iter()
                .position(|&(f, t)| f == from && t == tag)
            {
                self.control_pending.remove(i);
                return Ok(());
            }
            self.pump_one(started, deadline, || {
                format!("barrier control from rank {from}")
            })?;
        }
    }

    /// Flush and join the writer threads (drops all outbound senders).
    fn shutdown_writers(&mut self) -> Result<(), CommError> {
        self.peer_tx.clear();
        let mut first_err = None;
        for h in self.writers.drain(..) {
            match h.join() {
                Ok(Ok(())) => {}
                Ok(Err(e)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
                Err(_) => {
                    if first_err.is_none() {
                        first_err = Some(CommError::Protocol("writer thread panicked".to_string()));
                    }
                }
            }
        }
        first_err.map_or(Ok(()), Err)
    }

    /// Complete this rank: flush every outstanding send, then report
    /// `output` and the accounted traffic to the parent.
    ///
    /// # Errors
    /// A failed flush or coordinator write; the parent will see the rank
    /// as failed either way.
    pub fn finish(mut self, output: &[u8]) -> Result<RankStats, CommError> {
        if let Err(e) = self.shutdown_writers() {
            let _ = self.send_fail(&format!("flush on finish: {e}"));
            return Err(e);
        }
        let mut blob = Vec::with_capacity(STATS_WORDS * 8 + output.len());
        blob.extend_from_slice(&encode_stats(&self.stats));
        blob.extend_from_slice(output);
        write_message(&mut self.coord, TAG_DONE, &blob, self.chunk)?;
        Ok(self.stats)
    }

    /// Report failure to the parent (kills the whole world promptly).
    pub fn fail(mut self, detail: &str) {
        let _ = self.shutdown_writers();
        let _ = self.send_fail(detail);
    }

    fn send_fail(&mut self, detail: &str) -> Result<(), CommError> {
        write_message(&mut self.coord, TAG_FAIL, detail.as_bytes(), self.chunk)?;
        Ok(())
    }
}

impl<P: WirePayload> WorldComm<P> for ProcessComm<P> {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: u32, payload: P) -> Result<(), CommError> {
        assert!(
            tag < TAG_RESERVED_BASE,
            "tags >= 0x{TAG_RESERVED_BASE:08x} are reserved for the transport"
        );
        assert!(
            to < self.size,
            "rank {to} out of range (size {})",
            self.size
        );
        if to == self.rank {
            self.pending.push(PendingMsg {
                from: self.rank,
                tag,
                payload,
                frames: 0,
            });
            return Ok(());
        }
        let mut bytes = Vec::with_capacity(payload.byte_len());
        payload.encode(&mut bytes);
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += payload.byte_len();
        self.stats.frames_sent += frames_for(bytes.len(), self.chunk);
        self.peer_tx[to]
            .as_ref()
            .expect("non-self slot always has a writer")
            .send((tag, bytes))
            .map_err(|_| CommError::PeerClosed { rank: to })
    }

    fn recv(&mut self, from: usize, tag: u32) -> Result<P, CommError> {
        let started = Instant::now();
        let deadline = started + self.timeout;
        loop {
            if let Some(i) = self
                .pending
                .iter()
                .position(|m| m.from == from && m.tag == tag)
            {
                return Ok(self.take_pending(i));
            }
            self.pump_one(started, deadline, || {
                format!("message tag {tag} from rank {from}")
            })?;
        }
    }

    fn recv_any(&mut self, tag: u32) -> Result<(usize, P), CommError> {
        let started = Instant::now();
        let deadline = started + self.timeout;
        loop {
            if let Some(i) = self.pending.iter().position(|m| m.tag == tag) {
                let from = self.pending[i].from;
                return Ok((from, self.take_pending(i)));
            }
            self.pump_one(started, deadline, || {
                format!("message tag {tag} from any rank")
            })?;
        }
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        self.stats.barriers += 1;
        if self.size == 1 {
            return Ok(());
        }
        let deadline = Instant::now() + self.timeout;
        if self.rank == 0 {
            for r in 1..self.size {
                self.wait_control(r, TAG_BARRIER_ARRIVE, deadline)?;
            }
            for r in 1..self.size {
                self.send_control(r, TAG_BARRIER_RELEASE)?;
            }
        } else {
            self.send_control(0, TAG_BARRIER_ARRIVE)?;
            self.wait_control(0, TAG_BARRIER_RELEASE, deadline)?;
        }
        Ok(())
    }

    fn stats(&self) -> RankStats {
        self.stats
    }
}

/// Run a rank program end to end: bootstrap, execute, report. Returns
/// the process exit code (0 on success), logging failures to stderr so
/// they land in the rank log.
pub fn child_main<P, F>(boot: &RankBoot, f: F) -> i32
where
    P: WirePayload,
    F: FnOnce(&mut ProcessComm<P>) -> Result<Vec<u8>, CommError>,
{
    let mut comm = match boot.connect::<P>() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("rank {} bootstrap failed: {e}", boot.rank);
            return 1;
        }
    };
    match f(&mut comm) {
        Ok(out) => match comm.finish(&out) {
            Ok(_) => 0,
            Err(e) => {
                eprintln!("rank {} completion report failed: {e}", boot.rank);
                1
            }
        },
        Err(e) => {
            eprintln!("rank {} program failed: {e}", boot.rank);
            comm.fail(&e.to_string());
            1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `set_var` racing `getenv` on another thread is UB on glibc, and
    /// `launch()` reads the environment (`temp_dir`, the log-dir var) —
    /// every test in this module that touches either side takes this
    /// lock so libtest's parallel threads can never interleave them.
    static ENV_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn stats_wire_roundtrip() {
        let s = RankStats {
            msgs_sent: 1,
            bytes_sent: 2,
            msgs_recv: 3,
            bytes_recv: 4,
            barriers: 5,
            frames_sent: 6,
            frames_recv: 7,
        };
        assert_eq!(decode_stats(&encode_stats(&s)).unwrap(), s);
        assert!(decode_stats(&[0u8; 8]).is_err());
    }

    #[test]
    fn rank_env_parsing() {
        // Single test: env vars are process-global, so all cases run
        // sequentially here.
        let _env = ENV_LOCK.lock().expect("env lock");
        assert!(matches!(RankBoot::from_env(), Ok(None)));

        std::env::set_var(ENV_RANK, "1");
        assert!(RankBoot::from_env().is_err(), "incomplete env must error");

        std::env::set_var(ENV_SIZE, "4");
        std::env::set_var(ENV_DIR, "/tmp/nowhere");
        std::env::set_var(ENV_TIMEOUT_MS, "250");
        std::env::set_var(ENV_CHUNK, "1024");
        let boot = RankBoot::from_env().unwrap().expect("complete env");
        assert_eq!((boot.rank, boot.size), (1, 4));
        assert_eq!(boot.timeout, Duration::from_millis(250));
        assert_eq!(boot.chunk, 1024);

        std::env::set_var(ENV_RANK, "9");
        assert!(RankBoot::from_env().is_err(), "rank out of range");
        std::env::set_var(ENV_RANK, "not-a-number");
        assert!(RankBoot::from_env().is_err(), "unparsable rank");

        for k in [ENV_RANK, ENV_SIZE, ENV_DIR, ENV_TIMEOUT_MS, ENV_CHUNK] {
            std::env::remove_var(k);
        }
        assert!(matches!(RankBoot::from_env(), Ok(None)));
    }

    #[test]
    fn spawn_failure_is_typed() {
        let _env = ENV_LOCK.lock().expect("env lock");
        let err = ProcessWorld::new(2, "/definitely/not/an/executable")
            .run_timeout(Duration::from_secs(5))
            .launch()
            .unwrap_err();
        assert!(matches!(err, CommError::Spawn(_)), "{err}");
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn zero_size_world_panics() {
        let _ = ProcessWorld::new(0, "/bin/true");
    }
}
