//! SPMD world: ranks, point-to-point messaging, barriers, traffic stats.
//!
//! Two backends speak the same per-rank protocol, abstracted by the
//! [`WorldComm`] trait: the in-process [`World`] (one thread per rank,
//! channels for wires) and the multi-process
//! [`ProcessWorld`](crate::process::ProcessWorld) (one OS process per
//! rank, chunked frames over Unix sockets). Rank code written against
//! `WorldComm` runs unchanged on both, which is what the cross-backend
//! conformance suite exploits.

use crate::error::CommError;
use crate::payload::Payload;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// Deadline on a single blocking receive. Honest protocol traffic between
/// in-process ranks arrives in microseconds; waiting this long means a
/// peer died or the protocol deadlocked, and crashing with context beats
/// hanging the whole world (see the STK005 lint rule).
const RECV_DEADLINE: Duration = Duration::from_secs(30);

/// An addressed message in flight.
struct Envelope<P> {
    from: usize,
    tag: u32,
    payload: P,
}

/// Per-rank traffic accounting, filled in as the rank communicates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankStats {
    /// Messages sent by this rank (excluding self-sends).
    pub msgs_sent: usize,
    /// Payload bytes sent by this rank (excluding self-sends).
    pub bytes_sent: usize,
    /// Messages received from other ranks.
    pub msgs_recv: usize,
    /// Payload bytes received from other ranks.
    pub bytes_recv: usize,
    /// Barriers participated in.
    pub barriers: usize,
    /// Wire frames emitted for the sent messages. Chunking backends
    /// report `ceil(bytes/chunk)` per message; the in-process world moves
    /// payloads whole and reports zero (messages are then the frame
    /// floor for the cost model).
    pub frames_sent: usize,
    /// Wire frames received for the delivered messages (zero for the
    /// in-process world).
    pub frames_recv: usize,
}

impl RankStats {
    /// Fold another rank's stats into a world-level aggregate.
    pub fn merge(&mut self, other: &RankStats) {
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_recv += other.msgs_recv;
        self.bytes_recv += other.bytes_recv;
        self.barriers = self.barriers.max(other.barriers);
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
    }

    /// The backend-independent traffic shape `(msgs_sent, bytes_sent,
    /// msgs_recv, bytes_recv)` — what a protocol determines regardless of
    /// which backend carried it. Conformance tests compare these across
    /// backends; frame counts are backend-specific and excluded.
    pub fn traffic(&self) -> (usize, usize, usize, usize) {
        (
            self.msgs_sent,
            self.bytes_sent,
            self.msgs_recv,
            self.bytes_recv,
        )
    }
}

/// The per-rank communication interface shared by every world backend.
///
/// Mirrors [`Comm`]'s inherent API, but every operation is fallible: a
/// backend whose peers are separate processes must surface a dead or
/// stalled peer as a typed error within a bounded deadline instead of
/// hanging. The in-process implementation never returns `Err` (its
/// failure mode stays a panic, which is the right crash for a
/// single-process test deadlock).
pub trait WorldComm<P: Payload> {
    /// This rank's id, in `0..size`.
    fn rank(&self) -> usize;

    /// Number of ranks in the world.
    fn size(&self) -> usize;

    /// Send `payload` to rank `to` under `tag` without blocking on the
    /// recipient (self-sends are delivered locally and never accounted).
    ///
    /// # Errors
    /// Backend-specific transport failures.
    fn send(&mut self, to: usize, tag: u32, payload: P) -> Result<(), CommError>;

    /// Blocking selective receive: the next message from `from` with
    /// `tag`; non-matching arrivals stay buffered for later receives.
    ///
    /// # Errors
    /// Transport failure, or timeout after the backend's deadline.
    fn recv(&mut self, from: usize, tag: u32) -> Result<P, CommError>;

    /// Receive one message with `tag` from any rank.
    ///
    /// # Errors
    /// Transport failure, or timeout after the backend's deadline.
    fn recv_any(&mut self, tag: u32) -> Result<(usize, P), CommError>;

    /// Block until every rank reaches the barrier.
    ///
    /// # Errors
    /// Transport failure, or timeout after the backend's deadline.
    fn barrier(&mut self) -> Result<(), CommError>;

    /// Traffic accounted so far on this rank.
    fn stats(&self) -> RankStats;
}

/// One rank's endpoint: its identity plus the channels to every peer.
///
/// A `Comm` is owned by exactly one thread. Sends never block (channels
/// are unbounded); receives block until a matching message arrives, with
/// out-of-order arrivals parked in a local buffer. Messages between a
/// fixed (sender, receiver) pair are delivered in send order; there is no
/// global order across senders, which is why receives select on
/// `(from, tag)`.
pub struct Comm<P: Payload> {
    rank: usize,
    size: usize,
    /// Senders to every peer; `None` at this rank's own slot (self-sends
    /// bypass the channel so that a rank never keeps its *own* inbox open,
    /// which would turn protocol deadlocks into silent hangs).
    peers: Vec<Option<Sender<Envelope<P>>>>,
    inbox: Receiver<Envelope<P>>,
    pending: Vec<Envelope<P>>,
    barrier: Arc<Barrier>,
    stats: RankStats,
}

impl<P: Payload> Comm<P> {
    /// This rank's id, in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Traffic accounted so far on this rank.
    pub fn stats(&self) -> RankStats {
        self.stats
    }

    /// Send `payload` to rank `to` under `tag`. Never blocks.
    ///
    /// Self-sends are delivered (a rank may uniformly "send" to everyone,
    /// itself included) but are not counted as network traffic.
    ///
    /// # Panics
    /// Panics if `to` is out of range or the destination rank has already
    /// finished (its inbox is closed) — both are protocol bugs.
    pub fn send(&mut self, to: usize, tag: u32, payload: P) {
        assert!(
            to < self.size,
            "rank {to} out of range (size {})",
            self.size
        );
        let env = Envelope {
            from: self.rank,
            tag,
            payload,
        };
        if to == self.rank {
            // Instant local delivery, not network traffic.
            self.pending.push(env);
            return;
        }
        self.stats.msgs_sent += 1;
        self.stats.bytes_sent += env.payload.byte_len();
        self.peers[to]
            .as_ref()
            .expect("non-self slot always has a sender")
            .send(env)
            .expect("destination rank finished before receiving");
    }

    /// Blocking selective receive: the next message from `from` with `tag`.
    ///
    /// Non-matching arrivals are buffered and stay available to later
    /// receives (in arrival order per sender).
    ///
    /// # Panics
    /// Panics if every sender has finished and no matching message can
    /// ever arrive — a deadlocked protocol is a bug worth crashing on.
    pub fn recv(&mut self, from: usize, tag: u32) -> P {
        if let Some(i) = self
            .pending
            .iter()
            .position(|e| e.from == from && e.tag == tag)
        {
            return self.take_pending(i);
        }
        loop {
            let env = self.recv_inbox(&format!("tag {tag} from rank {from}"));
            if env.from == from && env.tag == tag {
                return self.account_recv(env);
            }
            self.pending.push(env);
        }
    }

    /// Receive one message with `tag` from *any* rank; returns
    /// `(from, payload)`.
    pub fn recv_any(&mut self, tag: u32) -> (usize, P) {
        if let Some(i) = self.pending.iter().position(|e| e.tag == tag) {
            let from = self.pending[i].from;
            return (from, self.take_pending(i));
        }
        loop {
            let env = self.recv_inbox(&format!("tag {tag} from any rank"));
            if env.tag == tag {
                let from = env.from;
                return (from, self.account_recv(env));
            }
            self.pending.push(env);
        }
    }

    /// One inbox receive with the [`RECV_DEADLINE`] applied.
    ///
    /// # Panics
    /// Panics — with the rank, what it was waiting for, and how many
    /// non-matching messages are buffered — when the deadline expires or
    /// every sender is gone. Both mean the protocol can never make
    /// progress, and a diagnosed crash is the designed response.
    fn recv_inbox(&mut self, wanted: &str) -> Envelope<P> {
        match self.inbox.recv_timeout(RECV_DEADLINE) {
            Ok(env) => env,
            Err(e) => {
                let why = match e {
                    RecvTimeoutError::Timeout => "deadline expired (dead peer or deadlock)",
                    RecvTimeoutError::Disconnected => "every sending rank already finished",
                };
                panic!(
                    "rank {}: receive of {wanted} cannot complete: {why} \
                     ({} buffered non-matching message(s), {:?} deadline)",
                    self.rank,
                    self.pending.len(),
                    RECV_DEADLINE,
                )
            }
        }
    }

    fn take_pending(&mut self, i: usize) -> P {
        let env = self.pending.remove(i);
        self.account_recv(env)
    }

    fn account_recv(&mut self, env: Envelope<P>) -> P {
        if env.from != self.rank {
            self.stats.msgs_recv += 1;
            self.stats.bytes_recv += env.payload.byte_len();
        }
        env.payload
    }

    /// Block until every rank reaches the barrier.
    pub fn barrier(&mut self) {
        self.stats.barriers += 1;
        self.barrier.wait();
    }
}

impl<P: Payload> WorldComm<P> for Comm<P> {
    fn rank(&self) -> usize {
        Comm::rank(self)
    }

    fn size(&self) -> usize {
        Comm::size(self)
    }

    fn send(&mut self, to: usize, tag: u32, payload: P) -> Result<(), CommError> {
        Comm::send(self, to, tag, payload);
        Ok(())
    }

    fn recv(&mut self, from: usize, tag: u32) -> Result<P, CommError> {
        Ok(Comm::recv(self, from, tag))
    }

    fn recv_any(&mut self, tag: u32) -> Result<(usize, P), CommError> {
        Ok(Comm::recv_any(self, tag))
    }

    fn barrier(&mut self) -> Result<(), CommError> {
        Comm::barrier(self);
        Ok(())
    }

    fn stats(&self) -> RankStats {
        Comm::stats(self)
    }
}

/// Everything a finished world returns: per-rank closure outputs and
/// traffic stats, indexed by rank.
#[derive(Debug)]
pub struct WorldOutput<T> {
    /// The value returned by each rank's closure.
    pub outputs: Vec<T>,
    /// Traffic accounted on each rank.
    pub stats: Vec<RankStats>,
}

impl<T> WorldOutput<T> {
    /// World-aggregate traffic.
    pub fn total_stats(&self) -> RankStats {
        let mut agg = RankStats::default();
        for s in &self.stats {
            agg.merge(s);
        }
        agg
    }
}

/// Mirror per-rank traffic stats into a metrics registry as
/// `stkde_comm_*_total{rank="<i>"}` counters (`obs` feature only).
///
/// Called by every world backend when a run completes; counters stay
/// monotone because successive runs *add*, which is what a scraping
/// monitor expects. Also usable against a fresh registry to render a
/// standalone per-rank dump (the distmem CI artifact).
#[cfg(feature = "obs")]
pub fn record_rank_stats(registry: &stkde_obs::Registry, stats: &[RankStats]) {
    use stkde_obs::names;
    for (rank, s) in stats.iter().enumerate() {
        let r = rank.to_string();
        let labels: &[(&str, &str)] = &[("rank", r.as_str())];
        registry
            .counter(names::COMM_MSGS_SENT, labels)
            .add(s.msgs_sent as u64);
        registry
            .counter(names::COMM_BYTES_SENT, labels)
            .add(s.bytes_sent as u64);
        registry
            .counter(names::COMM_MSGS_RECV, labels)
            .add(s.msgs_recv as u64);
        registry
            .counter(names::COMM_BYTES_RECV, labels)
            .add(s.bytes_recv as u64);
        registry
            .counter(names::COMM_FRAMES_SENT, labels)
            .add(s.frames_sent as u64);
        registry
            .counter(names::COMM_FRAMES_RECV, labels)
            .add(s.frames_recv as u64);
        registry
            .counter(names::COMM_BARRIERS, labels)
            .add(s.barriers as u64);
    }
}

/// A fixed-size SPMD world.
///
/// ```
/// use stkde_comm::World;
///
/// // Ring shift: every rank passes its id to the right and sums what it got.
/// let out = World::new(4).run::<u64, _, _>(|comm| {
///     let right = (comm.rank() + 1) % comm.size();
///     comm.send(right, 0, comm.rank() as u64);
///     let left = (comm.rank() + comm.size() - 1) % comm.size();
///     comm.recv(left, 0)
/// });
/// assert_eq!(out.outputs, vec![3, 0, 1, 2]);
/// assert_eq!(out.total_stats().msgs_sent, 4);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct World {
    size: usize,
}

impl World {
    /// A world of `size` ranks.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "world size must be > 0");
        Self { size }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on every rank (one OS thread each) and collect outputs.
    ///
    /// A panic on any rank propagates to the caller after the remaining
    /// ranks have been joined or have panicked themselves — no output is
    /// silently dropped.
    pub fn run<P, T, F>(&self, f: F) -> WorldOutput<T>
    where
        P: Payload,
        T: Send,
        F: Fn(&mut Comm<P>) -> T + Sync,
    {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..self.size).map(|_| unbounded::<Envelope<P>>()).unzip();
        let barrier = Arc::new(Barrier::new(self.size));
        let f = &f;

        let mut comms: Vec<Comm<P>> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| Comm {
                rank,
                size: self.size,
                peers: senders
                    .iter()
                    .enumerate()
                    .map(|(to, s)| (to != rank).then(|| s.clone()))
                    .collect(),
                inbox,
                pending: Vec::new(),
                barrier: Arc::clone(&barrier),
                stats: RankStats::default(),
            })
            .collect();
        // Drop the original sender handles so inboxes close when every
        // peer Comm is gone — that is what turns a protocol deadlock into
        // a crash instead of a hang.
        drop(senders);

        let results: Vec<(T, RankStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .drain(..)
                .map(|mut comm| {
                    scope.spawn(move || {
                        let out = f(&mut comm);
                        (out, comm.stats())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(v) => v,
                    // Re-raise with the rank's original payload so the
                    // caller sees the real failure, not "a rank died".
                    Err(e) => std::panic::resume_unwind(e),
                })
                .collect()
        });

        let (outputs, stats) = results.into_iter().unzip();
        let out = WorldOutput { outputs, stats };
        #[cfg(feature = "obs")]
        record_rank_stats(stkde_obs::global(), &out.stats);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world_runs() {
        let out = World::new(1).run::<(), _, _>(|c| {
            assert_eq!(c.rank(), 0);
            assert_eq!(c.size(), 1);
            7
        });
        assert_eq!(out.outputs, vec![7]);
        assert_eq!(out.total_stats(), RankStats::default());
    }

    #[test]
    fn ring_pass_delivers_in_order() {
        // Each rank sends two numbered messages to its right neighbor.
        let out = World::new(4).run::<u64, _, _>(|c| {
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            c.send(right, 0, (c.rank() * 10) as u64);
            c.send(right, 0, (c.rank() * 10 + 1) as u64);
            let a = c.recv(left, 0);
            let b = c.recv(left, 0);
            (a, b)
        });
        for (rank, &(a, b)) in out.outputs.iter().enumerate() {
            let left = (rank + 3) % 4;
            assert_eq!(a, (left * 10) as u64, "first message from {left}");
            assert_eq!(b, (left * 10 + 1) as u64, "per-pair order preserved");
        }
        let agg = out.total_stats();
        assert_eq!(agg.msgs_sent, 8);
        assert_eq!(agg.msgs_recv, 8);
        assert_eq!(agg.bytes_sent, 64);
    }

    #[test]
    fn selective_recv_buffers_out_of_order_tags() {
        let out = World::new(2).run::<u64, _, _>(|c| {
            if c.rank() == 0 {
                // Send tag 2 first; receiver asks for tag 1 first.
                c.send(1, 2, 222);
                c.send(1, 1, 111);
                0
            } else {
                let first = c.recv(0, 1);
                let second = c.recv(0, 2);
                first * 1000 + second
            }
        });
        assert_eq!(out.outputs[1], 111_222);
    }

    #[test]
    fn recv_any_takes_from_all_senders() {
        let out = World::new(4).run::<u64, _, _>(|c| {
            if c.rank() == 0 {
                let mut sum = 0;
                let mut froms = Vec::new();
                for _ in 0..3 {
                    let (from, v) = c.recv_any(9);
                    froms.push(from);
                    sum += v;
                }
                froms.sort_unstable();
                assert_eq!(froms, vec![1, 2, 3]);
                sum
            } else {
                c.send(0, 9, c.rank() as u64);
                0
            }
        });
        assert_eq!(out.outputs[0], 6);
    }

    #[test]
    fn self_send_is_free() {
        let out = World::new(2).run::<u64, _, _>(|c| {
            c.send(c.rank(), 0, 42);
            c.recv(c.rank(), 0)
        });
        assert_eq!(out.outputs, vec![42, 42]);
        assert_eq!(out.total_stats().msgs_sent, 0);
        assert_eq!(out.total_stats().bytes_sent, 0);
    }

    #[test]
    fn barrier_synchronizes_all_ranks() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        let out = World::new(4).run::<(), _, _>(|c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier, every rank must have incremented.
            before.load(Ordering::SeqCst)
        });
        assert!(out.outputs.iter().all(|&v| v == 4));
        assert_eq!(out.total_stats().barriers, 1);
    }

    #[test]
    fn pairwise_exchange_cannot_deadlock() {
        // Everyone sends to everyone, then receives from everyone —
        // the classic deadlock with blocking sends; fine here.
        let n = 6;
        let out = World::new(n).run::<u64, _, _>(|c| {
            for to in 0..c.size() {
                c.send(to, 0, c.rank() as u64);
            }
            let mut sum = 0;
            for from in 0..c.size() {
                sum += c.recv(from, 0);
            }
            sum
        });
        let expect = (0..n as u64).sum::<u64>();
        assert!(out.outputs.iter().all(|&v| v == expect));
    }

    #[test]
    fn byte_accounting_matches_payload_len() {
        let out = World::new(2).run::<Vec<f32>, _, _>(|c| {
            if c.rank() == 0 {
                c.send(1, 0, vec![0.0f32; 100]);
            } else {
                let v = c.recv(0, 0);
                assert_eq!(v.len(), 100);
            }
        });
        assert_eq!(out.stats[0].bytes_sent, 400);
        assert_eq!(out.stats[1].bytes_recv, 400);
        assert_eq!(out.stats[1].bytes_sent, 0);
    }

    #[test]
    fn trait_backed_rank_code_runs_on_the_thread_world() {
        // Rank code written against the backend-neutral trait must run
        // unchanged on the in-process world (the conformance suite runs
        // the same functions on the process backend).
        fn ring<C: WorldComm<u64>>(c: &mut C) -> Result<u64, CommError> {
            let right = (c.rank() + 1) % c.size();
            WorldComm::send(c, right, 0, c.rank() as u64)?;
            let left = (c.rank() + c.size() - 1) % c.size();
            WorldComm::recv(c, left, 0)
        }
        let out = World::new(3).run::<u64, _, _>(|c| ring(c).unwrap());
        assert_eq!(out.outputs, vec![2, 0, 1]);
    }

    #[test]
    fn traffic_shape_excludes_frames() {
        let s = RankStats {
            msgs_sent: 1,
            bytes_sent: 2,
            msgs_recv: 3,
            bytes_recv: 4,
            barriers: 9,
            frames_sent: 7,
            frames_recv: 8,
        };
        assert_eq!(s.traffic(), (1, 2, 3, 4));
        let mut agg = RankStats::default();
        agg.merge(&s);
        agg.merge(&s);
        assert_eq!(agg.frames_sent, 14);
        assert_eq!(agg.barriers, 9);
    }

    #[test]
    #[should_panic(expected = "world size")]
    fn zero_size_world_panics() {
        let _ = World::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn send_to_invalid_rank_panics() {
        World::new(1).run::<(), _, _>(|c| c.send(5, 0, ()));
    }
}
