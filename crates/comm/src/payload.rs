//! Message payloads with wire-size accounting.

/// A value that can travel between ranks.
///
/// Payloads are moved through in-process channels rather than serialized;
/// [`Payload::byte_len`] reports the size the message would occupy on a
/// real wire so the [`cost`](crate::cost) model sees realistic traffic.
/// Implementations should count payload data only (the substrate adds no
/// header cost — real header overhead is folded into the cost model's
/// per-message latency term).
pub trait Payload: Send + 'static {
    /// Bytes this payload would occupy serialized on a wire.
    fn byte_len(&self) -> usize;
}

impl Payload for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl Payload for Vec<u8> {
    fn byte_len(&self) -> usize {
        self.len()
    }
}

impl Payload for Vec<f32> {
    fn byte_len(&self) -> usize {
        self.len() * 4
    }
}

impl Payload for Vec<f64> {
    fn byte_len(&self) -> usize {
        self.len() * 8
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().byte_len(), 0);
        assert_eq!(7u64.byte_len(), 8);
        assert_eq!(1.5f64.byte_len(), 8);
    }

    #[test]
    fn vector_sizes() {
        assert_eq!(vec![0u8; 10].byte_len(), 10);
        assert_eq!(vec![0f32; 10].byte_len(), 40);
        assert_eq!(vec![0f64; 10].byte_len(), 80);
    }

    #[test]
    fn tuple_sums_parts() {
        assert_eq!((3u64, vec![0f32; 2]).byte_len(), 16);
    }
}
