//! Message payloads with wire-size accounting, plus the chunked wire
//! codec the multi-process backend speaks.
//!
//! Two layers live here:
//!
//! * [`Payload`] / [`WirePayload`] — what a message *is*: a value with a
//!   wire size, and (for payloads that cross a process boundary) a
//!   byte-level encoding.
//! * The **frame codec** — how encoded bytes travel: a message is split
//!   into length-prefixed chunks of at most a negotiated size, so no
//!   single `write` or reassembly step handles unbounded data and a
//!   receiver can interleave progress on large transfers with delivery of
//!   small ones arriving on other connections. [`FrameDecoder`] performs
//!   streaming reassembly and rejects malformed or truncated streams with
//!   a typed [`CodecError`] instead of panicking.

use crate::error::CodecError;

/// A value that can travel between ranks.
///
/// Payloads in the in-process world are moved through channels rather
/// than serialized; [`Payload::byte_len`] reports the size the message
/// would occupy on a real wire so the [`cost`](crate::cost) model sees
/// realistic traffic. Implementations should count payload data only
/// (frame headers are priced by the cost model's per-message latency
/// term, not accounted as bytes).
pub trait Payload: Send + 'static {
    /// Bytes this payload would occupy serialized on a wire.
    fn byte_len(&self) -> usize;
}

/// A [`Payload`] that can actually be serialized, for backends whose
/// ranks live in different address spaces.
///
/// `decode(encode(p)) == p` must hold, and `encode` must produce exactly
/// [`Payload::byte_len`]-comparable data in spirit (the two may differ by
/// small framing like element counts; traffic accounting always uses
/// `byte_len`).
pub trait WirePayload: Payload + Sized {
    /// Append this payload's wire encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decode a payload from the exact bytes `encode` produced.
    ///
    /// # Errors
    /// [`CodecError::BadPayload`] when `bytes` is not a valid encoding.
    fn decode(bytes: &[u8]) -> Result<Self, CodecError>;
}

impl Payload for () {
    fn byte_len(&self) -> usize {
        0
    }
}

impl WirePayload for () {
    fn encode(&self, _out: &mut Vec<u8>) {}

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(CodecError::BadPayload(format!(
                "unit payload with {} trailing bytes",
                bytes.len()
            )))
        }
    }
}

impl Payload for u64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl WirePayload for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| {
            CodecError::BadPayload(format!("u64 needs 8 bytes, got {}", bytes.len()))
        })?;
        Ok(u64::from_le_bytes(arr))
    }
}

impl Payload for f64 {
    fn byte_len(&self) -> usize {
        8
    }
}

impl WirePayload for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let arr: [u8; 8] = bytes.try_into().map_err(|_| {
            CodecError::BadPayload(format!("f64 needs 8 bytes, got {}", bytes.len()))
        })?;
        Ok(f64::from_le_bytes(arr))
    }
}

impl Payload for Vec<u8> {
    fn byte_len(&self) -> usize {
        self.len()
    }
}

impl WirePayload for Vec<u8> {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        Ok(bytes.to_vec())
    }
}

impl Payload for Vec<f32> {
    fn byte_len(&self) -> usize {
        self.len() * 4
    }
}

impl WirePayload for Vec<f32> {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if !bytes.len().is_multiple_of(4) {
            return Err(CodecError::BadPayload(format!(
                "Vec<f32> length {} not a multiple of 4",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().expect("chunks_exact(4)")))
            .collect())
    }
}

impl Payload for Vec<f64> {
    fn byte_len(&self) -> usize {
        self.len() * 8
    }
}

impl WirePayload for Vec<f64> {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in self {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if !bytes.len().is_multiple_of(8) {
            return Err(CodecError::BadPayload(format!(
                "Vec<f64> length {} not a multiple of 8",
                bytes.len()
            )));
        }
        Ok(bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
            .collect())
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn byte_len(&self) -> usize {
        self.0.byte_len() + self.1.byte_len()
    }
}

impl<A: WirePayload, B: WirePayload> WirePayload for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        let split_at = out.len();
        out.extend_from_slice(&[0u8; 8]);
        self.0.encode(out);
        let a_len = (out.len() - split_at - 8) as u64;
        out[split_at..split_at + 8].copy_from_slice(&a_len.to_le_bytes());
        self.1.encode(out);
    }

    fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < 8 {
            return Err(CodecError::BadPayload("tuple missing length prefix".into()));
        }
        let a_len = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")) as usize;
        let rest = &bytes[8..];
        if a_len > rest.len() {
            return Err(CodecError::BadPayload(format!(
                "tuple first element claims {a_len} bytes but only {} remain",
                rest.len()
            )));
        }
        Ok((A::decode(&rest[..a_len])?, B::decode(&rest[a_len..])?))
    }
}

// ---------------------------------------------------------------------------
// Chunked frame codec.
// ---------------------------------------------------------------------------

/// Default chunk payload size: large enough to amortize syscalls, small
/// enough that one frame never monopolizes a socket buffer.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// Default cap on a reassembled message (defensive; the biggest legitimate
/// message is a full grid gather, well under this).
pub const DEFAULT_MAX_MESSAGE: usize = 1 << 30;

/// Bytes of framing per chunk: magic, flags, tag, chunk length.
pub const FRAME_HEADER_BYTES: usize = 10;

const FRAME_MAGIC: u8 = 0xC7;
const FLAG_LAST: u8 = 0x01;

/// Number of frames a message of `len` payload bytes occupies at the
/// given chunk size (an empty message still ships one terminating frame).
pub fn frames_for(len: usize, chunk: usize) -> usize {
    assert!(chunk > 0, "chunk size must be > 0");
    len.div_ceil(chunk).max(1)
}

/// Append the chunked wire form of one `(tag, payload)` message to `out`;
/// returns the number of frames written.
pub fn encode_message(tag: u32, payload: &[u8], chunk: usize, out: &mut Vec<u8>) -> usize {
    write_message(out, tag, payload, chunk).expect("writing to a Vec cannot fail")
}

/// Write one `(tag, payload)` message to `w` as chunked frames; returns
/// the number of frames written. Streams chunk by chunk — peak extra
/// memory is one header, regardless of payload size.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_message<W: std::io::Write>(
    w: &mut W,
    tag: u32,
    payload: &[u8],
    chunk: usize,
) -> std::io::Result<usize> {
    let frames = frames_for(payload.len(), chunk);
    let mut rest = payload;
    for i in 0..frames {
        let take = rest.len().min(chunk);
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0] = FRAME_MAGIC;
        header[1] = if i + 1 == frames { FLAG_LAST } else { 0 };
        header[2..6].copy_from_slice(&tag.to_le_bytes());
        header[6..10].copy_from_slice(&(take as u32).to_le_bytes());
        w.write_all(&header)?;
        w.write_all(&rest[..take])?;
        rest = &rest[take..];
    }
    Ok(frames)
}

/// One reassembled message popped off a [`FrameDecoder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireMessage {
    /// The message tag.
    pub tag: u32,
    /// The reassembled payload bytes.
    pub bytes: Vec<u8>,
    /// How many frames carried it (for traffic accounting).
    pub frames: usize,
}

/// Streaming reassembler for chunked frames.
///
/// Feed arbitrary byte slices with [`push`](Self::push) — split anywhere,
/// including mid-header — and drain complete messages with
/// [`next_message`](Self::next_message). Call [`finish`](Self::finish)
/// at end-of-stream to turn a truncated tail into an error.
#[derive(Debug)]
pub struct FrameDecoder {
    max_chunk: usize,
    max_message: usize,
    buf: Vec<u8>,
    /// Parse cursor into `buf`; consumed bytes are compacted away on push.
    pos: usize,
    partial: Option<(u32, Vec<u8>, usize)>,
    ready: std::collections::VecDeque<WireMessage>,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameDecoder {
    /// A decoder with the default chunk and message limits.
    pub fn new() -> Self {
        Self::with_limits(DEFAULT_CHUNK, DEFAULT_MAX_MESSAGE)
    }

    /// A decoder enforcing the given chunk and reassembled-message caps.
    ///
    /// # Panics
    /// Panics if either limit is zero.
    pub fn with_limits(max_chunk: usize, max_message: usize) -> Self {
        assert!(max_chunk > 0, "chunk limit must be > 0");
        assert!(max_message > 0, "message limit must be > 0");
        Self {
            max_chunk,
            max_message,
            buf: Vec::new(),
            pos: 0,
            partial: None,
            ready: std::collections::VecDeque::new(),
        }
    }

    /// Feed bytes; complete messages become available via
    /// [`next_message`](Self::next_message).
    ///
    /// # Errors
    /// Any [`CodecError`] for malformed frames. After an error the decoder
    /// is poisoned-by-convention: the caller should drop the stream.
    pub fn push(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        self.buf.extend_from_slice(bytes);
        loop {
            let avail = self.buf.len() - self.pos;
            if avail < FRAME_HEADER_BYTES {
                break;
            }
            let h = &self.buf[self.pos..self.pos + FRAME_HEADER_BYTES];
            if h[0] != FRAME_MAGIC {
                return Err(CodecError::BadMagic(h[0]));
            }
            if h[1] & !FLAG_LAST != 0 {
                return Err(CodecError::BadFlags(h[1]));
            }
            let last = h[1] & FLAG_LAST != 0;
            let tag = u32::from_le_bytes(h[2..6].try_into().expect("4 bytes"));
            let len = u32::from_le_bytes(h[6..10].try_into().expect("4 bytes")) as usize;
            if len > self.max_chunk {
                return Err(CodecError::OversizedChunk {
                    len,
                    max: self.max_chunk,
                });
            }
            if avail < FRAME_HEADER_BYTES + len {
                break;
            }
            let data_at = self.pos + FRAME_HEADER_BYTES;
            let (acc_tag, acc, frames) = self.partial.get_or_insert_with(|| (tag, Vec::new(), 0));
            if *acc_tag != tag {
                return Err(CodecError::MixedTags {
                    started: *acc_tag,
                    got: tag,
                });
            }
            let total = acc.len() + len;
            if total > self.max_message {
                return Err(CodecError::OversizedMessage {
                    len: total,
                    max: self.max_message,
                });
            }
            acc.extend_from_slice(&self.buf[data_at..data_at + len]);
            *frames += 1;
            self.pos = data_at + len;
            if last {
                let (tag, bytes, frames) = self.partial.take().expect("just inserted");
                self.ready.push_back(WireMessage { tag, bytes, frames });
            }
        }
        // Compact consumed bytes so the buffer stays bounded by one frame.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        Ok(())
    }

    /// Pop the next fully reassembled message, if any.
    pub fn next_message(&mut self) -> Option<WireMessage> {
        self.ready.pop_front()
    }

    /// Declare end-of-stream.
    ///
    /// # Errors
    /// [`CodecError::Truncated`] if the stream ended inside a frame or
    /// with a message's final chunk missing.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.buf.len() > self.pos {
            return Err(CodecError::Truncated {
                context: "reading a frame",
            });
        }
        if self.partial.is_some() {
            return Err(CodecError::Truncated {
                context: "reassembling a chunked message",
            });
        }
        Ok(())
    }

    /// True when no partial frame or message is buffered.
    pub fn is_clean(&self) -> bool {
        self.finish().is_ok() && self.ready.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().byte_len(), 0);
        assert_eq!(7u64.byte_len(), 8);
        assert_eq!(1.5f64.byte_len(), 8);
    }

    #[test]
    fn vector_sizes() {
        assert_eq!(vec![0u8; 10].byte_len(), 10);
        assert_eq!(vec![0f32; 10].byte_len(), 40);
        assert_eq!(vec![0f64; 10].byte_len(), 80);
    }

    #[test]
    fn tuple_sums_parts() {
        assert_eq!((3u64, vec![0f32; 2]).byte_len(), 16);
    }

    fn roundtrip<P: WirePayload + PartialEq + std::fmt::Debug>(p: P) {
        let mut bytes = Vec::new();
        p.encode(&mut bytes);
        assert_eq!(P::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn wire_payload_roundtrips() {
        roundtrip(());
        roundtrip(0xdead_beef_u64);
        roundtrip(-1.25f64);
        roundtrip(vec![1u8, 2, 3]);
        roundtrip(vec![1.5f32, -2.5]);
        roundtrip(vec![1.5f64, -2.5, 0.0]);
        roundtrip((7u64, vec![1.0f64, 2.0]));
        roundtrip((vec![9u8], 3.5f64));
    }

    #[test]
    fn wire_payload_rejects_bad_lengths() {
        assert!(u64::decode(&[0; 7]).is_err());
        assert!(f64::decode(&[0; 9]).is_err());
        assert!(<Vec<f32>>::decode(&[0; 5]).is_err());
        assert!(<Vec<f64>>::decode(&[0; 12]).is_err());
        assert!(<()>::decode(&[1]).is_err());
        assert!(<(u64, u64)>::decode(&[0; 4]).is_err());
        // Tuple length prefix pointing past the buffer.
        let mut bytes = Vec::new();
        (8u64, 1u64).encode(&mut bytes);
        bytes.truncate(12);
        assert!(<(u64, u64)>::decode(&bytes).is_err());
    }

    #[test]
    fn single_frame_roundtrip() {
        let mut wire = Vec::new();
        let frames = encode_message(7, b"hello", 64, &mut wire);
        assert_eq!(frames, 1);
        assert_eq!(wire.len(), FRAME_HEADER_BYTES + 5);
        let mut dec = FrameDecoder::new();
        dec.push(&wire).unwrap();
        let m = dec.next_message().unwrap();
        assert_eq!((m.tag, m.bytes.as_slice(), m.frames), (7, &b"hello"[..], 1));
        dec.finish().unwrap();
    }

    #[test]
    fn multi_chunk_reassembles() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut wire = Vec::new();
        let frames = encode_message(3, &payload, 64, &mut wire);
        assert_eq!(frames, 1000_usize.div_ceil(64));
        // Feed one byte at a time: reassembly must survive any split.
        let mut dec = FrameDecoder::with_limits(64, 1 << 20);
        for b in &wire {
            dec.push(std::slice::from_ref(b)).unwrap();
        }
        let m = dec.next_message().unwrap();
        assert_eq!(m.bytes, payload);
        assert_eq!(m.frames, frames);
        assert!(dec.is_clean());
    }

    #[test]
    fn empty_message_ships_one_frame() {
        let mut wire = Vec::new();
        assert_eq!(encode_message(9, &[], 64, &mut wire), 1);
        let mut dec = FrameDecoder::new();
        dec.push(&wire).unwrap();
        let m = dec.next_message().unwrap();
        assert_eq!((m.tag, m.bytes.len()), (9, 0));
    }

    #[test]
    fn write_message_matches_encode_message() {
        let payload: Vec<u8> = (0..300u16).map(|v| v as u8).collect();
        let mut a = Vec::new();
        encode_message(5, &payload, 100, &mut a);
        let mut b = Vec::new();
        let frames = write_message(&mut b, 5, &payload, 100).unwrap();
        assert_eq!(a, b);
        assert_eq!(frames, 3);
    }

    #[test]
    fn back_to_back_messages_keep_order() {
        let mut wire = Vec::new();
        encode_message(1, b"first", 4, &mut wire);
        encode_message(1, b"second", 4, &mut wire);
        encode_message(2, b"", 4, &mut wire);
        let mut dec = FrameDecoder::with_limits(4, 1024);
        dec.push(&wire).unwrap();
        let tags: Vec<(u32, Vec<u8>)> = std::iter::from_fn(|| dec.next_message())
            .map(|m| (m.tag, m.bytes))
            .collect();
        assert_eq!(
            tags,
            vec![
                (1, b"first".to_vec()),
                (1, b"second".to_vec()),
                (2, Vec::new())
            ]
        );
    }

    #[test]
    fn bad_magic_is_an_error() {
        let mut wire = Vec::new();
        encode_message(1, b"x", 64, &mut wire);
        wire[0] = 0x00;
        assert!(matches!(
            FrameDecoder::new().push(&wire),
            Err(CodecError::BadMagic(0))
        ));
    }

    #[test]
    fn undefined_flags_are_an_error() {
        let mut wire = Vec::new();
        encode_message(1, b"x", 64, &mut wire);
        wire[1] |= 0x80;
        assert!(matches!(
            FrameDecoder::new().push(&wire),
            Err(CodecError::BadFlags(_))
        ));
    }

    #[test]
    fn oversized_chunk_is_an_error() {
        let mut wire = Vec::new();
        encode_message(1, &[0u8; 65], 65, &mut wire);
        let mut dec = FrameDecoder::with_limits(64, 1024);
        assert!(matches!(
            dec.push(&wire),
            Err(CodecError::OversizedChunk { len: 65, max: 64 })
        ));
    }

    #[test]
    fn oversized_message_is_an_error() {
        let mut wire = Vec::new();
        encode_message(1, &[0u8; 100], 10, &mut wire);
        let mut dec = FrameDecoder::with_limits(10, 50);
        assert!(matches!(
            dec.push(&wire),
            Err(CodecError::OversizedMessage { .. })
        ));
    }

    #[test]
    fn mid_message_tag_change_is_an_error() {
        let mut wire = Vec::new();
        encode_message(1, &[0u8; 8], 4, &mut wire);
        // Corrupt the second frame's tag.
        wire[FRAME_HEADER_BYTES + 4 + 2] = 9;
        assert!(matches!(
            FrameDecoder::with_limits(4, 64).push(&wire),
            Err(CodecError::MixedTags { started: 1, got: _ })
        ));
    }

    #[test]
    fn truncation_is_an_error_not_a_hang() {
        let mut wire = Vec::new();
        encode_message(1, &[0u8; 8], 4, &mut wire);
        for cut in [
            1,
            FRAME_HEADER_BYTES - 1,
            FRAME_HEADER_BYTES + 2,
            wire.len() - 1,
        ] {
            let mut dec = FrameDecoder::with_limits(4, 64);
            dec.push(&wire[..cut]).unwrap();
            assert!(
                dec.finish().is_err(),
                "cut at {cut} must be reported as truncation"
            );
        }
    }

    #[test]
    fn frames_for_boundaries() {
        assert_eq!(frames_for(0, 64), 1);
        assert_eq!(frames_for(1, 64), 1);
        assert_eq!(frames_for(64, 64), 1);
        assert_eq!(frames_for(65, 64), 2);
        assert_eq!(frames_for(128, 64), 2);
        assert_eq!(frames_for(129, 64), 3);
    }
}
