//! In-process message-passing substrate for the distributed-memory STKDE
//! extension.
//!
//! The paper's conclusion names distributed-memory machines as the next
//! step after its shared-memory algorithms. This crate provides the
//! substrate for that extension without requiring a cluster: a *rank* is a
//! thread, a *network* is a set of channels, and the runtime records
//! per-rank traffic (messages and bytes) so a latency/bandwidth
//! [`cost`] model can translate measured single-host runs into modeled
//! cluster executions — the same measured-work + analytic-model approach
//! the paper itself uses for its 16-thread figures via Graham's bound.
//!
//! Semantics mirror the MPI subset a distributed STKDE needs:
//!
//! * [`World::run`] — SPMD launch: the same closure runs on every rank;
//! * [`Comm::send`] / [`Comm::recv`] — point-to-point, *non-blocking
//!   sends* (unbounded channels, so pairwise exchanges cannot deadlock)
//!   and *selective blocking receives* (by source and tag, out-of-order
//!   arrivals are buffered);
//! * [`Comm::barrier`] — full synchronization;
//! * per-rank [`RankStats`] traffic accounting.
//!
//! Payloads are moved, not serialized: [`Payload::byte_len`] reports what
//! the message *would* cost on a wire, preserving the cost model's inputs
//! while keeping the simulation allocation-cheap. This substitution is
//! documented in DESIGN.md: the algorithms under study are communication-
//! volume bound, not serialization-CPU bound, so accounted bytes (not
//! serialization time) are the behaviour-relevant quantity.

//! # Backends
//!
//! Two backends implement the per-rank [`WorldComm`] protocol:
//!
//! * [`World`] — ranks are threads, wires are channels (the original
//!   single-process simulation; exact, fast, deadlocks crash).
//! * [`process::ProcessWorld`] (Unix only) — ranks are OS processes
//!   spawned from a rank executable, wires are Unix-domain sockets
//!   carrying the chunked frame codec from [`payload`], and every
//!   blocking operation has a deadline so dead or stalled peers surface
//!   as typed [`CommError`]s. See the module docs for the env-var
//!   launch protocol.
//!
//! Rank code written against `WorldComm` runs unchanged on both, which
//! the cross-backend conformance suite (`tests/distmem_conformance.rs`
//! at the workspace root) exploits: the same seeded problems must
//! produce identical densities and identical accounted traffic on each
//! backend.

#![warn(missing_docs)]

pub mod cost;
pub mod error;
pub mod payload;
#[cfg(unix)]
pub mod process;
pub mod world;

pub use cost::{CommCost, ModeledRun};
pub use error::{CodecError, CommError};
pub use payload::{FrameDecoder, Payload, WirePayload, DEFAULT_CHUNK};
#[cfg(unix)]
pub use process::{ProcessComm, ProcessWorld, RankBoot};
#[cfg(feature = "obs")]
pub use world::record_rank_stats;
pub use world::{Comm, RankStats, World, WorldComm, WorldOutput};
