//! In-process message-passing substrate for the distributed-memory STKDE
//! extension.
//!
//! The paper's conclusion names distributed-memory machines as the next
//! step after its shared-memory algorithms. This crate provides the
//! substrate for that extension without requiring a cluster: a *rank* is a
//! thread, a *network* is a set of channels, and the runtime records
//! per-rank traffic (messages and bytes) so a latency/bandwidth
//! [`cost`] model can translate measured single-host runs into modeled
//! cluster executions — the same measured-work + analytic-model approach
//! the paper itself uses for its 16-thread figures via Graham's bound.
//!
//! Semantics mirror the MPI subset a distributed STKDE needs:
//!
//! * [`World::run`] — SPMD launch: the same closure runs on every rank;
//! * [`Comm::send`] / [`Comm::recv`] — point-to-point, *non-blocking
//!   sends* (unbounded channels, so pairwise exchanges cannot deadlock)
//!   and *selective blocking receives* (by source and tag, out-of-order
//!   arrivals are buffered);
//! * [`Comm::barrier`] — full synchronization;
//! * per-rank [`RankStats`] traffic accounting.
//!
//! Payloads are moved, not serialized: [`Payload::byte_len`] reports what
//! the message *would* cost on a wire, preserving the cost model's inputs
//! while keeping the simulation allocation-cheap. This substitution is
//! documented in DESIGN.md: the algorithms under study are communication-
//! volume bound, not serialization-CPU bound, so accounted bytes (not
//! serialization time) are the behaviour-relevant quantity.

#![warn(missing_docs)]

pub mod cost;
pub mod payload;
pub mod world;

pub use cost::{CommCost, ModeledRun};
pub use payload::Payload;
pub use world::{Comm, RankStats, World, WorldOutput};
