//! End-to-end tests of the multi-process backend.
//!
//! There is no separate rank executable at this layer, so these tests
//! use the classic self-exec trick: the parent spawns *this very test
//! binary* filtered down to [`rank_child_entry`], which detects the rank
//! environment and runs the requested rank program instead of behaving
//! like a test. With the environment unset (a normal `cargo test` run),
//! `rank_child_entry` is an instant no-op pass.

#![cfg(unix)]

use std::time::{Duration, Instant};
use stkde_comm::process::child_main;
use stkde_comm::{CommError, ProcessComm, ProcessWorld, RankBoot, WorldComm};

const PROGRAM_ENV: &str = "STKDE_TEST_PROGRAM";

fn world(size: usize, program: &str) -> ProcessWorld {
    ProcessWorld::new(size, std::env::current_exe().expect("test exe"))
        .arg("rank_child_entry")
        .arg("--exact")
        .arg("--nocapture")
        .env(PROGRAM_ENV, program)
        .timeout(Duration::from_secs(10))
        .run_timeout(Duration::from_secs(60))
}

/// Not a test of anything by itself: the entry point rank processes run.
#[test]
fn rank_child_entry() {
    let Some(boot) = RankBoot::from_env().expect("rank env parses") else {
        return; // normal test run, nothing to do
    };
    let program = std::env::var(PROGRAM_ENV).expect("rank spawned without a program");
    let code = match program.as_str() {
        "ring" => child_main::<u64, _>(&boot, |c| {
            let right = (c.rank() + 1) % c.size();
            c.send(right, 0, c.rank() as u64)?;
            let left = (c.rank() + c.size() - 1) % c.size();
            let got = c.recv(left, 0)?;
            Ok(got.to_le_bytes().to_vec())
        }),
        "chunk_echo" => child_main::<Vec<u8>, _>(&boot, |c| {
            // A payload far larger than the 512-byte chunk configured by
            // the parent: exercises multi-frame reassembly across the
            // process boundary in both directions.
            let n = 100_000;
            if c.rank() == 0 {
                let mut total = 0u64;
                for _ in 1..c.size() {
                    let (from, data) = c.recv_any(1)?;
                    if data.len() != n || !data.iter().all(|&b| b == from as u8) {
                        return Err(CommError::Protocol(format!(
                            "corrupt payload from rank {from}"
                        )));
                    }
                    total += data.len() as u64;
                    c.send(from, 2, data)?;
                }
                Ok(total.to_le_bytes().to_vec())
            } else {
                c.send(0, 1, vec![c.rank() as u8; n])?;
                let back = c.recv(0, 2)?;
                Ok((back.len() as u64).to_le_bytes().to_vec())
            }
        }),
        "barrier_storm" => child_main::<(), _>(&boot, |c| {
            for _ in 0..25 {
                c.barrier()?;
            }
            Ok((c.stats().barriers as u64).to_le_bytes().to_vec())
        }),
        "tag_order" => child_main::<u64, _>(&boot, |c| {
            // Out-of-order tags and self-sends must behave like the
            // in-process world: selective receive buffers non-matching
            // arrivals; self-sends deliver without billing.
            if c.rank() == 0 {
                c.send(1, 2, 222)?;
                c.send(1, 1, 111)?;
                c.send(0, 9, 42)?;
                let own = c.recv(0, 9)?;
                Ok(own.to_le_bytes().to_vec())
            } else {
                let first = c.recv(0, 1)?;
                let second = c.recv(0, 2)?;
                Ok((first * 1000 + second).to_le_bytes().to_vec())
            }
        }),
        "exit_early" => {
            if boot.rank == 1 {
                // Die after the mesh is up but before sending anything.
                let comm = boot.connect::<u64>().expect("mesh connects");
                drop(comm);
                std::process::exit(7);
            }
            child_main::<u64, _>(&boot, |c| {
                let v = c.recv(1, 0)?; // never arrives
                Ok(v.to_le_bytes().to_vec())
            })
        }
        "stall" => {
            if boot.rank == 1 {
                let _comm = boot.connect::<u64>().expect("mesh connects");
                std::thread::sleep(Duration::from_secs(600));
                std::process::exit(0);
            }
            child_main::<u64, _>(&boot, |c| {
                let v = c.recv(1, 0)?; // peer is asleep: must time out
                Ok(v.to_le_bytes().to_vec())
            })
        }
        other => panic!("unknown rank program {other:?}"),
    };
    std::process::exit(code);
}

fn as_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8-byte output"))
}

#[test]
fn ring_passes_left_neighbor_ids() {
    for size in [1usize, 2, 4] {
        let out = world(size, "ring").launch().expect("ring world");
        for (rank, bytes) in out.outputs.iter().enumerate() {
            let left = (rank + size - 1) % size;
            assert_eq!(as_u64(bytes), left as u64, "size {size} rank {rank}");
        }
        let agg = out.total_stats();
        let expected = if size == 1 { 0 } else { size };
        assert_eq!(agg.msgs_sent, expected, "self-sends are never billed");
        assert_eq!(agg.msgs_recv, expected);
        assert_eq!(agg.bytes_sent, expected * 8);
        assert_eq!(agg.frames_sent, expected, "one frame per small message");
    }
}

#[test]
fn chunked_payloads_survive_the_wire() {
    let out = world(3, "chunk_echo")
        .chunk(512)
        .launch()
        .expect("chunk echo world");
    assert_eq!(as_u64(&out.outputs[0]), 200_000);
    assert_eq!(as_u64(&out.outputs[1]), 100_000);
    assert_eq!(as_u64(&out.outputs[2]), 100_000);
    // 100_000-byte payloads over 512-byte chunks: ceil = 196 frames per
    // message, 4 big messages + nothing else.
    let agg = out.total_stats();
    assert_eq!(agg.msgs_sent, 4);
    assert_eq!(agg.frames_sent, 4 * 100_000usize.div_ceil(512));
    assert_eq!(agg.bytes_sent, 4 * 100_000);
    assert_eq!(agg.bytes_recv, agg.bytes_sent);
}

#[test]
fn barriers_synchronize_processes() {
    let out = world(3, "barrier_storm").launch().expect("barrier world");
    assert!(out.outputs.iter().all(|b| as_u64(b) == 25));
    assert_eq!(out.total_stats().barriers, 25);
    // Barrier control traffic is transport-internal: not billed.
    assert_eq!(out.total_stats().msgs_sent, 0);
}

#[test]
fn selective_receive_and_self_sends_match_thread_world() {
    let out = world(2, "tag_order").launch().expect("tag order world");
    assert_eq!(as_u64(&out.outputs[0]), 42);
    assert_eq!(as_u64(&out.outputs[1]), 111_222);
    // The self-send on rank 0 is free.
    assert_eq!(out.stats[0].msgs_sent, 2);
    assert_eq!(out.stats[0].bytes_sent, 16);
}

#[test]
fn early_exit_rank_fails_the_world_within_deadline() {
    let started = Instant::now();
    let err = world(3, "exit_early")
        .timeout(Duration::from_secs(2))
        .run_timeout(Duration::from_secs(30))
        .launch()
        .unwrap_err();
    let elapsed = started.elapsed();
    assert!(
        matches!(err, CommError::RankFailed { .. }),
        "expected RankFailed, got {err}"
    );
    assert!(
        elapsed < Duration::from_secs(25),
        "failure must surface within the deadline, took {elapsed:?}"
    );
}

#[test]
fn stalled_rank_times_out_not_hangs() {
    let started = Instant::now();
    let err = world(2, "stall")
        .timeout(Duration::from_millis(800))
        .run_timeout(Duration::from_secs(30))
        .launch()
        .unwrap_err();
    let elapsed = started.elapsed();
    match &err {
        CommError::RankFailed { rank, detail } => {
            assert_eq!(*rank, 0, "the waiting rank reports the timeout");
            assert!(detail.contains("timed out"), "detail: {detail}");
        }
        other => panic!("expected RankFailed with timeout detail, got {other}"),
    }
    assert!(
        elapsed < Duration::from_secs(25),
        "stall must resolve within the run budget, took {elapsed:?}"
    );
}

/// Suppressed when the unused harness would warn: `ProcessComm` is named
/// in the signature only to prove the public API supports generic rank
/// code (the conformance suite relies on this compiling).
#[allow(dead_code)]
fn generic_rank_code_compiles<P: stkde_comm::WirePayload>(
    c: &mut ProcessComm<P>,
) -> (usize, usize) {
    (WorldComm::<P>::rank(c), WorldComm::<P>::size(c))
}
