//! Randomized stress of the message-passing substrate: arbitrary traffic
//! matrices with mixed tags must deliver every payload exactly once with
//! exact byte accounting, and barriers must never deadlock.

use proptest::prelude::*;
use stkde_comm::{RankStats, World};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every message of a random traffic plan arrives exactly once, from
    /// the advertised sender, with its payload intact.
    #[test]
    fn random_traffic_matrix_delivers_everything(
        size in 2usize..6,
        // plan[i] = list of (dest, tag, words) rank i sends.
        raw_plan in proptest::collection::vec(
            proptest::collection::vec((0usize..6, 0u32..3, 1usize..20), 0..12),
            6,
        ),
    ) {
        let plan: Vec<Vec<(usize, u32, usize)>> = raw_plan
            .into_iter()
            .take(size)
            .map(|sends| {
                sends
                    .into_iter()
                    .map(|(to, tag, words)| (to % size, tag, words))
                    .collect()
            })
            .collect();
        let plan = &plan;

        let out = World::new(size).run::<Vec<f64>, _, _>(|comm| {
            let me = comm.rank();
            // Payload: [sender, checksum_words...]; checksum is the word
            // count so the receiver can verify payloads arrived intact.
            for &(to, tag, words) in &plan[me] {
                let payload: Vec<f64> = std::iter::once(me as f64)
                    .chain((0..words).map(|_| 1.0))
                    .collect();
                comm.send(to, tag, payload);
            }
            comm.barrier();
            // Receive everything the plan says is due, tag by tag.
            let mut got_words = 0.0f64;
            let mut got_msgs = 0usize;
            for tag in 0..3u32 {
                let due = plan
                    .iter()
                    .flatten()
                    .filter(|&&(to, t, _)| to == me && t == tag)
                    .count();
                for _ in 0..due {
                    let (from, payload) = comm.recv_any(tag);
                    assert_eq!(payload[0] as usize, from, "sender stamp");
                    got_words += payload[1..].iter().sum::<f64>();
                    got_msgs += 1;
                }
            }
            vec![got_words, got_msgs as f64]
        });

        // Per-receiver delivery counts and payload checksums match the plan.
        for me in 0..size {
            let due_words: usize = plan
                .iter()
                .flatten()
                .filter(|&&(to, _, _)| to == me)
                .map(|&(_, _, words)| words)
                .sum();
            let due_msgs = plan.iter().flatten().filter(|&&(to, _, _)| to == me).count();
            prop_assert_eq!(out.outputs[me][0], due_words as f64, "rank {} words", me);
            prop_assert_eq!(out.outputs[me][1], due_msgs as f64, "rank {} msgs", me);
        }

        // Global byte accounting: sent == received == planned (self-sends
        // are delivered but never billed).
        let agg: RankStats = out.total_stats();
        let planned_bytes: usize = plan
            .iter()
            .enumerate()
            .flat_map(|(from, sends)| {
                sends
                    .iter()
                    .filter(move |&&(to, _, _)| to != from)
                    .map(|&(_, _, words)| (words + 1) * 8)
            })
            .sum();
        prop_assert_eq!(agg.bytes_sent, planned_bytes);
        prop_assert_eq!(agg.bytes_sent, agg.bytes_recv);
        prop_assert_eq!(agg.msgs_sent, agg.msgs_recv);
    }

    /// Repeated barriers never deadlock and are counted once per rank.
    #[test]
    fn barrier_storm(size in 1usize..8, rounds in 1usize..20) {
        let out = World::new(size).run::<(), _, _>(|comm| {
            for _ in 0..rounds {
                comm.barrier();
            }
            comm.stats().barriers
        });
        prop_assert!(out.outputs.iter().all(|&b| b == rounds));
    }
}
