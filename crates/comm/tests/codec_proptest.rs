//! Property tests of the chunked wire codec: arbitrary payload lengths
//! round-trip through any chunk size and any stream segmentation,
//! messages from multiple interleaved streams reassemble independently,
//! and malformed or truncated streams produce typed errors, never panics
//! or hangs.

use proptest::prelude::*;
use stkde_comm::payload::{encode_message, frames_for, FrameDecoder};

/// Feed `wire` to `dec` in pieces whose sizes cycle through `cuts`
/// (0 entries mean "one byte").
fn feed_in_pieces(dec: &mut FrameDecoder, wire: &[u8], cuts: &[usize]) {
    let mut rest = wire;
    let mut i = 0;
    while !rest.is_empty() {
        let take = cuts[i % cuts.len()].clamp(1, rest.len());
        dec.push(&rest[..take]).expect("valid stream");
        rest = &rest[take..];
        i += 1;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Round-trip across the interesting length boundaries relative to
    /// the chunk size: 0, 1, chunk-1, chunk, chunk+1, and multi-chunk.
    #[test]
    fn boundary_lengths_roundtrip(chunk in 1usize..200, tag in 0u32..1000) {
        let lengths = [
            0,
            1,
            chunk.saturating_sub(1),
            chunk,
            chunk + 1,
            3 * chunk + chunk / 2,
        ];
        for len in lengths {
            let payload: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let mut wire = Vec::new();
            let frames = encode_message(tag, &payload, chunk, &mut wire);
            prop_assert_eq!(frames, frames_for(len, chunk), "len {} chunk {}", len, chunk);
            let mut dec = FrameDecoder::with_limits(chunk, 1 << 20);
            dec.push(&wire).unwrap();
            let m = dec.next_message().expect("message completes");
            prop_assert_eq!(m.tag, tag);
            prop_assert_eq!(&m.bytes, &payload, "len {} chunk {}", len, chunk);
            prop_assert_eq!(m.frames, frames);
            prop_assert!(dec.is_clean());
        }
    }

    /// A sequence of random messages on one stream, delivered in random
    /// segment sizes, reassembles to exactly the sent sequence.
    #[test]
    fn random_streams_reassemble(
        chunk in 1usize..100,
        msgs in proptest::collection::vec((0u32..5, 0usize..400), 1..12),
        cuts in proptest::collection::vec(1usize..64, 1..8),
    ) {
        let mut wire = Vec::new();
        let mut expect = Vec::new();
        for (i, &(tag, len)) in msgs.iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|b| (b + i * 131) as u8).collect();
            encode_message(tag, &payload, chunk, &mut wire);
            expect.push((tag, payload));
        }
        let mut dec = FrameDecoder::with_limits(chunk, 1 << 20);
        feed_in_pieces(&mut dec, &wire, &cuts);
        let got: Vec<(u32, Vec<u8>)> =
            std::iter::from_fn(|| dec.next_message()).map(|m| (m.tag, m.bytes)).collect();
        prop_assert_eq!(got, expect);
        dec.finish().unwrap();
    }

    /// Messages from several ranks, each on its own stream (as in the
    /// process backend: one decoder per peer socket), interleaved at
    /// arbitrary granularity, never corrupt each other.
    #[test]
    fn interleaved_rank_streams_are_independent(
        chunk in 1usize..64,
        lens in proptest::collection::vec(0usize..300, 2..5),
        schedule in proptest::collection::vec((0usize..5, 1usize..40), 4..40),
    ) {
        let ranks = lens.len();
        let wires: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(r, &len)| {
                let payload: Vec<u8> = (0..len).map(|b| (b ^ (r * 37)) as u8).collect();
                let mut w = Vec::new();
                encode_message(r as u32, &payload, chunk, &mut w);
                w
            })
            .collect();
        let mut decs: Vec<FrameDecoder> = (0..ranks)
            .map(|_| FrameDecoder::with_limits(chunk, 1 << 20))
            .collect();
        let mut cursors = vec![0usize; ranks];
        // Interleave pushes across streams per the random schedule, then
        // drain whatever remains.
        for &(r, n) in &schedule {
            let r = r % ranks;
            let end = (cursors[r] + n).min(wires[r].len());
            decs[r].push(&wires[r][cursors[r]..end]).unwrap();
            cursors[r] = end;
        }
        for r in 0..ranks {
            decs[r].push(&wires[r][cursors[r]..]).unwrap();
            let m = decs[r].next_message().expect("rank stream completes");
            prop_assert_eq!(m.tag, r as u32);
            prop_assert_eq!(m.bytes.len(), lens[r]);
            prop_assert!(
                m.bytes.iter().enumerate().all(|(b, &v)| v == (b ^ (r * 37)) as u8),
                "rank {} payload corrupted", r
            );
            prop_assert!(decs[r].is_clean());
        }
    }

    /// Truncating a valid stream anywhere yields a clean error from
    /// `finish()` (or has delivered only the complete prefix), never a
    /// panic.
    #[test]
    fn truncation_any_cut_errors_cleanly(
        chunk in 1usize..64,
        len in 0usize..300,
        cut_frac in 0.0f64..1.0,
    ) {
        let payload: Vec<u8> = (0..len).map(|b| b as u8).collect();
        let mut wire = Vec::new();
        encode_message(7, &payload, chunk, &mut wire);
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let mut dec = FrameDecoder::with_limits(chunk, 1 << 20);
        dec.push(&wire[..cut]).unwrap();
        if cut < wire.len() {
            // Nothing delivered (message incomplete) and EOF is typed.
            prop_assert!(dec.next_message().is_none());
            prop_assert!(dec.finish().is_err());
        } else {
            prop_assert!(dec.next_message().is_some());
            dec.finish().unwrap();
        }
    }

    /// Flipping any single byte of a single-frame message either fails
    /// with a typed error or alters exactly the payload — the decoder
    /// never panics and never invents extra messages.
    #[test]
    fn corruption_never_panics(len in 1usize..100, flip_frac in 0.0f64..1.0, bit in 0u8..8) {
        let payload: Vec<u8> = (0..len).map(|b| (b * 3) as u8).collect();
        let mut wire = Vec::new();
        encode_message(1, &payload, 128, &mut wire);
        let flip = ((wire.len() as f64) * flip_frac) as usize % wire.len();
        wire[flip] ^= 1 << bit;
        let mut dec = FrameDecoder::with_limits(128, 1 << 20);
        let mut delivered = 0;
        if dec.push(&wire).is_ok() {
            while dec.next_message().is_some() {
                delivered += 1;
            }
            // Corrupting length/flags may leave a dangling partial; that
            // must surface via finish(), not silently.
            if delivered == 0 {
                prop_assert!(dec.finish().is_err());
            }
        }
        prop_assert!(delivered <= 1, "corruption produced {} messages", delivered);
    }
}
