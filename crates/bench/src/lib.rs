//! Shared machinery for the paper-reproduction harness binaries.
//!
//! Every table and figure of the paper's evaluation (§6) has a dedicated
//! binary in `src/bin/` (see DESIGN.md §5 for the index). They share:
//!
//! * [`opts`] — a tiny CLI parser (`--scale`, `--threads`, `--filter`,
//!   `--seed`, `--paper`) controlling instance scaling and sweeps;
//! * [`prep`] — instance preparation: catalog filtering, volumetric
//!   scaling to the machine budget, deterministic point generation;
//! * [`table`] — fixed-width table printing in the paper's row format;
//! * [`sim`] — the 16-virtual-processor speedup models used to reproduce
//!   the paper's thread counts on smaller hosts (documented in
//!   EXPERIMENTS.md);
//! * [`flatblock`] — a replica of the retired row-major block-sparse
//!   grid, kept as the layout-ablation baseline for the Morton bricks.

#![warn(missing_docs)]

pub mod flatblock;
pub mod opts;
pub mod prep;
pub mod runner;
pub mod sim;
pub mod table;

pub use flatblock::FlatBlockGrid;
pub use opts::HarnessOpts;
pub use prep::{prepare_instances, PreparedInstance};
pub use table::Table;

/// Measure wall-clock seconds of one run of `f`.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (f64, T) {
    let start = std::time::Instant::now();
    let out = f();
    (start.elapsed().as_secs_f64(), out)
}

/// Best-of-`reps` wall-clock seconds (the paper reports single runs; we
/// default to best-of-1 but harnesses can ask for more).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let (mut best, mut out) = time_once(&mut f);
    for _ in 1..reps.max(1) {
        let (t, o) = time_once(&mut f);
        if t < best {
            best = t;
            out = o;
        }
    }
    (best, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_once_returns_output() {
        let (t, v) = time_once(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_best_takes_minimum() {
        let mut calls = 0;
        let (t, v) = time_best(3, || {
            calls += 1;
            // First call is deliberately slow; later calls are fast.
            if calls == 1 {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            calls
        });
        assert_eq!(calls, 3);
        assert_ne!(v, 1, "a fast later repetition should win");
        assert!(t < 0.030, "best time should be the fast path: {t}");
    }
}
