//! A replica of the *previous* sparse-grid design — a row-major flat
//! table of lazily `Box`-allocated 8³ blocks — kept in the bench crate
//! as the comparison baseline for the Morton-brick layout that replaced
//! it in `stkde-grid`.
//!
//! The two layouts allocate the same payloads (8³ scalars per block);
//! they differ only in *table order* (row-major here vs chunked Morton
//! in [`stkde_grid::brick`]) and in table cell width (a `Box` option
//! here vs an atomic pointer there). Benchmarking reads and row writes
//! against this replica isolates exactly the layout decision:
//! `benches/sparse.rs` drives both over identical traversals and
//! `bench_guard` holds the Morton side to "no worse than flat" on the
//! dense assemble path (plus a sanity bound on per-voxel sweeps).

use stkde_grid::{Grid3, GridDims, Scalar};

/// Block edge length, matching `stkde_grid::brick::BRICK_EDGE` so the
/// comparison varies only the table layout, never the payload shape.
pub const BLOCK_EDGE: usize = 8;
/// Scalars per block.
pub const BLOCK_VOLUME: usize = BLOCK_EDGE * BLOCK_EDGE * BLOCK_EDGE;

/// The old block-sparse grid: one row-major `Option<Box<[S]>>` per 8³
/// block, allocated on first touch.
pub struct FlatBlockGrid<S> {
    dims: GridDims,
    nbx: usize,
    nby: usize,
    blocks: Vec<Option<Box<[S]>>>,
}

impl<S: Scalar> FlatBlockGrid<S> {
    /// Empty grid over `dims`; no blocks allocated.
    pub fn new(dims: GridDims) -> Self {
        let nbx = dims.gx.div_ceil(BLOCK_EDGE);
        let nby = dims.gy.div_ceil(BLOCK_EDGE);
        let nbt = dims.gt.div_ceil(BLOCK_EDGE);
        let mut blocks = Vec::new();
        blocks.resize_with(nbx * nby * nbt, || None);
        Self {
            dims,
            nbx,
            nby,
            blocks,
        }
    }

    #[inline]
    fn block_index(&self, x: usize, y: usize, t: usize) -> usize {
        ((t / BLOCK_EDGE) * self.nby + y / BLOCK_EDGE) * self.nbx + x / BLOCK_EDGE
    }

    #[inline]
    fn cell_offset(x: usize, y: usize, t: usize) -> usize {
        ((t % BLOCK_EDGE) * BLOCK_EDGE + y % BLOCK_EDGE) * BLOCK_EDGE + x % BLOCK_EDGE
    }

    /// Read one voxel; unallocated blocks read as zero. Panics on
    /// out-of-bounds coordinates, like the implementation it replicates.
    #[inline]
    pub fn get(&self, x: usize, y: usize, t: usize) -> S {
        assert!(x < self.dims.gx && y < self.dims.gy && t < self.dims.gt);
        match &self.blocks[self.block_index(x, y, t)] {
            Some(b) => b[Self::cell_offset(x, y, t)],
            None => S::ZERO,
        }
    }

    /// Add `vals` into the row at `(y, t)` starting at `x0`, allocating
    /// blocks on first touch (the old write primitive).
    pub fn add_row_f64(&mut self, y: usize, t: usize, x0: usize, vals: &[f64]) {
        assert!(x0 + vals.len() <= self.dims.gx);
        let mut x = x0;
        let end = x0 + vals.len();
        while x < end {
            let seg = (BLOCK_EDGE - x % BLOCK_EDGE).min(end - x);
            let bi = self.block_index(x, y, t);
            let block = self.blocks[bi]
                .get_or_insert_with(|| vec![S::ZERO; BLOCK_VOLUME].into_boxed_slice());
            let base = Self::cell_offset(x, y, t);
            let src = &vals[x - x0..x - x0 + seg];
            for (o, &v) in block[base..base + seg].iter_mut().zip(src) {
                *o += S::from_f64(v);
            }
            x += seg;
        }
    }

    /// Number of allocated blocks.
    pub fn allocated_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    /// Materialize as a dense [`Grid3`], walking allocated blocks in
    /// table order and copying X-rows — the old implementation's
    /// assemble path, replicated for the read-side comparison.
    pub fn to_dense(&self) -> Grid3<S> {
        let mut g = Grid3::zeros(self.dims);
        for (bi, block) in self.blocks.iter().enumerate() {
            let Some(data) = block.as_deref() else {
                continue;
            };
            let bx = bi % self.nbx;
            let rest = bi / self.nbx;
            let (bt, by) = (rest / self.nby, rest % self.nby);
            let (x0, y0, t0) = (bx * BLOCK_EDGE, by * BLOCK_EDGE, bt * BLOCK_EDGE);
            let xw = BLOCK_EDGE.min(self.dims.gx - x0);
            for lt in 0..BLOCK_EDGE.min(self.dims.gt - t0) {
                for ly in 0..BLOCK_EDGE.min(self.dims.gy - y0) {
                    let src = &data[(lt * BLOCK_EDGE + ly) * BLOCK_EDGE..][..xw];
                    g.row_mut(y0 + ly, t0 + lt, x0, x0 + xw)
                        .copy_from_slice(src);
                }
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_lazy_allocation() {
        let mut g: FlatBlockGrid<f32> = FlatBlockGrid::new(GridDims::new(20, 17, 9));
        assert_eq!(g.allocated_blocks(), 0);
        g.add_row_f64(5, 3, 6, &[1.0, 2.0, 3.0, 4.0]);
        // Row 6..10 straddles the x=8 block boundary: two blocks.
        assert_eq!(g.allocated_blocks(), 2);
        assert_eq!(g.get(6, 5, 3), 1.0);
        assert_eq!(g.get(9, 5, 3), 4.0);
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn matches_morton_grid_on_same_writes() {
        let dims = GridDims::new(33, 18, 11);
        let mut flat: FlatBlockGrid<f64> = FlatBlockGrid::new(dims);
        let mut morton = stkde_grid::SparseGrid3::<f64>::new(dims);
        let vals: Vec<f64> = (0..30).map(|i| i as f64 * 0.25).collect();
        for t in 0..dims.gt {
            flat.add_row_f64(t % dims.gy, t, 2, &vals);
            morton.add_row_f64(t % dims.gy, t, 2, &vals);
        }
        for t in 0..dims.gt {
            for y in 0..dims.gy {
                for x in 0..dims.gx {
                    assert_eq!(flat.get(x, y, t), morton.get(x, y, t));
                }
            }
        }
    }
}
