//! Minimal CLI options shared by all harness binaries.

/// Harness options parsed from the command line.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessOpts {
    /// Explicit volumetric scale `α` (overrides the budget-based default).
    pub scale: Option<f64>,
    /// Voxel budget per instance when `scale` is not given.
    pub max_voxels: usize,
    /// Point budget per instance when `scale` is not given.
    pub max_points: usize,
    /// Kernel-work budget (voxel updates) when `scale` is not given.
    pub max_updates: f64,
    /// Substring filter on instance names (e.g. `Dengue` or `Hr-Hb`).
    pub filter: Option<String>,
    /// Real thread counts to sweep.
    pub threads: Vec<usize>,
    /// Virtual processor count for the simulated speedup column.
    pub sim_threads: usize,
    /// RNG seed for point generation.
    pub seed: u64,
    /// Repetitions per measurement (best-of).
    pub reps: usize,
}

impl Default for HarnessOpts {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            scale: None,
            // ~8M voxels (32 MiB of f32 grid), ~120k points, and ≤1.5G
            // kernel updates keep the full 21-instance suite in the
            // minutes range on 2 cores.
            max_voxels: 8_000_000,
            max_points: 120_000,
            max_updates: 1.5e9,
            filter: None,
            threads: (0..).map(|i| 1 << i).take_while(|&t| t <= cores).collect(),
            sim_threads: 16,
            seed: 42,
            reps: 1,
        }
    }
}

impl HarnessOpts {
    /// Parse from `std::env::args`. Exits with a usage message on error or
    /// `--help`.
    pub fn from_args() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}\n{}", Self::usage());
                std::process::exit(if msg == "help" { 0 } else { 2 });
            }
        }
    }

    /// The usage string.
    pub fn usage() -> &'static str {
        "usage: <harness> [--scale A] [--max-voxels N] [--max-points N] [--max-updates N]\n\
         \x20                [--filter SUBSTR] [--threads 1,2,4] [--sim-threads P]\n\
         \x20                [--seed S] [--reps R] [--paper]\n\
         --scale A        volumetric scale factor in (0,1]; overrides budgets\n\
         --paper          full paper-size instances (scale 1.0) — needs a big machine\n\
         --filter SUBSTR  only instances whose name contains SUBSTR\n\
         --threads LIST   comma-separated real thread counts to sweep\n\
         --sim-threads P  virtual processors for the simulated column (default 16)\n\
         --seed S         point-generation seed (default 42)\n\
         --reps R         best-of-R timing (default 1)"
    }

    /// Parse an iterator of arguments (testable entry point).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut opts = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
            match arg.as_str() {
                "--help" | "-h" => return Err("help".into()),
                "--scale" => {
                    let v: f64 = value("--scale")?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                    if !(v > 0.0 && v <= 1.0) {
                        return Err("--scale must be in (0, 1]".into());
                    }
                    opts.scale = Some(v);
                }
                "--paper" => opts.scale = Some(1.0),
                "--max-voxels" => {
                    opts.max_voxels = value("--max-voxels")?
                        .parse()
                        .map_err(|e| format!("bad --max-voxels: {e}"))?;
                }
                "--max-points" => {
                    opts.max_points = value("--max-points")?
                        .parse()
                        .map_err(|e| format!("bad --max-points: {e}"))?;
                }
                "--max-updates" => {
                    opts.max_updates = value("--max-updates")?
                        .parse()
                        .map_err(|e| format!("bad --max-updates: {e}"))?;
                }
                "--filter" => opts.filter = Some(value("--filter")?),
                "--threads" => {
                    opts.threads = value("--threads")?
                        .split(',')
                        .map(|t| t.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|e| format!("bad --threads: {e}"))?;
                    if opts.threads.is_empty() || opts.threads.contains(&0) {
                        return Err("--threads needs positive values".into());
                    }
                }
                "--sim-threads" => {
                    opts.sim_threads = value("--sim-threads")?
                        .parse()
                        .map_err(|e| format!("bad --sim-threads: {e}"))?;
                }
                "--seed" => {
                    opts.seed = value("--seed")?
                        .parse()
                        .map_err(|e| format!("bad --seed: {e}"))?;
                }
                "--reps" => {
                    opts.reps = value("--reps")?
                        .parse()
                        .map_err(|e| format!("bad --reps: {e}"))?;
                }
                other => return Err(format!("unknown argument: {other}")),
            }
        }
        Ok(opts)
    }

    /// The largest real thread count in the sweep.
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<HarnessOpts, String> {
        HarnessOpts::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn defaults_without_args() {
        let o = parse("").unwrap();
        assert_eq!(o.scale, None);
        assert!(o.threads.contains(&1));
        assert_eq!(o.sim_threads, 16);
    }

    #[test]
    fn parses_all_flags() {
        let o = parse("--scale 0.5 --filter Dengue --threads 1,2,4 --sim-threads 8 --seed 7 --reps 3 --max-voxels 1000 --max-points 50").unwrap();
        assert_eq!(o.scale, Some(0.5));
        assert_eq!(o.filter.as_deref(), Some("Dengue"));
        assert_eq!(o.threads, vec![1, 2, 4]);
        assert_eq!(o.sim_threads, 8);
        assert_eq!(o.seed, 7);
        assert_eq!(o.reps, 3);
        assert_eq!(o.max_voxels, 1000);
        assert_eq!(o.max_points, 50);
    }

    #[test]
    fn paper_flag_sets_full_scale() {
        assert_eq!(parse("--paper").unwrap().scale, Some(1.0));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse("--scale 2.0").is_err());
        assert!(parse("--scale").is_err());
        assert!(parse("--threads 0").is_err());
        assert!(parse("--bogus").is_err());
    }

    #[test]
    fn max_threads() {
        assert_eq!(parse("--threads 1,4,2").unwrap().max_threads(), 4);
    }
}
