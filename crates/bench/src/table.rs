//! Fixed-width table printing for the harness output.

/// A simple left-aligned-first-column, right-aligned-rest text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    /// Panics if the arity differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width[i] - c.chars().count();
                if i == 0 {
                    out.push_str(c);
                    out.push_str(&" ".repeat(pad));
                } else {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(c);
                }
            }
            out.push('\n');
        };
        fmt_row(&self.headers, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds like the paper's tables (3 decimal places, or `--` for
/// skipped entries).
pub fn secs(t: Option<f64>) -> String {
    match t {
        Some(t) => format!("{t:.3}"),
        None => "--".to_string(),
    }
}

/// Format a speedup with 2 decimals.
pub fn speedup(s: Option<f64>) -> String {
    match s {
        Some(s) => format!("{s:.2}"),
        None => "--".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["Instance", "Time"]);
        t.row(vec!["Dengue_Lr-Lb".into(), "0.123".into()]);
        t.row(vec!["X".into(), "12.000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Instance"));
        assert!(lines[2].starts_with("Dengue_Lr-Lb"));
        // Right-aligned numeric column: both rows end at the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Some(1.23456)), "1.235");
        assert_eq!(secs(None), "--");
        assert_eq!(speedup(Some(15.988)), "15.99");
    }
}
