//! Figure 13 — speedup of PB-SYM-PD-SCHED, per decomposition.
//!
//! Like Figure 11 but with the load-aware coloring and true DAG execution
//! (no phase barriers). The simulated column replays the plan's DAG on
//! `--sim-threads` virtual processors.

use stkde_bench::runner::DECOMP_SWEEP;
use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::parallel::pd_sched::{plan, Ordering};
use stkde_core::Algorithm;
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.max_threads();
    println!(
        "== Figure 13: PB-SYM-PD-SCHED speedup ({} real threads; sim-{} in parentheses) ==\n",
        threads, opts.sim_threads
    );

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &k in &DECOMP_SWEEP {
        headers.push(format!("{k}^3"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let mut row = vec![p.name()];
        for &k in &DECOMP_SWEEP {
            let decomp = Decomp::cubic(k);
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymPdSched { decomp }, threads)
                    .expect("PD-SCHED run")
            });
            // Simulated column: the plan's DAG with weights rescaled to
            // the measured serial compute time.
            let mut pd_plan = plan(&p.problem, &p.points, decomp, Ordering::LoadAware);
            let secs = sim::weights_to_seconds(&pd_plan.weights, seq.compute_secs());
            pd_plan.dag.set_weights(secs);
            let s_sim = sim::dag_speedup(
                seq.init_secs(),
                seq.compute_secs(),
                &pd_plan.dag,
                opts.sim_threads,
            );
            row.push(format!(
                "{} ({})",
                speedup(Some(seq.total / t)),
                speedup(Some(s_sim))
            ));
        }
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): clear improvement over the phased PD,");
    println!("especially on the clustered PollenUS instances; fine lattices can");
    println!("go superlinear on VHr-VLb thanks to binning locality.");
}
