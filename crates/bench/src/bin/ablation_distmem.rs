//! Ablation — distributed-memory STKDE (extension; the paper's conclusion
//! names distributed machines as future work).
//!
//! For each instance and rank count, runs both exchange strategies on the
//! in-process message-passing substrate, then prices the accounted traffic
//! with a postal model (10G Ethernet and InfiniBand presets) and combines
//! it with *work-modeled* per-rank compute (the rank's share of rasterized
//! points times the measured sequential PB-SYM compute rate — measuring
//! rank threads directly would be distorted by core oversubscription on a
//! small host).
//!
//! Expected shape: DIST-POINT ships 24 B/point and wins whenever point
//! replication stays low (large slabs or small `Ht`); DIST-HALO is
//! work-efficient but ships `Gx·Gy·Ht` voxels per boundary, so it loses on
//! fine decompositions of voxel-heavy grids and on slow networks —
//! mirroring the paper's DD-vs-DR trade-off in distributed form.

use stkde_bench::{prepare_instances, runner, HarnessOpts, Table};
use stkde_comm::{CommCost, ModeledRun};
use stkde_core::distmem::{self, DistStrategy};
use stkde_kernels::Epanechnikov;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let ranks_sweep = [2usize, 4, 8, 16];
    println!("== Ablation: distributed-memory STKDE (modeled speedup over PB-SYM) ==");
    println!("   (cells: 10GbE speedup | IB speedup | comm MB | repl factor)\n");

    for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
        println!("-- {strategy} --");
        let mut headers: Vec<String> = vec!["Instance".into()];
        for &r in &ranks_sweep {
            headers.push(format!("P={r}"));
        }
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&headers_ref);

        for p in &prepared {
            let seq = runner::measure_pb_sym(p);
            let n = p.points.len().max(1);
            let mut row = vec![p.name()];
            for &ranks in &ranks_sweep {
                if ranks > p.problem.domain.dims().gt {
                    row.push("n/a".into());
                    continue;
                }
                let r =
                    distmem::run::<f32, _>(&p.problem, &Epanechnikov, &p.points, ranks, strategy)
                        .expect("valid rank count");
                // Work-modeled compute: rank share of rasterized points
                // times the sequential compute rate.
                let compute: Vec<f64> = r
                    .processed
                    .iter()
                    .map(|&c| seq.compute_secs() * c as f64 / n as f64)
                    .collect();
                let eth = ModeledRun::price(compute.clone(), &r.stats, CommCost::ETHERNET_10G);
                let ib = ModeledRun::price(compute, &r.stats, CommCost::INFINIBAND);
                row.push(format!(
                    "{:.1}|{:.1}|{:.1}|{:.2}",
                    eth.speedup(seq.compute_secs()),
                    ib.speedup(seq.compute_secs()),
                    r.total_bytes() as f64 / 1e6,
                    r.replication_factor(n),
                ));
            }
            table.row(row);
        }
        table.print();
        println!();
    }
    println!("Expected shape: near-linear IB speedups while compute dominates;");
    println!("10GbE erodes DIST-HALO first (voxel-sized halos); DIST-POINT's");
    println!("replication factor grows as slabs shrink toward 2·Ht (cf. Fig. 9).");
}
