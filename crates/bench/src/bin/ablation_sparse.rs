//! Ablation — dense vs Morton-brick sparse grid backend (extension).
//!
//! Figure 7 shows initialization dominating the sparse instances; §6.3
//! shows that phase refuses to parallelize (≈3× on 16 threads). The
//! sparse backend (`stkde_core::sparse`) removes the `Θ(G)` term instead:
//! this harness runs dense `PB-SYM` and sparse `PB-SYM` on every catalog
//! instance and reports total/init time, the sparse brick occupancy, and
//! the memory footprints.
//!
//! Expected shape: the sparse backend wins exactly on the instances whose
//! Figure 7 bar is mostly Initialization (Flu, high-resolution PollenUS)
//! and loses slightly where compute dominates and occupancy approaches 1
//! (Dengue Hb, eBird) — the brick-table indirection is pure overhead once
//! every brick is allocated anyway.

use stkde_bench::{prepare_instances, runner, time_best, HarnessOpts, Table};
use stkde_core::sparse;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    println!("== Ablation: dense vs block-sparse grid backend (PB-SYM) ==\n");

    let mut table = Table::new(&[
        "Instance",
        "dense(s)",
        "d-init(s)",
        "sparse(s)",
        "s-init(s)",
        "speedup",
        "occup",
        "dense MB",
        "sparse MB",
    ]);

    for p in &prepared {
        let dense = runner::measure_pb_sym(p);
        let (sparse_t, grid) = time_best(opts.reps, || {
            sparse::run::<f32, _>(&p.problem, &stkde_kernels::Epanechnikov, &p.points)
        });
        let (grid, timings) = grid;
        table.row(vec![
            p.name(),
            format!("{:.3}", dense.total),
            format!("{:.3}", dense.init_secs()),
            format!("{sparse_t:.3}"),
            format!("{:.3}", timings.init.as_secs_f64()),
            format!("{:.2}", dense.total / sparse_t.max(1e-9)),
            format!("{:.3}", grid.occupancy()),
            format!("{:.1}", p.problem.domain.dims().bytes::<f32>() as f64 / 1e6),
            format!("{:.1}", grid.allocated_bytes() as f64 / 1e6),
        ]);
    }
    table.print();
    println!("\nExpected shape: speedup >> 1 and occupancy << 1 on init-dominated");
    println!("instances (Flu, PollenUS VHr); speedup <= 1 where occupancy ~ 1.");
}
