//! Figure 11 — speedup of the phased PB-SYM-PD, per decomposition.
//!
//! Decompositions below twice the bandwidth are adjusted (as the paper
//! notes under Figure 11). The simulated column models the eight parity-
//! class phases with barriers between them.

use stkde_bench::runner::DECOMP_SWEEP;
use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::{parallel::pd, Algorithm};
use stkde_data::binning;
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.max_threads();
    println!(
        "== Figure 11: PB-SYM-PD speedup ({} real threads; sim-{} in parentheses) ==",
        threads, opts.sim_threads
    );
    println!("   (decompositions adjusted to subdomains >= 2x bandwidth)\n");

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &k in &DECOMP_SWEEP {
        headers.push(format!("{k}^3"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let box_vol = p.problem.vbw.cylinder_box_volume() as f64;
        let mut row = vec![p.name()];
        for &k in &DECOMP_SWEEP {
            let decomp = Decomp::cubic(k);
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymPd { decomp }, threads).expect("PD run")
            });
            // Simulated phased execution: per-class task lists.
            let eff = pd::effective_decomposition(&p.problem, decomp);
            let bins = binning::bin_points(&p.problem.domain, &eff, &p.points);
            let mut class_weights: Vec<Vec<f64>> = vec![Vec::new(); 8];
            for id in eff.ids() {
                let w = bins.points_of(id).len() as f64 * box_vol;
                if w > 0.0 {
                    class_weights[eff.parity_class(id)].push(w);
                }
            }
            let total_w: f64 = class_weights.iter().flatten().sum();
            let classes: Vec<Vec<f64>> = class_weights
                .iter()
                .map(|c| {
                    sim::weights_to_seconds(
                        c,
                        seq.compute_secs() * c.iter().sum::<f64>() / total_w.max(1e-30),
                    )
                })
                .collect();
            let s_sim = sim::pd_phased_speedup(seq.init_secs(), &classes, opts.sim_threads);
            row.push(format!(
                "{} ({})",
                speedup(Some(seq.total / t)),
                speedup(Some(s_sim))
            ));
        }
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): modest speedups that improve with finer");
    println!("lattices but stay limited by phase barriers and load imbalance");
    println!("(paper's best on PollenUS_Lr-Lb was only 2.6 at 16 threads).");
}
