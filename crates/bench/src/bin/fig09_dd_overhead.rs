//! Figure 9 — single-thread overhead of PB-SYM-DD relative to PB-SYM.
//!
//! Runs DD with one thread for each cubic decomposition 1³ … 64³ and
//! reports the runtime normalized to PB-SYM, together with the point
//! replication factor (average subdomains per cylinder) that causes it.
//! Machine-independent in shape: overhead comes from recomputed invariants
//! on cut cylinders, partially offset by better cache locality.

use stkde_bench::runner::DECOMP_SWEEP;
use stkde_bench::{prepare_instances, runner, time_best, HarnessOpts, Table};
use stkde_core::{parallel::dd, Algorithm};
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    println!("== Figure 9: PB-SYM-DD single-thread runtime relative to PB-SYM ==");
    println!("   (cells: time ratio | replication factor)\n");

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &k in &DECOMP_SWEEP {
        headers.push(format!("{k}^3"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let mut row = vec![p.name()];
        for &k in &DECOMP_SWEEP {
            let decomp = Decomp::cubic(k);
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymDd { decomp }, 1)
                    .expect("DD cannot OOM")
            });
            let rep = dd::replication_factor(&p.problem, &p.points, decomp);
            row.push(format!("{:.2}|{:.2}", t / seq.total, rep));
        }
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): ratios near 1 (sometimes < 1 from cache");
    println!("locality) for coarse lattices, growing with over-decomposition —");
    println!("up to several x at 64^3 on high-bandwidth instances.");
}
