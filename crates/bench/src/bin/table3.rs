//! Table 3 — runtime of the sequential algorithms.
//!
//! Reproduces the paper's Table 3: `VB`, `VB-DEC`, `PB`, `PB-DISK`,
//! `PB-BAR`, `PB-SYM` runtimes per instance, plus the PB-SYM-over-PB
//! speedup column. Like the paper, entries whose estimated cost is
//! prohibitive are left blank (the paper omits VB/VB-DEC on the biggest
//! instances and gives no eBird_Hr-Hb point-based numbers either).

use stkde_bench::table::{secs, speedup};
use stkde_bench::{prepare_instances, runner, time_best, HarnessOpts, Table};
use stkde_core::Algorithm;

/// Skip thresholds in estimated elementary operations.
const VB_LIMIT: f64 = 5e9;
const VB_DEC_LIMIT: f64 = 2e10;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    println!("== Table 3: sequential algorithm runtimes (seconds; scale per instance below) ==\n");

    let mut t = Table::new(&[
        "Instance", "VB", "VB-DEC", "PB", "PB-DISK", "PB-BAR", "PB-SYM", "speedup",
    ]);
    for p in &prepared {
        let points = runner::pointset(p);
        let n = p.points.len() as f64;
        let vb_cost = p.problem.init_cost() * n;
        // VB-DEC examines ~3³ blocks of candidates per voxel.
        let vbdec_cost =
            p.problem.init_cost() + p.problem.compute_cost() * 3.0 + p.problem.init_cost().max(1.0);

        let run = |alg: Algorithm, limit: f64, cost: f64| -> Option<f64> {
            if cost > limit {
                return None;
            }
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, alg, 1).expect("sequential run")
            });
            Some(t)
        };

        let vb = run(Algorithm::Vb, VB_LIMIT, vb_cost);
        let vbdec = run(Algorithm::VbDec, VB_DEC_LIMIT, vbdec_cost);
        let pb = run(Algorithm::Pb, f64::INFINITY, 0.0);
        let pbdisk = run(Algorithm::PbDisk, f64::INFINITY, 0.0);
        let pbbar = run(Algorithm::PbBar, f64::INFINITY, 0.0);
        let pbsym = run(Algorithm::PbSym, f64::INFINITY, 0.0);
        let sp = match (pb, pbsym) {
            (Some(a), Some(b)) if b > 0.0 => Some(a / b),
            _ => None,
        };
        t.row(vec![
            p.name(),
            secs(vb),
            secs(vbdec),
            secs(pb),
            secs(pbdisk),
            secs(pbbar),
            secs(pbsym),
            speedup(sp),
        ]);
    }
    t.print();
    println!("\n'--' = skipped (estimated cost exceeds the harness limit), as in the paper.");
    println!("Expected shape: VB >> VB-DEC >> PB > PB-DISK/PB-BAR > PB-SYM;");
    println!("speedup grows with bandwidth (paper: up to 6.97 on PollenUS_Hr-Hb).");
}
