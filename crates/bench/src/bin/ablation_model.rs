//! Ablation — does the parametric model pick the right algorithm?
//!
//! The paper's conclusion (§6.5) calls for "a parametric model for the
//! problem that will take into account memory availability, cost of
//! memory initialization, expected cost of computing the kernel density"
//! so the best strategy can be chosen per instance. `stkde_core::model`
//! implements that model and `Algorithm::Auto` uses it; this harness
//! scores it: for every instance it measures each parallel strategy,
//! finds the empirical winner, and reports the *regret* of the model's
//! pick (its time over the winner's — 1.00 means the model chose the
//! actual best).

use stkde_bench::{prepare_instances, runner, time_best, HarnessOpts, Table};
use stkde_core::{model, Algorithm};
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.threads.last().copied().unwrap_or(2);
    let decomp = Decomp::cubic(8);
    println!("== Ablation: parametric-model algorithm selection (threads = {threads}) ==\n");

    let candidates = [
        Algorithm::PbSym,
        Algorithm::PbSymDr,
        Algorithm::PbSymDd { decomp },
        Algorithm::PbSymPdSched { decomp },
        Algorithm::PbSymPdSchedRep { decomp },
    ];
    let mut table = Table::new(&["Instance", "model pick", "measured best", "regret", "hit"]);
    let mut hits = 0usize;
    let mut total_regret = 0.0f64;

    for p in &prepared {
        let points = runner::pointset(p);
        let picked = model::select(&p.problem, threads, usize::MAX);

        let mut measured: Vec<(Algorithm, f64)> = Vec::new();
        for alg in candidates {
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, alg, threads).expect("no memory cap in this sweep")
            });
            measured.push((alg, t));
        }
        let &(best_alg, best_t) = measured
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("non-empty candidate set");
        // The model may pick decompositions the sweep did not; score its
        // *family* by the closest measured candidate of the same name.
        let picked_t = measured
            .iter()
            .find(|(a, _)| a.name() == picked.name())
            .map(|&(_, t)| t)
            .unwrap_or(best_t);
        let regret = picked_t / best_t.max(1e-12);
        let hit = picked.name() == best_alg.name();
        hits += hit as usize;
        total_regret += regret;
        table.row(vec![
            p.name(),
            picked.name().to_string(),
            best_alg.name().to_string(),
            format!("{regret:.2}"),
            if hit { "*".into() } else { "".into() },
        ]);
    }
    table.print();
    println!(
        "\nmodel accuracy: {hits}/{} exact picks, mean regret {:.2}",
        prepared.len(),
        total_regret / prepared.len().max(1) as f64
    );
    println!("Expected shape: regret near 1.0 throughout — mispicks are cheap");
    println!("when strategies tie (Figure 15 shows several near-ties per instance).");
}
