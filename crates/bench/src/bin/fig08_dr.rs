//! Figure 8 — speedup of PB-SYM-DR per thread count.
//!
//! Measured speedups for the real thread sweep, the paper's OOM behaviour
//! under the machine memory budget, and a simulated 16-processor column
//! built from the measured phase breakdown (see `stkde_bench::sim`).

use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::{Algorithm, StkdeError};

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    println!("== Figure 8: PB-SYM-DR speedup by thread count ==\n");

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &t in &opts.threads {
        headers.push(format!("t={t}"));
    }
    headers.push(format!("sim-{}", opts.sim_threads));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let mut row = vec![p.name()];
        for &threads in &opts.threads {
            let cell = {
                let (t, outcome) = time_best(opts.reps, || {
                    runner::measure(p, &points, Algorithm::PbSymDr, threads)
                });
                match outcome {
                    Ok(_) => speedup(Some(seq.total / t)),
                    Err(StkdeError::MemoryLimit { .. }) => "OOM".to_string(),
                    Err(e) => format!("err:{e}"),
                }
            };
            row.push(cell);
        }
        row.push(speedup(Some(sim::dr_speedup(
            &seq.timings,
            opts.sim_threads,
        ))));
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): speedup > 1 only where compute dominates");
    println!("(PollenUS, low-res eBird); init-bound instances (Flu) get < 1; the");
    println!("biggest sparse grids OOM when replicas exceed available memory.");
}
