//! Table 2 — properties of the datasets/instances.
//!
//! Prints the paper's instance catalog (n, grid dimensions, memory size,
//! voxel bandwidths), plus the scaled version the other harnesses run
//! under the current options.

use stkde_bench::{prepare_instances, HarnessOpts, Table};
use stkde_data::full_catalog;

fn main() {
    let opts = HarnessOpts::from_args();

    println!("== Table 2: properties of the datasets (paper-size) ==\n");
    let mut t = Table::new(&["Instance", "n", "Gx x Gy x Gt", "Size(MiB)", "Hs", "Ht"]);
    for inst in full_catalog() {
        if opts
            .filter
            .as_deref()
            .is_some_and(|f| !inst.name().contains(f))
        {
            continue;
        }
        t.row(vec![
            inst.name(),
            inst.params.n.to_string(),
            inst.params.dims.to_string(),
            format!("{:.0}", inst.grid_mib()),
            inst.params.hs.to_string(),
            inst.params.ht.to_string(),
        ]);
    }
    t.print();

    println!("\n== Scaled instances used by this harness run ==\n");
    let mut t = Table::new(&["Instance", "scale", "n'", "G'", "Size'(MiB)", "updates(G)"]);
    for p in prepare_instances(&opts) {
        t.row(vec![
            p.name(),
            format!("{:.4}", p.instance.scale),
            p.points.len().to_string(),
            p.instance.params.dims.to_string(),
            format!("{:.1}", p.instance.grid_mib()),
            format!("{:.2}", p.instance.compute_cost() / 1e9),
        ]);
    }
    t.print();
}
