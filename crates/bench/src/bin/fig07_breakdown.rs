//! Figure 7 — breakdown of the PB-SYM runtime into initialization and
//! compute.
//!
//! The paper's stacked bars show that sparse instances (all of Flu) are
//! dominated by memory initialization while compute-heavy instances
//! (PollenUS, eBird) are dominated by kernel work — the single fact that
//! decides which parallel strategy wins later.

use stkde_bench::{prepare_instances, runner, HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::from_args();
    println!("== Figure 7: PB-SYM runtime breakdown (fractions of total) ==\n");
    let mut t = Table::new(&["Instance", "init(s)", "compute(s)", "init%", "bar"]);
    for p in prepare_instances(&opts) {
        let r = runner::measure_pb_sym(&p);
        let init = r.init_secs();
        let compute = r.compute_secs();
        let frac = init / (init + compute).max(1e-12);
        let bar_len = (frac * 40.0).round() as usize;
        t.row(vec![
            p.name(),
            format!("{init:.3}"),
            format!("{compute:.3}"),
            format!("{:.1}", 100.0 * frac),
            format!("{}{}", "I".repeat(bar_len), "c".repeat(40 - bar_len)),
        ]);
    }
    t.print();
    println!("\nExpected shape: Flu instances mostly 'I' (initialization-bound);");
    println!("PollenUS Hb / eBird instances mostly 'c' (compute-bound), as in the paper.");
}
