//! Figure 12 — relative critical-path length of PB-SYM-PD vs
//! PB-SYM-PD-SCHED at the 64³ (adjusted) decomposition.
//!
//! Machine-independent: the critical path `T∞/T₁` of the coloring-oriented
//! task DAG bounds any greedy schedule's speedup by Graham's theorem. The
//! `PD` column uses the structural (lexicographic ≡ parity) coloring; the
//! `SCHED` column colors subdomains in non-increasing load order.

use stkde_bench::{prepare_instances, HarnessOpts, Table};
use stkde_core::parallel::pd_sched::{plan, Ordering};
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    println!("== Figure 12: relative critical path (T_inf / T_1), 64^3 adjusted lattice ==\n");

    let mut table = Table::new(&[
        "Instance",
        "lattice",
        "PD",
        "PD-SCHED",
        "max speedup (PD)",
        "max speedup (SCHED)",
    ]);
    for p in &prepared {
        let decomp = Decomp::cubic(64);
        let lex = plan(&p.problem, &p.points, decomp, Ordering::Lexicographic);
        let sched = plan(&p.problem, &p.points, decomp, Ordering::LoadAware);
        let t1 = lex.dag.total_work();
        let cp_lex = lex.critical_path().relative(t1);
        let cp_sched = sched.critical_path().relative(sched.dag.total_work());
        table.row(vec![
            p.name(),
            lex.decomposition.decomp().to_string(),
            format!("{cp_lex:.3}"),
            format!("{cp_sched:.3}"),
            format!("{:.2}", 1.0 / cp_lex.max(1e-12)),
            format!("{:.2}", 1.0 / cp_sched.max(1e-12)),
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): most instances near 0.1 (bounding speedup");
    println!("by ~6–10); clustered instances like PollenUS_Hr-Hb much higher");
    println!("(paper: 0.55 ⇒ speedup < 1.8); SCHED marginally lower than PD in");
    println!("all but one case.");
}
