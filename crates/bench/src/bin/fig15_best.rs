//! Figure 15 — best configuration of each parallel algorithm.
//!
//! For every instance, sweep each algorithm's decompositions, keep the
//! best measured speedup, and report them side by side (the paper's
//! summary bar chart), plus the best simulated `--sim-threads` speedup.

use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::parallel::{pd_rep, pd_sched};
use stkde_core::{Algorithm, StkdeError};
use stkde_grid::Decomp;

/// The lattice candidates swept per algorithm (a subset of the paper's
/// full 1³…64³ sweep keeps this summary binary affordable).
const KS: [usize; 4] = [4, 8, 16, 32];

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.max_threads();
    println!(
        "== Figure 15: best configuration per algorithm ({} real threads; sim-{} in parentheses) ==\n",
        threads, opts.sim_threads
    );

    let mut table = Table::new(&[
        "Instance",
        "DR",
        "DD",
        "PD",
        "PD-SCHED",
        "PD-SCHED-REP",
        "winner",
    ]);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);

        let best_of = |make: &dyn Fn(Decomp) -> Algorithm| -> Option<f64> {
            KS.iter()
                .filter_map(|&k| {
                    let (t, outcome) = time_best(opts.reps, || {
                        runner::measure(p, &points, make(Decomp::cubic(k)), threads)
                    });
                    match outcome {
                        Ok(_) => Some(seq.total / t),
                        Err(StkdeError::MemoryLimit { .. }) => None,
                        Err(_) => None,
                    }
                })
                .fold(None, |acc: Option<f64>, s| {
                    Some(acc.map_or(s, |a| a.max(s)))
                })
        };

        let dr = {
            let (t, outcome) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymDr, threads)
            });
            match outcome {
                Ok(_) => Some(seq.total / t),
                Err(_) => None,
            }
        };
        let dd = best_of(&|d| Algorithm::PbSymDd { decomp: d });
        let pd = best_of(&|d| Algorithm::PbSymPd { decomp: d });
        let pd_sched_best = best_of(&|d| Algorithm::PbSymPdSched { decomp: d });
        let pd_rep_best = best_of(&|d| Algorithm::PbSymPdSchedRep { decomp: d });

        // Best simulated speedup for the DAG-scheduled family (summary of
        // what a 16-core host would see).
        let sim_best = KS
            .iter()
            .map(|&k| {
                let rp = pd_rep::plan(
                    &p.problem,
                    &p.points,
                    Decomp::cubic(k),
                    opts.sim_threads,
                    pd_sched::Ordering::LoadAware,
                );
                let scale = seq.compute_secs() / rp.base.dag.total_work().max(1e-30);
                let mut dag = rp.expanded.dag.clone();
                let secs: Vec<f64> = dag.weights().iter().map(|w| w * scale).collect();
                dag.set_weights(secs);
                sim::dag_speedup(seq.init_secs(), seq.compute_secs(), &dag, opts.sim_threads)
            })
            .fold(0.0f64, f64::max);

        let named = [
            ("DR", dr),
            ("DD", dd),
            ("PD", pd),
            ("PD-SCHED", pd_sched_best),
            ("PD-SCHED-REP", pd_rep_best),
        ];
        let winner = named
            .iter()
            .filter_map(|&(n, s)| s.map(|s| (n, s)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .map(|(n, s)| format!("{n} ({s:.2}x)"))
            .unwrap_or_else(|| "--".into());

        table.row(vec![
            p.name(),
            dr.map_or("OOM".into(), |s| speedup(Some(s))),
            speedup(dd),
            speedup(pd),
            speedup(pd_sched_best),
            format!("{} ({})", speedup(pd_rep_best), speedup(Some(sim_best))),
            winner,
        ]);
    }
    table.print();
    println!("\nExpected shape (paper): DD wins on Dengue (low overhead, balanced);");
    println!("PD-SCHED-REP is needed on the clustered PollenUS instances; Flu is");
    println!("init-bound so all methods cluster near the memory-init ceiling; DR");
    println!("competitive only on compute-dense eBird at low resolution.");
}
