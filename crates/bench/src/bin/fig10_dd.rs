//! Figure 10 — speedup of PB-SYM-DD with all threads, per decomposition.
//!
//! For each cubic lattice: measured speedup at the largest real thread
//! count, plus the simulated `--sim-threads` column (LPT list scheduling
//! of the per-subdomain work on P virtual machines + memory-ceiling init,
//! calibrated from the measured sequential run).

use stkde_bench::runner::DECOMP_SWEEP;
use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::{parallel::dd, Algorithm};
use stkde_data::binning;
use stkde_grid::{Decomp, Decomposition};

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.max_threads();
    println!(
        "== Figure 10: PB-SYM-DD speedup ({} real threads; sim-{} in parentheses) ==\n",
        threads, opts.sim_threads
    );

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &k in &DECOMP_SWEEP {
        headers.push(format!("{k}^3"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let mut row = vec![p.name()];
        for &k in &DECOMP_SWEEP {
            let decomp = Decomp::cubic(k);
            let (t, _) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymDd { decomp }, threads).expect("DD run")
            });
            // Simulated P-processor column: per-subdomain task weights
            // from the replicated binning, scaled to the measured serial
            // compute inflated by the replication overhead.
            let decomposition = Decomposition::new(p.problem.domain.dims(), decomp);
            let bins = binning::bin_points_replicated(
                &p.problem.domain,
                &decomposition,
                &p.points,
                p.problem.vbw,
            );
            let weights: Vec<f64> = bins.counts().iter().map(|&c| c as f64).collect();
            let rep = dd::replication_factor(&p.problem, &p.points, decomp);
            let tasks = sim::weights_to_seconds(&weights, seq.compute_secs() * rep);
            // Reference: the phase-timed sequential PB-SYM (init + compute),
            // consistent with the simulated denominator's phase model.
            let ref_secs = seq.init_secs() + seq.compute_secs();
            let s_sim = sim::dd_speedup(seq.init_secs(), ref_secs, &tasks, opts.sim_threads);
            row.push(format!(
                "{} ({})",
                speedup(Some(seq.total / t)),
                speedup(Some(s_sim))
            ));
        }
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): best speedups at intermediate lattices —");
    println!("fine enough for load balance, coarse enough to avoid replication");
    println!("overhead; init-bound instances cap at the memory-init scaling (~3).");
}
