//! CI bench regression guard.
//!
//! Usage: `bench_guard <current.jsonl> <baseline.jsonl> [max_ratio]`
//!
//! Both files hold one JSON object per line, as emitted by the criterion
//! shim under `STKDE_BENCH_JSON`: `{"id":"group/name","best_s":1.2e-3}`.
//! For every benchmark id present in *both* files the guard computes
//!
//! ```text
//! ratio = (current / current_calib) / (baseline / baseline_calib)
//! ```
//!
//! where `*_calib` is the fixed single-thread arithmetic burn recorded as
//! `work_stealing_t8/calib` — normalizing by it makes the committed
//! baseline portable across machines of different *single-thread* speed.
//! If calibration is missing on either side the raw time ratio is used.
//! Any benchmark slower than `max_ratio` (default 2.0) fails the run with
//! exit code 1.
//!
//! Calibration cannot correct for a different *core count* (the baseline
//! is recorded wherever it was recorded; multithreaded benches scale with
//! cores while the calib burn does not), so cross-run ratios can under-
//! flag a scheduling regression on beefier CI hosts. The scheduler is
//! therefore additionally guarded by an in-run invariant that is
//! machine-independent: the work-stealing execution of the parity-class
//! workload must not be slower than the static-split baseline measured in
//! the *same* process. If stealing loses to static splitting, scheduling
//! has regressed, whatever the host.
//!
//! Ids only present on one side are reported but never fail the run, so
//! adding or retiring benchmarks does not require touching the baseline
//! in the same change.

use std::collections::BTreeMap;
use std::process::ExitCode;

const CALIB_ID: &str = "work_stealing_t8/calib";
const STEAL_ID: &str = "work_stealing_t8/parity_classes_steal";
const STATIC_ID: &str = "work_stealing_t8/parity_classes_static_split";
const SCATTER_ENGINE_ID: &str = "scatter/sym_f32_epanechnikov_engine";
const SCATTER_NAIVE_ID: &str = "scatter/sym_f32_epanechnikov_naive";
const DEFAULT_MAX_RATIO: f64 = 2.0;

/// Extract `"key":<string>` and `"key":<number>` from one flat JSON line.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let id_key = "\"id\":\"";
    let start = line.find(id_key)? + id_key.len();
    let end = start + line[start..].find('"')?;
    let id = line[start..end].to_string();

    let best_key = "\"best_s\":";
    let vstart = line.find(best_key)? + best_key.len();
    let rest = &line[vstart..];
    let vend = rest.find([',', '}']).unwrap_or(rest.len());
    let best_s = rest[..vend].trim().parse::<f64>().ok()?;
    (best_s.is_finite() && best_s > 0.0).then_some((id, best_s))
}

/// Last-write-wins map of benchmark id -> best seconds.
fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some((id, s)) => {
                map.insert(id, s);
            }
            None => return Err(format!("{path}: unparsable bench record: {line}")),
        }
    }
    if map.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(map)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, baseline_path) = match args.as_slice() {
        [c, b] | [c, b, _] => (c.as_str(), b.as_str()),
        _ => {
            eprintln!("usage: bench_guard <current.jsonl> <baseline.jsonl> [max_ratio]");
            return ExitCode::from(2);
        }
    };
    let max_ratio = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_RATIO);

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_guard: {err}");
            }
            return ExitCode::from(2);
        }
    };

    // Machine-speed normalization via the fixed arithmetic burn.
    let speed = match (current.get(CALIB_ID), baseline.get(CALIB_ID)) {
        (Some(&c), Some(&b)) => {
            println!("calibration {CALIB_ID}: current {c:.3e}s, baseline {b:.3e}s");
            c / b
        }
        _ => {
            println!("calibration {CALIB_ID} missing on one side; using raw ratios");
            1.0
        }
    };

    let mut failures = Vec::new();
    println!(
        "{:<45} {:>12} {:>12} {:>8}",
        "benchmark", "current", "baseline", "ratio"
    );
    for (id, &cur) in &current {
        if id == CALIB_ID {
            continue;
        }
        let Some(&base) = baseline.get(id) else {
            println!("{id:<45} {cur:>12.3e} {:>12} {:>8}", "(new)", "-");
            continue;
        };
        let ratio = (cur / base) / speed;
        let flag = if ratio > max_ratio { " REGRESSION" } else { "" };
        println!("{id:<45} {cur:>12.3e} {base:>12.3e} {ratio:>8.2}{flag}");
        if ratio > max_ratio {
            failures.push((id.clone(), ratio));
        }
    }
    for id in baseline.keys() {
        if id != CALIB_ID && !current.contains_key(id) {
            println!("{id:<45} {:>12} (baseline only)", "-");
        }
    }

    // In-run scheduler invariant (core-count independent, see module docs):
    // work stealing must beat the spawn-per-phase static split it replaced.
    if let (Some(&steal), Some(&stat)) = (current.get(STEAL_ID), current.get(STATIC_ID)) {
        let ratio = steal / stat;
        println!("scheduler invariant: steal/static = {ratio:.2} (must be < 1.0)");
        if ratio >= 1.0 {
            failures.push(("steal/static in-run invariant".to_string(), ratio));
        }
    }

    // In-run scatter-engine invariant (same machine-independence argument):
    // the vectorized, span-clipped f32 PB-SYM scatter must beat the
    // pre-engine loop reproduced alongside it in the same process.
    if let (Some(&engine), Some(&naive)) = (
        current.get(SCATTER_ENGINE_ID),
        current.get(SCATTER_NAIVE_ID),
    ) {
        let ratio = engine / naive;
        println!("scatter invariant: engine/naive = {ratio:.2} (must be < 1.0)");
        if ratio >= 1.0 {
            failures.push(("scatter engine/naive in-run invariant".to_string(), ratio));
        }
    }

    if failures.is_empty() {
        println!("bench_guard: OK (threshold {max_ratio}x, speed factor {speed:.2})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_guard: {} benchmark(s) regressed beyond {max_ratio}x:",
            failures.len()
        );
        for (id, ratio) in &failures {
            eprintln!("  {id}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}
