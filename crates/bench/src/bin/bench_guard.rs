//! CI bench regression guard.
//!
//! Usage: `bench_guard [--only PREFIX] <current.jsonl> <baseline.jsonl> [max_ratio]`
//!
//! Both files hold one JSON object per line, as emitted by the criterion
//! shim under `STKDE_BENCH_JSON`: `{"id":"group/name","best_s":1.2e-3}`.
//! For every benchmark id present in *both* files the guard computes
//!
//! ```text
//! ratio = (current / current_calib) / (baseline / baseline_calib)
//! ```
//!
//! where `*_calib` is the fixed single-thread arithmetic burn recorded as
//! `work_stealing_t8/calib` — normalizing by it makes the committed
//! baseline portable across machines of different *single-thread* speed.
//! If calibration is missing on either side the raw time ratio is used.
//! Any benchmark slower than `max_ratio` (default 2.0) fails the run with
//! exit code 1.
//!
//! Calibration cannot correct for a different *core count* (the baseline
//! is recorded wherever it was recorded; multithreaded benches scale with
//! cores while the calib burn does not), so cross-run ratios can under-
//! flag a scheduling regression on beefier CI hosts. The scheduler is
//! therefore additionally guarded by an in-run invariant that is
//! machine-independent: the work-stealing execution of the parity-class
//! workload must not be slower than the static-split baseline measured in
//! the *same* process. If stealing loses to static splitting, scheduling
//! has regressed, whatever the host. The sharded serve path is guarded
//! the same way, with four in-run invariants over the saturation bench's
//! records: under 8 saturating readers, (1) readers must slow sharded
//! ingest by a smaller factor than they slow the single-lock arrangement
//! it replaced, (2) sharded ingest must outright beat single-lock
//! ingest, (3) the sharded writer's lock-stall must stay well below the
//! single-lock writer's — snapshot readers exclude the writer only for
//! an `Arc` swap, never for a full read fold — and (4) the snapshot-read
//! p99 must stay under an absolute compute-bound budget.
//!
//! Ids only present on one side are reported but never fail the run, so
//! adding or retiring benchmarks does not require touching the baseline
//! in the same change.
//!
//! `--only PREFIX` restricts the comparison (and the in-run invariants)
//! to ids starting with `PREFIX`. CI's observability-overhead gate uses
//! this to compare a scatter-only obs-enabled run against the obs-off
//! run from the same job at a tight threshold, without demanding that
//! the obs run re-execute every other bench. Calibration still comes
//! from `work_stealing_t8/calib` when both sides carry it.
//!
//! `--geomean` changes the pass criterion from per-benchmark to the
//! *geometric mean* ratio over the compared set. Per-id wall-clock on
//! this container jitters by several percent run to run, so a 1%
//! per-id gate would flake on noise; a systematic overhead (which is
//! what instrumentation adds) moves every id together and survives in
//! the geomean, while idiosyncratic jitter averages out. The overhead
//! gates use `--geomean`; the 2x regression guard stays per-id.

use std::collections::BTreeMap;
use std::process::ExitCode;

const CALIB_ID: &str = "work_stealing_t8/calib";
const STEAL_ID: &str = "work_stealing_t8/parity_classes_steal";
const STATIC_ID: &str = "work_stealing_t8/parity_classes_static_split";
const SCATTER_ENGINE_ID: &str = "scatter/sym_f32_epanechnikov_engine";
const SCATTER_NAIVE_ID: &str = "scatter/sym_f32_epanechnikov_naive";
const SAT_SINGLE_NOREADERS_ID: &str = "saturation/singlelock_ingest_noreaders";
const SAT_SINGLE_READERS_ID: &str = "saturation/singlelock_ingest_readers8";
const SAT_SHARDED_NOREADERS_ID: &str = "saturation/sharded_ingest_noreaders";
const SAT_SHARDED_READERS_ID: &str = "saturation/sharded_ingest_readers8";
const SAT_SINGLE_STALL_ID: &str = "saturation/singlelock_stall_readers8";
const SAT_SHARDED_STALL_ID: &str = "saturation/sharded_stall_readers8";
const SAT_SHARDED_P99_ID: &str = "saturation/sharded_read_p99_readers8";
const APPROX_EXACT_ID: &str = "approx/region_exact_full";
const APPROX_COARSE_ID: &str = "approx/region_approx_coarsest";
const APPROX_VIOLATIONS_ID: &str = "approx/bound_violations";
const SPARSE_SEQ_ID: &str = "sparse/flu_scatter_seq";
const SPARSE_PAR_ID: &str = "sparse/flu_scatter_par_t8";
const SPARSE_ASSEMBLE_MORTON_ID: &str = "sparse/read_assemble_morton";
const SPARSE_ASSEMBLE_FLAT_ID: &str = "sparse/read_assemble_flatblock";
const SPARSE_VOXELS_MORTON_ID: &str = "sparse/read_voxels_morton";
const SPARSE_VOXELS_FLAT_ID: &str = "sparse/read_voxels_flatblock";
/// The shared-grid parallel sparse scatter at 8 threads must not lose to
/// the sequential path it wraps. On a 1-core host the adaptive slab
/// count collapses to one slab, so the parallel path is the sequential
/// loop plus pool setup and dispatch — the slack is that noise floor,
/// not a performance budget; on real multicore hosts the ratio is well
/// below 1.
const SPARSE_PAR_SLACK: f64 = 1.10;
/// Assembling a fully-dense volume out of the Morton-brick table must be
/// no worse than out of the retired row-major flat block table (same
/// payloads, layout-only difference; both walk bricks and copy rows —
/// this is the path the engine reads results through). Measured ratio
/// is ~1.05 on a 1-vCPU host; the slack covers the ±10% per-run jitter
/// such hosts show, not a real deficit.
const SPARSE_READ_SLACK: f64 = 1.15;
/// Per-voxel `get` sweeps pay the Morton bit-interleave on every call,
/// which a row-major table-index never does, so the voxel sweep is held
/// to a loose sanity bound (catches pathological regressions such as a
/// re-introduced formatted assert or an un-hoistable atomic load), not
/// to parity.
const SPARSE_VOXELS_SLACK: f64 = 1.60;
/// Under 8 saturating readers, the sharded writer's lock-stall must stay
/// well below the single-lock writer's — readers only exclude it for an
/// `Arc` clone, never for a full read fold. In practice the ratio is
/// orders of magnitude below this.
const SAT_STALL_SLACK: f64 = 0.5;
/// Absolute bound on the reader-side p99 with snapshot reads: a snapshot
/// fold never waits on the writer, so its tail is compute-bound.
const SAT_P99_BOUND_S: f64 = 0.25;
/// The coarsest-level full-grid region must beat the exact fold by at
/// least this factor: the pyramid exists to make wide queries cheap, and
/// the coarsest walk touches a few hundred cells where the exact fold
/// touches the full 64x64x32 volume. Measured headroom is far larger;
/// 8x is the floor below which the fast path has stopped being one.
const APPROX_SPEEDUP_MIN: f64 = 8.0;
/// `approx/bound_violations` records the number of random queries whose
/// answer escaped its certified bound, offset by 1e-9 to satisfy the
/// positive-time parser. Any value >= 1 means a real violation — the
/// bound is a proof obligation, not a quality target, so the budget is
/// exactly zero.
const APPROX_VIOLATIONS_BOUND: f64 = 1.0;
const DEFAULT_MAX_RATIO: f64 = 2.0;

/// Extract `"key":<string>` and `"key":<number>` from one flat JSON line.
fn parse_line(line: &str) -> Option<(String, f64)> {
    let id_key = "\"id\":\"";
    let start = line.find(id_key)? + id_key.len();
    let end = start + line[start..].find('"')?;
    let id = line[start..end].to_string();

    let best_key = "\"best_s\":";
    let vstart = line.find(best_key)? + best_key.len();
    let rest = &line[vstart..];
    let vend = rest.find([',', '}']).unwrap_or(rest.len());
    let best_s = rest[..vend].trim().parse::<f64>().ok()?;
    (best_s.is_finite() && best_s > 0.0).then_some((id, best_s))
}

/// Map of benchmark id -> best seconds. Duplicate ids keep the *minimum*:
/// `best_s` is already a best-of-batches floor, so appending repeated runs
/// to one file (as CI's overhead gates do) tightens the estimate instead
/// of overwriting it.
fn load(path: &str) -> Result<BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut map: BTreeMap<String, f64> = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Some((id, s)) => {
                map.entry(id)
                    .and_modify(|cur| *cur = cur.min(s))
                    .or_insert(s);
            }
            None => return Err(format!("{path}: unparsable bench record: {line}")),
        }
    }
    if map.is_empty() {
        return Err(format!("{path}: no benchmark records"));
    }
    Ok(map)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut only: Option<String> = None;
    let mut geomean = false;
    let mut args = Vec::new();
    let mut it = raw.into_iter();
    while let Some(a) = it.next() {
        if a == "--only" {
            match it.next() {
                Some(p) => only = Some(p),
                None => {
                    eprintln!("bench_guard: --only needs a PREFIX");
                    return ExitCode::from(2);
                }
            }
        } else if a == "--geomean" {
            geomean = true;
        } else {
            args.push(a);
        }
    }
    let (current_path, baseline_path) = match args.as_slice() {
        [c, b] | [c, b, _] => (c.as_str(), b.as_str()),
        _ => {
            eprintln!(
                "usage: bench_guard [--only PREFIX] [--geomean] \
                 <current.jsonl> <baseline.jsonl> [max_ratio]"
            );
            return ExitCode::from(2);
        }
    };
    let max_ratio = args
        .get(2)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_MAX_RATIO);
    let selected = |id: &str| only.as_deref().is_none_or(|p| id.starts_with(p));

    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (c, b) => {
            for err in [c.err(), b.err()].into_iter().flatten() {
                eprintln!("bench_guard: {err}");
            }
            return ExitCode::from(2);
        }
    };

    // Machine-speed normalization via the fixed arithmetic burn.
    let speed = match (current.get(CALIB_ID), baseline.get(CALIB_ID)) {
        (Some(&c), Some(&b)) => {
            println!("calibration {CALIB_ID}: current {c:.3e}s, baseline {b:.3e}s");
            c / b
        }
        _ => {
            println!("calibration {CALIB_ID} missing on one side; using raw ratios");
            1.0
        }
    };

    let mut failures = Vec::new();
    let mut log_ratio_sum = 0.0;
    let mut compared = 0usize;
    println!(
        "{:<45} {:>12} {:>12} {:>8}",
        "benchmark", "current", "baseline", "ratio"
    );
    for (id, &cur) in &current {
        if id == CALIB_ID || !selected(id) {
            continue;
        }
        let Some(&base) = baseline.get(id) else {
            println!("{id:<45} {cur:>12.3e} {:>12} {:>8}", "(new)", "-");
            continue;
        };
        let ratio = (cur / base) / speed;
        log_ratio_sum += ratio.ln();
        compared += 1;
        let per_id_fail = !geomean && ratio > max_ratio;
        let flag = if per_id_fail { " REGRESSION" } else { "" };
        println!("{id:<45} {cur:>12.3e} {base:>12.3e} {ratio:>8.2}{flag}");
        if per_id_fail {
            failures.push((id.clone(), ratio));
        }
    }
    if geomean {
        if compared == 0 {
            eprintln!("bench_guard: --geomean with no common benchmarks to compare");
            return ExitCode::from(2);
        }
        let gm = (log_ratio_sum / compared as f64).exp();
        println!("geometric mean over {compared} benchmark(s): {gm:.4} (limit {max_ratio})");
        if gm > max_ratio {
            failures.push((format!("geomean over {compared} benchmarks"), gm));
        }
    }
    for id in baseline.keys() {
        if id != CALIB_ID && selected(id) && !current.contains_key(id) {
            println!("{id:<45} {:>12} (baseline only)", "-");
        }
    }

    // In-run scheduler invariant (core-count independent, see module docs):
    // work stealing must beat the spawn-per-phase static split it replaced.
    if selected(STEAL_ID) {
        if let (Some(&steal), Some(&stat)) = (current.get(STEAL_ID), current.get(STATIC_ID)) {
            let ratio = steal / stat;
            println!("scheduler invariant: steal/static = {ratio:.2} (must be < 1.0)");
            if ratio >= 1.0 {
                failures.push(("steal/static in-run invariant".to_string(), ratio));
            }
        }
    }

    // In-run scatter-engine invariant (same machine-independence argument):
    // the vectorized, span-clipped f32 PB-SYM scatter must beat the
    // pre-engine loop reproduced alongside it in the same process.
    if selected(SCATTER_ENGINE_ID) {
        if let (Some(&engine), Some(&naive)) = (
            current.get(SCATTER_ENGINE_ID),
            current.get(SCATTER_NAIVE_ID),
        ) {
            let ratio = engine / naive;
            println!("scatter invariant: engine/naive = {ratio:.2} (must be < 1.0)");
            if ratio >= 1.0 {
                failures.push(("scatter engine/naive in-run invariant".to_string(), ratio));
            }
        }
    }

    // In-run saturation invariants (machine-independent for the same
    // reason as the scheduler one: both sides come from the same process
    // on the same host). The sharded serve path exists to decouple reads
    // from ingest; the direct measure of that isolation is the writer's
    // lock-stall under saturating readers — wall-clock ingest comparisons
    // conflate it with plain CPU sharing on small hosts (see the
    // saturation bench docs). If the sharded writer stalls anywhere near
    // as long as the single-lock writer, or the snapshot-read tail blows
    // past its compute-bound budget, the isolation has regressed.
    if selected(SAT_SHARDED_STALL_ID) {
        if let (Some(&sh_r), Some(&sh_n), Some(&sl_r), Some(&sl_n)) = (
            current.get(SAT_SHARDED_READERS_ID),
            current.get(SAT_SHARDED_NOREADERS_ID),
            current.get(SAT_SINGLE_READERS_ID),
            current.get(SAT_SINGLE_NOREADERS_ID),
        ) {
            // Saturating readers must not slow sharded ingest by a larger
            // factor than they slow the single lock (read/write isolation),
            // and sharded ingest must outright win under saturation.
            let penalty = (sh_r / sh_n) / (sl_r / sl_n);
            println!(
                "saturation invariant: reader penalty sharded {:.1}x vs singlelock {:.1}x \
                 (ratio {penalty:.2}, must be < 1.0)",
                sh_r / sh_n,
                sl_r / sl_n,
            );
            if penalty >= 1.0 {
                failures.push((
                    "saturation reader-penalty in-run invariant".to_string(),
                    penalty,
                ));
            }
            let headroom = sh_r / sl_r;
            println!(
                "saturation invariant: sharded/singlelock ingest under readers = \
                 {headroom:.2} (must be < 1.0)"
            );
            if headroom >= 1.0 {
                failures.push(("saturation headroom in-run invariant".to_string(), headroom));
            }
        }
        if let (Some(&sharded), Some(&single)) = (
            current.get(SAT_SHARDED_STALL_ID),
            current.get(SAT_SINGLE_STALL_ID),
        ) {
            let ratio = sharded / single;
            println!(
                "saturation invariant: writer stall sharded {sharded:.3e}s vs \
                 singlelock {single:.3e}s (ratio {ratio:.3}, must be < {SAT_STALL_SLACK})"
            );
            if ratio >= SAT_STALL_SLACK {
                failures.push((
                    "saturation writer-stall in-run invariant".to_string(),
                    ratio,
                ));
            }
        }
        if let Some(&p99) = current.get(SAT_SHARDED_P99_ID) {
            println!(
                "saturation invariant: sharded read p99 = {p99:.3e}s \
                 (must be < {SAT_P99_BOUND_S}s)"
            );
            if p99 >= SAT_P99_BOUND_S {
                failures.push((
                    "saturation read-p99 in-run invariant".to_string(),
                    p99 / SAT_P99_BOUND_S,
                ));
            }
        }
    }

    // In-run approximate-serving invariants (same machine-independence
    // argument: both records come from the same process). The pyramid
    // fast path must actually be fast — a coarsest-level full-grid
    // answer that only marginally beats the exact fold means the level
    // walk or the per-cell fold has regressed — and the certified bound
    // must hold on every random query the bench replayed.
    if selected(APPROX_COARSE_ID) {
        if let (Some(&exact), Some(&coarse)) =
            (current.get(APPROX_EXACT_ID), current.get(APPROX_COARSE_ID))
        {
            let speedup = exact / coarse;
            println!(
                "approx invariant: exact/coarsest region speedup = {speedup:.1}x \
                 (must be >= {APPROX_SPEEDUP_MIN}x)"
            );
            if speedup < APPROX_SPEEDUP_MIN {
                failures.push((
                    "approx coarsest-speedup in-run invariant".to_string(),
                    APPROX_SPEEDUP_MIN / speedup,
                ));
            }
        }
        if let Some(&violations) = current.get(APPROX_VIOLATIONS_ID) {
            println!(
                "approx invariant: certified-bound violations = {:.0} \
                 (must be 0)",
                violations.floor()
            );
            if violations >= APPROX_VIOLATIONS_BOUND {
                failures.push((
                    "approx certified-bound in-run invariant".to_string(),
                    violations,
                ));
            }
        }
    }

    // In-run sparse-grid invariants (same machine-independence argument:
    // both sides of each ratio come from the same process). The parallel
    // sparse scatter shares one grid through lock-free brick allocation —
    // if it loses to the sequential loop, the sharing has regressed; and
    // the Morton table exists to *improve* locality over the flat block
    // table, so losing the dense assemble path to it means the layout
    // regressed.
    if selected(SPARSE_PAR_ID) {
        if let (Some(&par), Some(&seq)) = (current.get(SPARSE_PAR_ID), current.get(SPARSE_SEQ_ID)) {
            let ratio = par / seq;
            println!("sparse invariant: par_t8/seq = {ratio:.2} (must be < {SPARSE_PAR_SLACK})");
            if ratio >= SPARSE_PAR_SLACK {
                failures.push(("sparse par/seq in-run invariant".to_string(), ratio));
            }
        }
        if let (Some(&morton), Some(&flat)) = (
            current.get(SPARSE_ASSEMBLE_MORTON_ID),
            current.get(SPARSE_ASSEMBLE_FLAT_ID),
        ) {
            let ratio = morton / flat;
            println!(
                "sparse invariant: assemble morton/flatblock = {ratio:.2} \
                 (must be < {SPARSE_READ_SLACK})"
            );
            if ratio >= SPARSE_READ_SLACK {
                failures.push(("sparse assemble-layout in-run invariant".to_string(), ratio));
            }
        }
        if let (Some(&morton), Some(&flat)) = (
            current.get(SPARSE_VOXELS_MORTON_ID),
            current.get(SPARSE_VOXELS_FLAT_ID),
        ) {
            let ratio = morton / flat;
            println!(
                "sparse invariant: voxel-sweep morton/flatblock = {ratio:.2} \
                 (must be < {SPARSE_VOXELS_SLACK})"
            );
            if ratio >= SPARSE_VOXELS_SLACK {
                failures.push(("sparse voxel-sweep in-run invariant".to_string(), ratio));
            }
        }
    }

    if failures.is_empty() {
        println!("bench_guard: OK (threshold {max_ratio}x, speed factor {speed:.2})");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench_guard: {} benchmark(s) regressed beyond {max_ratio}x:",
            failures.len()
        );
        for (id, ratio) in &failures {
            eprintln!("  {id}: {ratio:.2}x");
        }
        ExitCode::FAILURE
    }
}
