//! Figure 14 — speedup of PB-SYM-PD-REP, per decomposition.
//!
//! Critical-path subdomains are split into replicas accumulating into
//! private buffers. Coarse decompositions replicate nearly the whole grid
//! (degenerating into DR) and may exhaust memory, which the harness
//! reports as `OOM` exactly like the paper's figure caption.

use stkde_bench::runner::DECOMP_SWEEP;
use stkde_bench::table::speedup;
use stkde_bench::{prepare_instances, runner, sim, time_best, HarnessOpts, Table};
use stkde_core::parallel::pd_rep::{plan, Ordering};
use stkde_core::{Algorithm, StkdeError};
use stkde_grid::Decomp;

fn main() {
    let opts = HarnessOpts::from_args();
    let prepared = prepare_instances(&opts);
    let threads = opts.max_threads();
    println!(
        "== Figure 14: PB-SYM-PD-REP speedup ({} real threads; sim-{} in parentheses) ==\n",
        threads, opts.sim_threads
    );

    let mut headers: Vec<String> = vec!["Instance".into()];
    for &k in &DECOMP_SWEEP {
        headers.push(format!("{k}^3"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&headers_ref);

    for p in &prepared {
        let points = runner::pointset(p);
        let seq = runner::measure_pb_sym(p);
        let mut row = vec![p.name()];
        for &k in &DECOMP_SWEEP {
            let decomp = Decomp::cubic(k);
            let (t, outcome) = time_best(opts.reps, || {
                runner::measure(p, &points, Algorithm::PbSymPdRep { decomp }, threads)
            });
            let cell = match outcome {
                Ok(_) => {
                    // Simulated column from the expanded DAG, weights
                    // rescaled so the un-replicated work matches the
                    // measured serial compute time.
                    let rep_plan = plan(
                        &p.problem,
                        &p.points,
                        decomp,
                        opts.sim_threads,
                        Ordering::Lexicographic,
                    );
                    let base_work = rep_plan.base.dag.total_work();
                    let scale = seq.compute_secs() / base_work.max(1e-30);
                    let mut dag = rep_plan.expanded.dag.clone();
                    let secs: Vec<f64> = dag.weights().iter().map(|w| w * scale).collect();
                    dag.set_weights(secs);
                    let s_sim = sim::dag_speedup(
                        seq.init_secs(),
                        seq.compute_secs(),
                        &dag,
                        opts.sim_threads,
                    );
                    format!(
                        "{} ({})",
                        speedup(Some(seq.total / t)),
                        speedup(Some(s_sim))
                    )
                }
                Err(StkdeError::MemoryLimit { .. }) => "OOM".to_string(),
                Err(e) => format!("err:{e}"),
            };
            row.push(cell);
        }
        table.row(row);
    }
    table.print();
    println!("\nExpected shape (paper): near-zero speedup or OOM at coarse");
    println!("lattices (whole-grid replication); strong speedups at fine ones —");
    println!("8 of the paper's instances exceed 8x at 16 threads.");
}
