//! Shared measurement helpers for the figure harnesses.

use crate::prep::PreparedInstance;
use stkde_core::{Algorithm, PhaseTimings, Stkde, StkdeError};
use stkde_data::PointSet;
use stkde_grid::Grid3;

/// The cubic decomposition sweep of the paper's Figures 9–14.
pub const DECOMP_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// A measured sequential `PB-SYM` reference run.
#[derive(Debug, Clone, Copy)]
pub struct SeqReference {
    /// Total wall-clock seconds.
    pub total: f64,
    /// Phase breakdown reported by the engine.
    pub timings: PhaseTimings,
}

impl SeqReference {
    /// Initialization seconds.
    pub fn init_secs(&self) -> f64 {
        self.timings.init.as_secs_f64()
    }

    /// Compute seconds.
    pub fn compute_secs(&self) -> f64 {
        self.timings.compute.as_secs_f64()
    }
}

/// Build an engine for a prepared instance.
pub fn engine(p: &PreparedInstance) -> Stkde {
    Stkde::new(p.instance.domain(), p.instance.bandwidth())
}

/// The instance's points as a `PointSet` (the engine's input type).
pub fn pointset(p: &PreparedInstance) -> PointSet {
    PointSet::from_vec(p.points.clone())
}

/// Measure the sequential `PB-SYM` reference (f32 grids, paper parity).
pub fn measure_pb_sym(p: &PreparedInstance) -> SeqReference {
    let points = pointset(p);
    let start = std::time::Instant::now();
    let r = engine(p)
        .algorithm(Algorithm::PbSym)
        .compute::<f32>(&points)
        .expect("PB-SYM cannot fail");
    SeqReference {
        total: start.elapsed().as_secs_f64(),
        timings: r.timings,
    }
}

/// Run `alg` with `threads` workers; returns total wall seconds and the
/// engine timings, or the error (e.g. the paper's OOM cells).
pub fn measure(
    p: &PreparedInstance,
    points: &PointSet,
    alg: Algorithm,
    threads: usize,
) -> Result<(f64, PhaseTimings, Grid3<f32>), StkdeError> {
    let start = std::time::Instant::now();
    let r = engine(p)
        .algorithm(alg)
        .threads(threads)
        .compute::<f32>(points)?;
    Ok((start.elapsed().as_secs_f64(), r.timings, r.grid))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::HarnessOpts;
    use crate::prep::prepare_instances;
    use stkde_grid::Decomp;

    fn tiny() -> PreparedInstance {
        let opts = HarnessOpts {
            filter: Some("Dengue_Lr-Lb".into()),
            max_voxels: 30_000,
            max_points: 500,
            ..Default::default()
        };
        prepare_instances(&opts).remove(0)
    }

    #[test]
    fn reference_measures_positive_time() {
        let p = tiny();
        let r = measure_pb_sym(&p);
        assert!(r.total > 0.0);
        assert!(r.init_secs() >= 0.0 && r.compute_secs() >= 0.0);
    }

    #[test]
    fn measure_runs_parallel_algorithm() {
        let p = tiny();
        let points = pointset(&p);
        let (t, _, grid) = measure(
            &p,
            &points,
            Algorithm::PbSymDd {
                decomp: Decomp::cubic(4),
            },
            2,
        )
        .unwrap();
        assert!(t > 0.0);
        assert_eq!(grid.dims(), p.problem.domain.dims());
    }
}
