//! Simulated P-processor speedup models.
//!
//! The paper's figures report 16-thread speedups on a 16-core Xeon node.
//! On hosts with fewer cores this harness reports, next to the measured
//! real-thread speedups, a *simulated* speedup built from measured
//! quantities (per-phase times and per-subdomain task weights) replayed
//! through the exact execution model of each algorithm:
//!
//! * **DR** — three pleasingly parallel phases; compute scales by `P`,
//!   memory-bound phases by the measured memory-parallelism ceiling;
//! * **DD** — LPT list scheduling of the per-subdomain task weights on `P`
//!   machines (no dependencies) + memory-scaled init;
//! * **PD (phased)** — per parity class, list scheduling with a barrier
//!   between classes;
//! * **PD-SCHED / PD-REP** — greedy list scheduling of the (expanded)
//!   dependency DAG — Graham's model, which the paper itself uses to bound
//!   these algorithms.

use stkde_core::PhaseTimings;
use stkde_sched::{list_schedule, TaskDag};

/// Memory-bound phases stop scaling beyond this many threads — the paper
/// measures ≈3× at 16 threads for first-touch initialization (§6.3).
pub const MEM_PARALLELISM: f64 = 3.0;

fn mem_scale(p: usize) -> f64 {
    (p as f64).min(MEM_PARALLELISM)
}

/// Simulated speedup of `PB-SYM-DR` on `p` processors from the measured
/// sequential phase breakdown: replica init and reduction grow with `p`
/// but parallelize only up to the memory ceiling; compute scales ideally.
pub fn dr_speedup(seq: &PhaseTimings, p: usize) -> f64 {
    let init1 = seq.init.as_secs_f64();
    let comp1 = seq.compute.as_secs_f64();
    let total1 = init1 + comp1;
    let init_p = p as f64 * init1 / mem_scale(p);
    // Reduction touches the same P·G voxels as init; model it at the init
    // voxel rate.
    let reduce_p = init_p;
    let comp_p = comp1 / p as f64;
    total1 / (init_p + comp_p + reduce_p)
}

/// Simulated speedup of a decomposed algorithm whose compute phase is a
/// set of independent tasks (DD): LPT list schedule of `task_secs` on `p`
/// machines, plus memory-ceiling-scaled init. `task_secs` include the DD
/// replication overhead; the speedup is taken against the *un-decomposed*
/// sequential reference `ref_secs` (PB-SYM), matching the paper's figures.
pub fn dd_speedup(init_secs: f64, ref_secs: f64, task_secs: &[f64], p: usize) -> f64 {
    let dag = TaskDag::from_edges(task_secs.len(), task_secs.to_vec(), &[]);
    let makespan = if task_secs.is_empty() {
        0.0
    } else {
        list_schedule(&dag, p, task_secs).makespan
    };
    ref_secs / (init_secs / mem_scale(p) + makespan)
}

/// Simulated speedup of the phased `PB-SYM-PD`: classes are separated by
/// barriers; within a class, tasks schedule freely on `p` machines.
pub fn pd_phased_speedup(init_secs: f64, classes: &[Vec<f64>], p: usize) -> f64 {
    let compute1: f64 = classes.iter().flatten().sum();
    let total1 = init_secs + compute1;
    let mut makespan = 0.0;
    for class in classes {
        if class.is_empty() {
            continue;
        }
        let dag = TaskDag::from_edges(class.len(), class.clone(), &[]);
        makespan += list_schedule(&dag, p, class).makespan;
    }
    total1 / (init_secs / mem_scale(p) + makespan)
}

/// Simulated speedup of a DAG-scheduled algorithm (PD-SCHED, PD-REP):
/// greedy list scheduling of the weighted DAG on `p` machines. `weights`
/// are in seconds; `serial_compute_secs` is the 1-thread compute time the
/// speedup is taken against.
pub fn dag_speedup(init_secs: f64, serial_compute_secs: f64, dag: &TaskDag, p: usize) -> f64 {
    let makespan = if dag.n() == 0 {
        0.0
    } else {
        list_schedule(dag, p, dag.weights()).makespan
    };
    (init_secs + serial_compute_secs) / (init_secs / mem_scale(p) + makespan)
}

/// Rescale task weights (arbitrary units) so they sum to the measured
/// 1-thread compute seconds — converting model weights into wall-clock.
pub fn weights_to_seconds(weights: &[f64], compute_secs: f64) -> Vec<f64> {
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return vec![0.0; weights.len()];
    }
    weights.iter().map(|w| w * compute_secs / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn timings(init_ms: u64, comp_ms: u64) -> PhaseTimings {
        PhaseTimings {
            init: Duration::from_millis(init_ms),
            compute: Duration::from_millis(comp_ms),
            ..Default::default()
        }
    }

    #[test]
    fn dr_compute_bound_scales_well() {
        // 0.1% init, 99.9% compute: close to linear. (Even 1% init costs
        // DR dearly at P=16 because init and reduce are amplified P-fold —
        // exactly the paper's observation.)
        let s = dr_speedup(&timings(1, 999), 16);
        assert!(s > 8.0, "compute-bound DR speedup {s}");
        let s_1pct = dr_speedup(&timings(10, 990), 16);
        assert!(s_1pct < s, "more init must hurt DR");
    }

    #[test]
    fn dr_init_bound_slows_down() {
        // Paper Figure 8: init-heavy instances get speedup < 1 under DR.
        let s = dr_speedup(&timings(900, 100), 16);
        assert!(s < 1.0, "init-bound DR speedup should collapse, got {s}");
    }

    #[test]
    fn dd_balanced_tasks_scale() {
        let tasks = vec![0.1; 64];
        // Reference = same work without decomposition overhead.
        let s = dd_speedup(0.01, 0.01 + 6.4, &tasks, 16);
        assert!(s > 8.0, "balanced DD speedup {s}");
    }

    #[test]
    fn dd_single_hot_task_limits() {
        let mut tasks = vec![0.001; 63];
        tasks.push(1.0); // one dominant subdomain
        let ref_secs = tasks.iter().sum::<f64>();
        let s = dd_speedup(0.0, ref_secs, &tasks, 16);
        assert!(s < 1.2, "imbalanced DD cannot scale: {s}");
    }

    #[test]
    fn phased_barriers_hurt() {
        // Same tasks, split into 8 classes of one task each: barriers
        // serialize everything.
        let classes: Vec<Vec<f64>> = (0..8).map(|_| vec![0.1]).collect();
        let s_phased = pd_phased_speedup(0.0, &classes, 16);
        assert!((s_phased - 1.0).abs() < 1e-9);
        // One class with all 8 tasks: perfect parallelism.
        let one_class = vec![vec![0.1; 8]];
        let s_free = pd_phased_speedup(0.0, &one_class, 16);
        assert!(s_free > 7.9);
    }

    #[test]
    fn dag_speedup_matches_graham_world() {
        let dag = TaskDag::from_edges(4, vec![0.25; 4], &[]);
        let s = dag_speedup(0.0, 1.0, &dag, 4);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn weights_rescale_preserves_ratios() {
        let w = weights_to_seconds(&[1.0, 3.0], 8.0);
        assert!((w[0] - 2.0).abs() < 1e-12);
        assert!((w[1] - 6.0).abs() < 1e-12);
        assert_eq!(weights_to_seconds(&[0.0, 0.0], 1.0), vec![0.0, 0.0]);
    }
}
