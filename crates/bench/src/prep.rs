//! Instance preparation: catalog filtering, scaling, point generation.

use crate::opts::HarnessOpts;
use stkde_core::Problem;
use stkde_data::{full_catalog, Instance, Point};

/// An instance ready to run: scaled parameters, problem description, and
/// generated points.
#[derive(Debug, Clone)]
pub struct PreparedInstance {
    /// The (scaled) instance.
    pub instance: Instance,
    /// Problem description (domain, bandwidths, normalization).
    pub problem: Problem,
    /// The synthetic events.
    pub points: Vec<Point>,
}

impl PreparedInstance {
    /// The paper's instance name, e.g. `Flu_Mr-Hb`.
    pub fn name(&self) -> String {
        self.instance.name()
    }
}

/// Prepare every catalog instance selected by `opts`: filter by name,
/// scale (explicitly or to the budget), and generate points.
pub fn prepare_instances(opts: &HarnessOpts) -> Vec<PreparedInstance> {
    full_catalog()
        .into_iter()
        .filter(|inst| {
            opts.filter
                .as_deref()
                .is_none_or(|f| inst.name().contains(f))
        })
        .map(|inst| prepare(&inst, opts))
        .collect()
}

/// Prepare a single instance.
pub fn prepare(instance: &Instance, opts: &HarnessOpts) -> PreparedInstance {
    let scaled = match opts.scale {
        Some(alpha) => instance.scaled(alpha),
        None => instance.scaled_to_budgets(opts.max_voxels, opts.max_points, opts.max_updates),
    };
    let points = scaled.generate_points(opts.seed).into_vec();
    let problem = Problem::new(scaled.domain(), scaled.bandwidth(), points.len());
    PreparedInstance {
        instance: scaled,
        problem,
        points,
    }
}

/// Estimated `VB` cost in voxel·point distance tests — used by the Table 3
/// harness to skip the gold standard where the paper leaves blanks.
pub fn vb_cost(p: &PreparedInstance) -> f64 {
    p.problem.init_cost() * p.points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_selects_subset() {
        let opts = HarnessOpts {
            filter: Some("Dengue".into()),
            max_voxels: 100_000,
            max_points: 2_000,
            ..Default::default()
        };
        let prepared = prepare_instances(&opts);
        assert_eq!(prepared.len(), 5);
        assert!(prepared.iter().all(|p| p.name().starts_with("Dengue")));
    }

    #[test]
    fn budget_scaling_applies() {
        let opts = HarnessOpts {
            filter: Some("eBird_Hr-Hb".into()),
            max_voxels: 500_000,
            max_points: 10_000,
            ..Default::default()
        };
        let prepared = prepare_instances(&opts);
        assert_eq!(prepared.len(), 1);
        let p = &prepared[0];
        assert!(p.problem.domain.dims().volume() <= 500_000);
        assert!(p.points.len() <= 10_000);
        assert!(p.instance.scale < 1.0);
    }

    #[test]
    fn explicit_scale_wins() {
        let opts = HarnessOpts {
            filter: Some("PollenUS_Lr-Lb".into()),
            scale: Some(0.5),
            ..Default::default()
        };
        let p = &prepare_instances(&opts)[0];
        assert!((p.instance.scale - 0.5).abs() < 1e-12);
    }

    #[test]
    fn problem_matches_points() {
        let opts = HarnessOpts {
            filter: Some("Flu_Lr-Lb".into()),
            max_voxels: 200_000,
            max_points: 3_000,
            ..Default::default()
        };
        let p = &prepare_instances(&opts)[0];
        assert_eq!(p.problem.n, p.points.len());
        assert!(vb_cost(p) > 0.0);
    }
}
