//! Parallel algorithm micro-benchmarks: the five strategies on one
//! clustered instance (the regime where their differences matter).

use criterion::{criterion_group, criterion_main, Criterion};
use stkde_core::parallel::{dd, dr, pd, pd_rep, pd_sched};
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Decomp, Domain, GridDims};
use stkde_kernels::Epanechnikov;

fn instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(64, 64, 32));
    let spec = synth::ClusterSpec {
        clusters: 4,
        spatial_sigma: 0.04,
        background: 0.1,
        ..Default::default()
    };
    let points = spec.generate(2_000, domain.extent(), 2).into_vec();
    (
        Problem::new(domain, Bandwidth::new(4.0, 3.0), points.len()),
        points,
    )
}

fn bench_parallel(c: &mut Criterion) {
    let (problem, points) = instance();
    let k = Epanechnikov;
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2);
    let decomp = Decomp::cubic(8);
    let mut group = c.benchmark_group(format!("parallel_t{threads}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("dr", |b| {
        b.iter(|| dr::run::<f32, _>(&problem, &k, &points, threads, usize::MAX).unwrap())
    });
    group.bench_function("dd_8c", |b| {
        b.iter(|| dd::run::<f32, _>(&problem, &k, &points, decomp, threads).unwrap())
    });
    group.bench_function("pd_8c", |b| {
        b.iter(|| pd::run::<f32, _>(&problem, &k, &points, decomp, threads).unwrap())
    });
    group.bench_function("pd_sched_8c", |b| {
        b.iter(|| {
            pd_sched::run::<f32, _>(
                &problem,
                &k,
                &points,
                decomp,
                threads,
                pd_sched::Ordering::LoadAware,
            )
            .unwrap()
        })
    });
    group.bench_function("pd_sched_rep_8c", |b| {
        b.iter(|| {
            pd_rep::run::<f32, _>(
                &problem,
                &k,
                &points,
                decomp,
                threads,
                pd_sched::Ordering::LoadAware,
                usize::MAX,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
