//! Serve-path saturation benchmark: does ingest stay fast while readers
//! hammer the cube?
//!
//! Two arrangements ingest the same time-ordered stream in the same
//! chunk sizes, with and without 8 concurrent reader threads:
//!
//! * **singlelock** — one `RwLock<SlidingWindowStkde>`: readers hold the
//!   read lock for the full duration of a `density_range` fold, so a
//!   saturated read side starves the writer.
//! * **sharded** — the serve-path arrangement: a `Mutex` around
//!   [`ShardedWindowStkde`] for the writer, an `RwLock<Arc<CubeSnapshot>>`
//!   slot for readers. Readers clone the `Arc` (a pointer copy) and fold
//!   over the immutable snapshot; the writer ingests across temporal-slab
//!   shards in parallel and publishes copy-on-write snapshots.
//!
//! The measured unit is ingesting the full stream, with the writer
//! paced by a small inter-batch gap as a real channel-fed writer is.
//! Alongside the four wall-clock ids this bench records two quantities
//! criterion cannot: the writer's **lock-stall** (seconds spent blocked
//! acquiring its locks — the direct measure of read/write isolation;
//! the single-lock writer waits out multi-millisecond read folds, the
//! sharded writer only ever waits for an `Arc` swap) and the readers'
//! **p99 latency**. `bench_guard` enforces four in-run invariants over
//! these records (see its module docs); the extra ids are appended to
//! `$STKDE_BENCH_JSON` by this bench itself and stay out of the
//! committed baseline (they are in-run absolutes, not best-of-batches
//! means).

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stkde_core::{CubeSnapshot, ShardedWindowStkde, SlidingWindowStkde};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, GridDims, VoxelRange};

const SHARDS: usize = 4;
const CHUNK: usize = 64;
const READERS: usize = 8;
/// Gap between ingested chunks, modeling the writer thread blocking on
/// its channel between coalesced batches. Without it a small host lets
/// the bench's writer loop outrun the readers entirely — it re-acquires
/// the lock before any reader is ever scheduled to contend for it — and
/// the measured contention understates what a paced server sees.
const BATCH_GAP: Duration = Duration::from_micros(100);

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(64, 64, 32))
}

fn bandwidth() -> Bandwidth {
    Bandwidth::new(6.0, 4.0)
}

fn sorted_stream(n: usize, seed: u64) -> Vec<Point> {
    let mut points = synth::uniform(n, domain().extent(), seed).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    points
}

/// The read the saturating readers issue: a fold over most of the cube,
/// spanning several slab boundaries — long enough that holding a read
/// lock across it visibly stalls a lock-sharing writer.
fn read_box() -> VoxelRange {
    VoxelRange {
        x0: 2,
        x1: 62,
        y0: 2,
        y1: 62,
        t0: 2,
        t1: 30,
    }
}

/// Reader threads looping `read()` until stopped, each recording
/// per-read wall-clock latencies.
struct ReaderPool {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<Vec<f64>>>,
}

fn spawn_readers<F>(read: F) -> ReaderPool
where
    F: Fn() + Send + Clone + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let handles = (0..READERS)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let read = read.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let start = Instant::now();
                    read();
                    latencies.push(start.elapsed().as_secs_f64());
                }
                latencies
            })
        })
        .collect();
    ReaderPool { stop, handles }
}

impl ReaderPool {
    fn finish(self) -> Vec<f64> {
        self.stop.store(true, Ordering::Relaxed);
        self.handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader thread"))
            .collect()
    }
}

/// Running mean of per-ingest stall seconds, floored away from zero so
/// the JSONL record stays parseable by `bench_guard` (which rejects
/// non-positive times).
#[derive(Default)]
struct MeanCell {
    sum: std::cell::Cell<f64>,
    count: std::cell::Cell<u64>,
}

impl MeanCell {
    fn push(&self, v: f64) -> f64 {
        self.sum.set(self.sum.get() + v);
        self.count.set(self.count.get() + 1);
        v
    }

    fn mean(&self) -> f64 {
        (self.sum.get() / self.count.get().max(1) as f64).max(1e-9)
    }
}

fn p99(mut latencies: Vec<f64>) -> f64 {
    assert!(!latencies.is_empty(), "readers never completed a read");
    latencies.sort_by(f64::total_cmp);
    let idx = (latencies.len() as f64 * 0.99) as usize;
    latencies[idx.min(latencies.len() - 1)]
}

/// Append a record in the criterion shim's JSONL format; used for the
/// reader-side p99 quantiles the shim cannot measure itself.
fn record_json(id: &str, best_s: f64) {
    let Ok(path) = std::env::var("STKDE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"id\":\"{id}\",\"best_s\":{best_s:e}}}");
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"))
        .unwrap_or_else(|e| eprintln!("warning: could not record {id} to {path}: {e}"));
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    let points = sorted_stream(1_200, 53);
    let window = 8.0;

    // ---- single lock: readers and the writer share one RwLock ----
    let single = Arc::new(RwLock::new(SlidingWindowStkde::<f64>::new(
        domain(),
        bandwidth(),
        window,
    )));
    // Ingest the stream; returns the seconds the writer spent *blocked*
    // acquiring the write lock (its lock-stall under reader pressure).
    let ingest_single = |cube: &RwLock<SlidingWindowStkde<f64>>| {
        let stall = std::cell::Cell::new(0.0f64);
        let locked = || {
            let wait = Instant::now();
            let guard = cube.write().unwrap();
            stall.set(stall.get() + wait.elapsed().as_secs_f64());
            guard
        };
        *locked() = SlidingWindowStkde::new(domain(), bandwidth(), window);
        for chunk in points.chunks(CHUNK) {
            // Lock per chunk, as the server's writer thread does per
            // coalesced batch; readers interleave during the gap.
            locked().push_batch(chunk);
            std::thread::sleep(BATCH_GAP);
        }
        black_box(cube.read().unwrap().len());
        stall.get()
    };
    group.bench_function("singlelock_ingest_noreaders", |b| {
        b.iter(|| black_box(ingest_single(&single)))
    });
    let pool = {
        let single = Arc::clone(&single);
        spawn_readers(move || {
            black_box(single.read().unwrap().cube().density_range(read_box()));
        })
    };
    // Mean stall across every measured ingest: blocking is a tail
    // event (it needs a reader to be mid-fold at acquisition time), so
    // a best-of floor would just pick the luckiest run.
    let stall = MeanCell::default();
    group.bench_function("singlelock_ingest_readers8", |b| {
        b.iter(|| black_box(stall.push(ingest_single(&single))))
    });
    record_json("saturation/singlelock_stall_readers8", stall.mean());
    record_json(
        "saturation/singlelock_read_p99_readers8",
        p99(pool.finish()),
    );

    // ---- sharded: writer behind a Mutex, readers on COW snapshots ----
    let sharded = Arc::new(Mutex::new(ShardedWindowStkde::<f64>::new(
        domain(),
        bandwidth(),
        window,
        SHARDS,
    )));
    let slot = Arc::new(RwLock::new(sharded.lock().unwrap().publish()));
    let ingest_sharded = |cube: &Mutex<ShardedWindowStkde<f64>>,
                          slot: &RwLock<Arc<CubeSnapshot<f64>>>| {
        let stall = std::cell::Cell::new(0.0f64);
        let locked = || {
            let wait = Instant::now();
            let guard = cube.lock().unwrap();
            stall.set(stall.get() + wait.elapsed().as_secs_f64());
            guard
        };
        let swap = |snap| {
            let wait = Instant::now();
            let mut guard = slot.write().unwrap();
            stall.set(stall.get() + wait.elapsed().as_secs_f64());
            *guard = snap;
        };
        {
            let mut w = locked();
            *w = ShardedWindowStkde::new(domain(), bandwidth(), window, SHARDS);
            swap(w.publish());
        }
        for chunk in points.chunks(CHUNK) {
            let mut w = locked();
            w.push_batch(chunk);
            // Publish before unlocking, as the serve path does: the swap
            // is the only moment readers are (briefly) excluded.
            let snap = w.publish();
            swap(snap);
            drop(w);
            std::thread::sleep(BATCH_GAP);
        }
        black_box(cube.lock().unwrap().len());
        stall.get()
    };
    group.bench_function("sharded_ingest_noreaders", |b| {
        b.iter(|| black_box(ingest_sharded(&sharded, &slot)))
    });
    let pool = {
        let slot = Arc::clone(&slot);
        spawn_readers(move || {
            let snap = slot.read().unwrap().clone();
            black_box(snap.density_range(read_box()));
        })
    };
    let stall = MeanCell::default();
    group.bench_function("sharded_ingest_readers8", |b| {
        b.iter(|| black_box(stall.push(ingest_sharded(&sharded, &slot))))
    });
    record_json("saturation/sharded_stall_readers8", stall.mean());
    record_json("saturation/sharded_read_p99_readers8", p99(pool.finish()));

    group.finish();
}

criterion_group!(benches, bench_saturation);
criterion_main!(benches);
