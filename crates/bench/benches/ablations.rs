//! Ablation benchmarks for the design choices called out in DESIGN.md:
//!
//! * **Row-wise outer-product writes** (PB-SYM's stride-1 inner loop via
//!   `SharedGrid::row_mut`) vs naive per-voxel indexed adds — the
//!   vectorization claim behind the `Grid3` X-fastest layout;
//! * **LPT priorities** in the list scheduler vs FIFO-ish (uniform)
//!   priorities — the `PD-SCHED` "heaviest first" heuristic;
//! * **Invariant hoisting** at different bandwidths — the PB→PB-SYM gap
//!   that grows with `Hs·Ht` (Table 3's speedup column);
//! * **Tabulated kernels** — lookup-table interpolation vs closed-form
//!   evaluation, for a cheap polynomial kernel (no win expected) and a
//!   transcendental one (removes `exp` from the inner loop);
//! * **Sparse table layout** — the same simulated cylinder fill pushed
//!   through a dense grid, the retired row-major flat block table, and
//!   the Morton-brick table, isolating what the chunked-Morton layout
//!   costs (or saves) on the write path relative to both neighbors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stkde_bench::flatblock::FlatBlockGrid;
use stkde_core::algorithms::{pb, pb_sym};
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims, SharedGrid, SparseGrid3};
use stkde_kernels::{Epanechnikov, Tabulated, TruncatedGaussian};
use stkde_sched::{list_schedule, TaskDag};

fn bench_row_vs_voxel_writes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_write_path");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    let dims = GridDims::new(64, 64, 32);
    // A synthetic PB-SYM cylinder fill: disk 21x21, bar 9 → outer product.
    let disk: Vec<f64> = (0..21 * 21).map(|i| (i % 7) as f64 * 0.1).collect();
    let bar: Vec<f64> = (0..9).map(|i| 0.5 + i as f64 * 0.05).collect();

    group.bench_function("row_wise_fma", |b| {
        let mut grid: Grid3<f32> = Grid3::zeros_touched(dims);
        b.iter(|| {
            let shared = SharedGrid::new(&mut grid);
            for (ti, kt) in bar.iter().enumerate() {
                for y in 0..21 {
                    // SAFETY: single thread, exclusive borrow.
                    let row = unsafe { shared.row_mut(10 + y, 10 + ti, 20, 41) };
                    let dr = &disk[y * 21..(y + 1) * 21];
                    for (o, &ks) in row.iter_mut().zip(dr) {
                        *o += (ks * kt) as f32;
                    }
                }
            }
        })
    });

    group.bench_function("voxel_wise_indexed", |b| {
        let mut grid: Grid3<f32> = Grid3::zeros_touched(dims);
        b.iter(|| {
            for (ti, kt) in bar.iter().enumerate() {
                for y in 0..21 {
                    for x in 0..21 {
                        let v = (disk[y * 21 + x] * kt) as f32;
                        grid.add(20 + x, 10 + y, 10 + ti, v);
                    }
                }
            }
        })
    });
    group.finish();
}

fn bench_priority_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule_priority");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    // Heavy-tailed independent tasks: the regime where LPT matters.
    let n = 512;
    let weights: Vec<f64> = (0..n)
        .map(|i| {
            if i % 61 == 0 {
                120.0
            } else {
                1.0 + (i % 5) as f64
            }
        })
        .collect();
    let dag = TaskDag::from_edges(n, weights.clone(), &[]);
    let uniform = vec![1.0; n];

    group.bench_function("lpt_priority_p16", |b| {
        b.iter(|| list_schedule(&dag, 16, &weights))
    });
    group.bench_function("fifo_priority_p16", |b| {
        b.iter(|| list_schedule(&dag, 16, &uniform))
    });
    group.finish();

    // Report-by-assertion: LPT must not lose (checked here so the ablation
    // is self-documenting when run).
    let lpt = list_schedule(&dag, 16, &weights).makespan;
    let fifo = list_schedule(&dag, 16, &uniform).makespan;
    assert!(lpt <= fifo + 1e-9, "LPT {lpt} vs FIFO {fifo}");
}

fn bench_invariant_hoisting_by_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_pb_vs_pbsym");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let domain = Domain::from_dims(GridDims::new(48, 48, 24));
    let points: Vec<Point> = synth::uniform(100, domain.extent(), 5).into_vec();
    for (hs, ht) in [(2.0, 1.0), (6.0, 4.0)] {
        let problem = Problem::new(domain, Bandwidth::new(hs, ht), points.len());
        group.bench_with_input(
            BenchmarkId::new("pb", format!("hs{hs}_ht{ht}")),
            &problem,
            |b, p| b.iter(|| pb::run::<f32, _>(p, &Epanechnikov, &points)),
        );
        group.bench_with_input(
            BenchmarkId::new("pb_sym", format!("hs{hs}_ht{ht}")),
            &problem,
            |b, p| b.iter(|| pb_sym::run::<f32, _>(p, &Epanechnikov, &points)),
        );
    }
    group.finish();
}

fn bench_tabulated_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_kernel_lut");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let domain = Domain::from_dims(GridDims::new(48, 48, 24));
    let points: Vec<Point> = synth::uniform(200, domain.extent(), 9).into_vec();
    let problem = Problem::new(domain, Bandwidth::new(6.0, 4.0), points.len());

    // PB is the fair host for this ablation: it evaluates the kernel at
    // every voxel of every cylinder, so evaluation cost dominates. (Under
    // PB-SYM the invariants already amortize evaluations per point and the
    // LUT effect shrinks — which is itself part of the finding.)
    group.bench_function("pb/epanechnikov_exact", |b| {
        b.iter(|| pb::run::<f32, _>(&problem, &Epanechnikov, &points))
    });
    group.bench_function("pb/epanechnikov_lut", |b| {
        let k = Tabulated::new(Epanechnikov);
        b.iter(|| pb::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb/gaussian_exact", |b| {
        let k = TruncatedGaussian::default();
        b.iter(|| pb::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb/gaussian_lut", |b| {
        let k = Tabulated::new(TruncatedGaussian::default());
        b.iter(|| pb::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb_sym/gaussian_exact", |b| {
        let k = TruncatedGaussian::default();
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb_sym/gaussian_lut", |b| {
        let k = Tabulated::new(TruncatedGaussian::default());
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.finish();
}

fn bench_sparse_table_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_sparse_layout");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));
    let dims = GridDims::new(64, 64, 32);
    // The same synthetic cylinder fill as `ablation_write_path`, but
    // routed through each backend's row-write primitive so the only
    // variable is the grid data structure.
    let disk: Vec<Vec<f64>> = (0..21)
        .map(|y| (0..21).map(|x| ((x + y * 21) % 7) as f64 * 0.1).collect())
        .collect();
    let bar: Vec<f64> = (0..9).map(|i| 0.5 + i as f64 * 0.05).collect();

    group.bench_function("dense_rows", |b| {
        let mut grid: Grid3<f32> = Grid3::zeros_touched(dims);
        b.iter(|| {
            for (ti, kt) in bar.iter().enumerate() {
                for (y, dr) in disk.iter().enumerate() {
                    let row = grid.row_mut(10 + y, 10 + ti, 20, 41);
                    for (o, &ks) in row.iter_mut().zip(dr) {
                        *o += (ks * kt) as f32;
                    }
                }
            }
        })
    });
    group.bench_function("flatblock_rows", |b| {
        let mut grid: FlatBlockGrid<f32> = FlatBlockGrid::new(dims);
        let mut scaled = vec![0.0f64; 21];
        b.iter(|| {
            for (ti, &kt) in bar.iter().enumerate() {
                for (y, dr) in disk.iter().enumerate() {
                    for (s, &ks) in scaled.iter_mut().zip(dr) {
                        *s = ks * kt;
                    }
                    grid.add_row_f64(10 + y, 10 + ti, 20, &scaled);
                }
            }
        })
    });
    group.bench_function("morton_brick_rows", |b| {
        let mut grid: SparseGrid3<f32> = SparseGrid3::new(dims);
        let mut scaled = vec![0.0f64; 21];
        b.iter(|| {
            for (ti, &kt) in bar.iter().enumerate() {
                for (y, dr) in disk.iter().enumerate() {
                    for (s, &ks) in scaled.iter_mut().zip(dr) {
                        *s = ks * kt;
                    }
                    grid.add_row_f64(10 + y, 10 + ti, 20, &scaled);
                }
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_row_vs_voxel_writes,
    bench_priority_ablation,
    bench_invariant_hoisting_by_bandwidth,
    bench_tabulated_kernels,
    bench_sparse_table_layout
);
criterion_main!(benches);
