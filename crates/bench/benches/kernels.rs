//! Kernel evaluation micro-benchmarks: the per-voxel cost the PB-SYM
//! invariants amortize away (paper §3.2: ≈40 flops per voxel update in the
//! naive scheme).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stkde_kernels::{
    Epanechnikov, PaperLiteral, Quartic, SpaceTimeKernel, TruncatedGaussian, Uniform,
};

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_eval");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(1));

    // A sweep of offsets covering in- and out-of-support evaluations,
    // like a real cylinder fill.
    let offsets: Vec<(f64, f64, f64)> = (0..512)
        .map(|i| {
            let f = i as f64 / 512.0;
            (
                2.0 * f - 1.0,
                1.0 - 2.0 * ((i * 7) % 512) as f64 / 512.0,
                2.0 * f - 1.0,
            )
        })
        .collect();

    fn sweep<K: SpaceTimeKernel>(k: &K, offsets: &[(f64, f64, f64)]) -> f64 {
        offsets
            .iter()
            .map(|&(u, v, w)| k.eval(u, v, w))
            .sum::<f64>()
    }

    group.bench_function("epanechnikov_512", |b| {
        b.iter(|| sweep(&Epanechnikov, black_box(&offsets)))
    });
    group.bench_function("paper_literal_512", |b| {
        b.iter(|| sweep(&PaperLiteral, black_box(&offsets)))
    });
    group.bench_function("quartic_512", |b| {
        b.iter(|| sweep(&Quartic, black_box(&offsets)))
    });
    group.bench_function("uniform_512", |b| {
        b.iter(|| sweep(&Uniform, black_box(&offsets)))
    });
    group.bench_function("gaussian_512", |b| {
        b.iter(|| sweep(&TruncatedGaussian::default(), black_box(&offsets)))
    });

    // Separated factors (what PB-SYM evaluates once per row/layer).
    group.bench_function("spatial_factor_512", |b| {
        b.iter(|| {
            offsets
                .iter()
                .map(|&(u, v, _)| Epanechnikov.spatial(u, v))
                .sum::<f64>()
        })
    });
    group.bench_function("temporal_factor_512", |b| {
        b.iter(|| {
            offsets
                .iter()
                .map(|&(_, _, w)| Epanechnikov.temporal(w))
                .sum::<f64>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
