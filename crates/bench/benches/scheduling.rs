//! Scheduling substrate micro-benchmarks: coloring, DAG construction,
//! critical path, list-scheduling simulation, and the executor's raw task
//! dispatch overhead on a 16³ stencil lattice (4096 subdomains — the
//! paper's largest practical decompositions).

use criterion::{criterion_group, criterion_main, Criterion};
use stkde_grid::{Decomp, Decomposition, GridDims};
use stkde_sched::{
    critical_path, greedy_coloring, list_schedule, order_by_weight_desc, order_lexicographic,
    parity_coloring, run_dag, StencilGraph, TaskDag,
};

fn lattice() -> (Decomposition, StencilGraph, Vec<f64>) {
    let d = Decomposition::new(GridDims::new(128, 128, 128), Decomp::cubic(16));
    let g = StencilGraph::from_decomposition(&d);
    // Deterministic pseudo-random weights with a heavy tail.
    let w: Vec<f64> = (0..g.n())
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 48;
            1.0 + (h % 1000) as f64 * if i % 97 == 0 { 50.0 } else { 1.0 }
        })
        .collect();
    (d, g, w)
}

fn bench_scheduling(c: &mut Criterion) {
    let (d, g, w) = lattice();
    let mut group = c.benchmark_group("scheduling_16cubed");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));

    group.bench_function("stencil_graph_build", |b| {
        b.iter(|| StencilGraph::from_decomposition(&d))
    });
    group.bench_function("parity_coloring", |b| b.iter(|| parity_coloring(&d)));
    group.bench_function("greedy_coloring_lex", |b| {
        b.iter(|| greedy_coloring(&g, &order_lexicographic(g.n())))
    });
    group.bench_function("greedy_coloring_load_aware", |b| {
        b.iter(|| greedy_coloring(&g, &order_by_weight_desc(&w)))
    });

    let coloring = greedy_coloring(&g, &order_by_weight_desc(&w));
    group.bench_function("dag_from_coloring", |b| {
        b.iter(|| TaskDag::from_coloring(&g, &coloring, w.clone()))
    });

    let dag = TaskDag::from_coloring(&g, &coloring, w.clone());
    group.bench_function("critical_path", |b| b.iter(|| critical_path(&dag)));
    group.bench_function("list_schedule_p16", |b| {
        b.iter(|| list_schedule(&dag, 16, &w))
    });
    group.bench_function("executor_noop_tasks_t2", |b| {
        b.iter(|| run_dag(&dag, 2, &w, |_| {}))
    });
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
