//! Point-binning micro-benchmarks: the bin phase of DD (replicated) and PD
//! (partitioned), whose cost appears in every decomposed run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stkde_data::{binning, synth, Point};
use stkde_grid::{Decomp, Decomposition, Domain, GridDims, VoxelBandwidth};

fn setup() -> (Domain, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(128, 128, 64));
    let points = synth::uniform(50_000, domain.extent(), 3).into_vec();
    (domain, points)
}

fn bench_binning(c: &mut Criterion) {
    let (domain, points) = setup();
    let vbw = VoxelBandwidth::new(4, 2);
    let mut group = c.benchmark_group("binning_50k");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));

    for k in [4usize, 16] {
        let decomp = Decomposition::new(domain.dims(), Decomp::cubic(k));
        group.bench_with_input(
            BenchmarkId::new("plain", format!("{k}^3")),
            &decomp,
            |b, d| b.iter(|| binning::bin_points(&domain, d, &points)),
        );
        group.bench_with_input(
            BenchmarkId::new("replicated", format!("{k}^3")),
            &decomp,
            |b, d| b.iter(|| binning::bin_points_replicated(&domain, d, &points, vbw)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_binning);
criterion_main!(benches);
