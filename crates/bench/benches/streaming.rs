//! Streaming-ingest micro-benchmarks: quantify the write-coalescing win
//! the serve path relies on.
//!
//! The `stkde-server` writer thread drains its channel and applies the
//! whole drained batch per write-lock acquisition via
//! `SlidingWindowStkde::push_batch`. These benches compare that coalesced
//! path against one-at-a-time `push`/`insert` on the same stream: the
//! batch path amortizes per-call setup and skips rasterizing events that
//! age out within their own batch.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stkde_core::{IncrementalStkde, SlidingWindowStkde};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, GridDims};

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(64, 64, 32))
}

fn bandwidth() -> Bandwidth {
    Bandwidth::new(6.0, 4.0)
}

fn sorted_stream(n: usize, seed: u64) -> Vec<Point> {
    let mut points = synth::uniform(n, domain().extent(), seed).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    points
}

/// Sliding-window ingest: one `push` per event vs. `push_batch` over
/// chunks of increasing size. The window is short relative to the stream,
/// so eviction churn is part of the measured work — as in serving.
fn bench_window_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_window_ingest");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    let points = sorted_stream(2_000, 51);
    let window = 4.0;
    group.bench_function("push_one_at_a_time", |b| {
        b.iter(|| {
            let mut win = SlidingWindowStkde::<f32>::new(domain(), bandwidth(), window);
            for &p in &points {
                win.push(p);
            }
            win.len()
        })
    });
    for batch in [64usize, 256, 1024] {
        group.bench_with_input(
            BenchmarkId::new("push_batch", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut win = SlidingWindowStkde::<f32>::new(domain(), bandwidth(), window);
                    for chunk in points.chunks(batch) {
                        win.push_batch(chunk);
                    }
                    win.len()
                })
            },
        );
    }
    group.finish();
}

/// Raw cube updates without eviction: `insert` per event vs. one
/// `insert_batch` — isolates the per-call setup amortization.
fn bench_cube_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("streaming_cube_insert");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    let points = sorted_stream(1_000, 52);
    group.bench_function("insert_one_at_a_time", |b| {
        b.iter(|| {
            let mut cube = IncrementalStkde::<f32>::new(domain(), bandwidth());
            for &p in &points {
                cube.insert(p);
            }
            cube.len()
        })
    });
    group.bench_function("insert_batch", |b| {
        b.iter(|| {
            let mut cube = IncrementalStkde::<f32>::new(domain(), bandwidth());
            cube.insert_batch(&points);
            cube.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_window_ingest, bench_cube_insert);
criterion_main!(benches);
