//! Scheduler benchmark: the imbalanced `PB-SYM-PD` parity-class workload
//! under the shim's work-stealing pool vs. the old static-split execution.
//!
//! The instance is deliberately clustered, so after bandwidth adjustment
//! the per-parity-class task lists have a heavy-tailed cost distribution —
//! exactly the regime where the pre-work-stealing shim (fresh scoped
//! threads per operation, even item split) lost wall-clock time. Task
//! costs are the real `PD-SCHED` load model (points per subdomain ×
//! cylinder box volume), executed as a deterministic arithmetic burn so
//! the benchmark isolates *scheduling*, not kernel math; the end-to-end
//! `pd::run` is measured alongside for the record.
//!
//! `calib` is a fixed single-thread burn used by `bench_guard` to
//! normalize machine speed when comparing against the committed baseline.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rayon::prelude::*;
use stkde_core::parallel::{pd, pd_sched};
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Decomp, Domain, GridDims};
use stkde_kernels::Epanechnikov;

const THREADS: usize = 8;

fn instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(64, 64, 32));
    let spec = synth::ClusterSpec {
        clusters: 3,
        spatial_sigma: 0.03,
        background: 0.05,
        ..Default::default()
    };
    let points = spec.generate(4_000, domain.extent(), 7).into_vec();
    (
        Problem::new(domain, Bandwidth::new(4.0, 3.0), points.len()),
        points,
    )
}

/// Deterministic floating-point busy-work proportional to `cost`.
fn burn(cost: f64) -> f64 {
    let iters = cost as u64;
    let mut x = 1.000_000_1_f64;
    for _ in 0..iters {
        x = x * 1.000_000_3 + 1e-9;
    }
    x
}

/// Burn iterations per unit of `PD-SCHED` load-model weight. Scaled so
/// the whole 8-phase pass costs on the order of a millisecond — the
/// small-instance / serve-path regime where per-phase scheduling overhead
/// actually competes with compute (`pd_e2e_steal` below confirms the real
/// path sits in exactly this range).
const WEIGHT_SCALE: f64 = 0.15;

/// The parity-class task lists of the adjusted decomposition, with the
/// `PD-SCHED` load-model weight of every subdomain.
fn parity_workload(problem: &Problem, points: &[Point]) -> (Vec<Vec<usize>>, Vec<f64>) {
    let plan = pd_sched::plan(
        problem,
        points,
        Decomp::cubic(8),
        pd_sched::Ordering::Lexicographic,
    );
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); 8];
    for id in plan.decomposition.ids() {
        classes[plan.decomposition.parity_class(id)].push(id.0);
    }
    let weights = plan.weights.iter().map(|w| w * WEIGHT_SCALE).collect();
    (classes, weights)
}

/// The old shim's execution model, reproduced faithfully: for every
/// parity class, spawn fresh scoped threads and hand each an equal
/// contiguous share of the task list — no stealing, spawn cost per phase.
fn run_static_split(classes: &[Vec<usize>], weights: &[f64]) -> f64 {
    let mut acc = 0.0;
    for class in classes {
        if class.is_empty() {
            continue;
        }
        let chunk = class.len().div_ceil(THREADS);
        let partials = std::thread::scope(|scope| {
            let handles: Vec<_> = class
                .chunks(chunk)
                .map(|part| {
                    scope.spawn(move || part.iter().map(|&sd| burn(weights[sd])).sum::<f64>())
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("static worker panicked"))
                .sum::<f64>()
        });
        acc += partials;
    }
    acc
}

/// The same phases on the persistent work-stealing pool.
fn run_work_stealing(pool: &rayon::ThreadPool, classes: &[Vec<usize>], weights: &[f64]) -> f64 {
    pool.install(|| {
        let mut acc = 0.0;
        for class in classes {
            acc += class.par_iter().map(|&sd| burn(weights[sd])).sum::<f64>();
        }
        acc
    })
}

fn bench_work_stealing(c: &mut Criterion) {
    let (problem, points) = instance();
    let (classes, weights) = parity_workload(&problem, &points);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(THREADS)
        .build()
        .expect("pool");

    // Sanity: both schedulers must execute the identical task set.
    let a = run_static_split(&classes, &weights);
    let b = run_work_stealing(&pool, &classes, &weights);
    assert!((a - b).abs() <= a.abs() * 1e-12, "schedulers disagree");

    let mut group = c.benchmark_group(format!("work_stealing_t{THREADS}"));
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("calib", |b| b.iter(|| burn(black_box(2_000_000.0))));
    group.bench_function("parity_classes_static_split", |b| {
        b.iter(|| run_static_split(&classes, &weights))
    });
    group.bench_function("parity_classes_steal", |b| {
        b.iter(|| run_work_stealing(&pool, &classes, &weights))
    });
    group.bench_function("pd_e2e_steal", |b| {
        b.iter(|| {
            pd::run::<f32, _>(&problem, &Epanechnikov, &points, Decomp::cubic(8), THREADS).unwrap()
        })
    });

    // Subdomain count + heavy tail, for the record in bench logs.
    let n_tasks: usize = classes.iter().map(Vec::len).sum();
    let max_w = weights.iter().cloned().fold(0.0f64, f64::max);
    let mean_w: f64 = weights.iter().sum::<f64>() / weights.len() as f64;
    println!(
        "  (workload: {n_tasks} subdomains across 8 parity classes, \
         max/mean task cost = {:.1})",
        max_w / mean_w
    );
    group.finish();
}

criterion_group!(benches, bench_work_stealing);
criterion_main!(benches);
