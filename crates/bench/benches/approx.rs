//! Approximate serve path: mip-pyramid region/slice reads vs the exact
//! full-resolution fold.
//!
//! The measured unit is one wide query against a published
//! [`CubeSnapshot`] — the serve tier's read path, minus HTTP. Pyramids
//! are built once outside the timed region (the service builds them
//! lazily and reuses them across queries via copy-on-write slabs), so
//! the ids time steady-state serving, not first-touch construction.
//!
//! Alongside the wall-clock ids this bench verifies the certified error
//! bound over a sweep of random boxes and budgets and appends the
//! violation count to `$STKDE_BENCH_JSON` (as `approx/bound_violations`,
//! offset by the guard's positivity floor). `bench_guard` enforces two
//! in-run invariants over these records: the coarsest-level full-grid
//! region must beat the exact fold by at least 8x, and the violation
//! count must be zero. Both sides of each come from the same process on
//! the same host, so the invariants are machine-independent.

use std::io::Write as _;
use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stkde_core::{CubeSnapshot, Problem, ShardedWindowStkde};
use stkde_data::synth;
use stkde_grid::{Bandwidth, Domain, GridDims, VoxelRange};
use stkde_kernels::{Epanechnikov, Tabulated};

const SHARDS: usize = 4;

fn domain() -> Domain {
    Domain::from_dims(GridDims::new(64, 64, 32))
}

fn bandwidth() -> Bandwidth {
    Bandwidth::new(6.0, 4.0)
}

fn full_grid() -> VoxelRange {
    let dims = domain().dims();
    VoxelRange {
        x0: 0,
        x1: dims.gx,
        y0: 0,
        y1: dims.gy,
        t0: 0,
        t1: dims.gt,
    }
}

/// Append a record in the criterion shim's JSONL format (see
/// `saturation.rs` for the precedent).
fn record_json(id: &str, best_s: f64) {
    let Ok(path) = std::env::var("STKDE_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"id\":\"{id}\",\"best_s\":{best_s:e}}}");
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| writeln!(f, "{line}"))
        .unwrap_or_else(|e| eprintln!("warning: could not record {id} to {path}: {e}"));
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Certified-bound verification sweep: random boxes × budgets, counting
/// answers where `|approx − exact|` escapes the reported bound.
fn count_bound_violations(snap: &CubeSnapshot<f64>, base_err: f64) -> u64 {
    let dims = domain().dims();
    let mut rng = 0xD1B5_4A32_D192_ED03u64;
    let mut violations = 0u64;
    for _ in 0..200 {
        let mut axis = |hi: usize| {
            let a = (splitmix(&mut rng) as usize) % hi;
            let b = (splitmix(&mut rng) as usize) % hi;
            (a.min(b), a.max(b) + 1)
        };
        let (x0, x1) = axis(dims.gx);
        let (y0, y1) = axis(dims.gy);
        let (t0, t1) = axis(dims.gt);
        let r = VoxelRange {
            x0,
            x1,
            y0,
            y1,
            t0,
            t1,
        };
        let max_err = [0.02, 0.1, 0.5, 2.0][(splitmix(&mut rng) as usize) % 4];
        let a = snap.density_range_approx(r, max_err, base_err);
        let exact = snap.density_range(r);
        let ok = (a.stats.sum - exact.sum).abs() <= a.error_bound * exact.total as f64
            && (a.stats.max - exact.max).abs() <= a.error_bound
            && (a.stats.min - exact.min).abs() <= a.error_bound
            && a.stats.nonzero >= exact.nonzero;
        if !ok {
            violations += 1;
        }
    }
    violations
}

fn bench_approx(c: &mut Criterion) {
    let mut group = c.benchmark_group("approx");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));

    // The serve-tier arrangement: sharded cube, tabulated kernel, and
    // the kernel's certified error folded in as `base_err`.
    let kernel = Tabulated::new(Epanechnikov);
    let base_err = kernel.error_bound() * Problem::new(domain(), bandwidth(), 1).norm;
    let mut cube =
        ShardedWindowStkde::<f64, _>::with_kernel(domain(), bandwidth(), 1e9, SHARDS, kernel);
    let mut points = synth::uniform(2_000, domain().extent(), 67).into_vec();
    points.sort_by(|a, b| a.t.total_cmp(&b.t));
    cube.push_batch(&points);
    let snap = cube.publish();
    // Steady state: pyramids resident before anything is timed.
    snap.ensure_pyramids();

    let full = full_grid();
    group.bench_function("region_exact_full", |b| {
        b.iter(|| black_box(snap.density_range(black_box(full))))
    });
    // A budget generous enough that the coarsest level always certifies:
    // the walk accepts immediately, so this is the fast-path floor the
    // 8x in-run invariant holds the pyramid to.
    group.bench_function("region_approx_coarsest", |b| {
        b.iter(|| {
            let a = snap.density_range_approx(black_box(full), 8.0, base_err);
            assert!(a.level > 0, "generous budget must leave the exact path");
            black_box(a)
        })
    });
    // A serving-realistic budget: the walk may descend several levels
    // before one certifies. Tracked in the committed baseline.
    group.bench_function("region_approx_tight", |b| {
        b.iter(|| black_box(snap.density_range_approx(black_box(full), 0.05, base_err)))
    });
    let t_mid = domain().dims().gt / 2;
    group.bench_function("slice_exact", |b| {
        b.iter(|| black_box(snap.density_slice(black_box(t_mid))))
    });
    group.bench_function("slice_approx_coarse", |b| {
        b.iter(|| black_box(snap.density_slice_approx(black_box(t_mid), 2.0, base_err)))
    });
    group.finish();

    // In-run certified-bound verification (offset by 1e-9: the guard's
    // parser requires positive values; anything >= 1 is a violation).
    let violations = count_bound_violations(&snap, base_err);
    record_json("approx/bound_violations", violations as f64 + 1e-9);
}

criterion_group!(benches, bench_approx);
criterion_main!(benches);
