//! Scatter-engine benchmark: the vectorized, span-clipped per-point
//! `PB-SYM` scatter vs. the pre-engine loop it replaced.
//!
//! The pre-engine loop is reproduced here verbatim as `naive`: it fills
//! the full rectangular bounding box of the (circular) disk with per-voxel
//! `voxel_center`/`uv` calls, keeps the invariants in `f64`, and converts
//! `f64 → S` inside the innermost multiply-add — the three costs the
//! engine removes (per-axis offset tables, analytic chord clipping, and
//! native-scalar `axpy_row` rows). Both sides scatter the same points
//! into the same grid shape, so the ratio isolates the scatter itself.
//!
//! The sweep covers the paper-Table-2-shaped bandwidth regime (`Hs = 8`,
//! `Ht = 4` voxels) for `f32` (paper parity) and `f64` (validation
//! scalar), and three kernels: Epanechnikov (polynomial), truncated
//! Gaussian (`exp` per evaluation), and the `Tabulated` LUT wrapper over
//! the Gaussian — quantifying LUT × vectorization for the
//! `exp`-in-inner-loop case the LUT module docs call out.
//!
//! `bench_guard` enforces the in-run invariant
//! `scatter/sym_f32_epanechnikov_engine < …_naive` (core-count
//! independent, like the steal<static scheduler check).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stkde_core::kernel_apply::{apply_points_seq_with, PointKernel, Scratch};
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims, Scalar, VoxelRange};
use stkde_kernels::{Epanechnikov, SpaceTimeKernel, Tabulated, TruncatedGaussian};

fn instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(64, 64, 32));
    let points = synth::uniform(512, domain.extent(), 42).into_vec();
    (
        Problem::new(domain, Bandwidth::new(8.0, 4.0), points.len()),
        points,
    )
}

/// The pre-engine `PB-SYM` scatter, kept as the measured baseline:
/// full-box disk, per-voxel geometry, `f64` invariants, per-element
/// `f64 → S` conversion.
struct NaiveScratch {
    disk: Vec<f64>,
    bar: Vec<f64>,
}

fn naive_scatter<S: Scalar, K: SpaceTimeKernel>(
    grid: &mut Grid3<S>,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    scratch: &mut NaiveScratch,
) {
    let full = VoxelRange::full(problem.domain.dims());
    let norm = problem.norm;
    for p in points {
        let v = problem.domain.voxel_of(p.as_array());
        let r = problem
            .domain
            .cylinder_range(v, problem.vbw)
            .intersect(full);
        if r.is_empty() {
            continue;
        }
        scratch.disk.clear();
        for y in r.y0..r.y1 {
            let cy = problem.domain.voxel_center(0, y, 0)[1];
            for x in r.x0..r.x1 {
                let cx = problem.domain.voxel_center(x, 0, 0)[0];
                let (u, v) = problem.uv(cx, cy, p);
                scratch.disk.push(kernel.spatial(u, v) * norm);
            }
        }
        scratch.bar.clear();
        for t in r.t0..r.t1 {
            let ct = problem.domain.voxel_center(0, 0, t)[2];
            scratch.bar.push(kernel.temporal(problem.w(ct, p)));
        }
        let width = r.width_x();
        for (ti, t) in (r.t0..r.t1).enumerate() {
            let kt = scratch.bar[ti];
            if kt == 0.0 {
                continue;
            }
            for (yi, y) in (r.y0..r.y1).enumerate() {
                let row = grid.row_mut(y, t, r.x0, r.x1);
                let disk_row = &scratch.disk[yi * width..(yi + 1) * width];
                for (out, &ks) in row.iter_mut().zip(disk_row) {
                    *out += S::from_f64(ks * kt);
                }
            }
        }
    }
}

fn engine_scatter<S: Scalar, K: SpaceTimeKernel>(
    grid: &mut Grid3<S>,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
    scratch: &mut Scratch<S>,
) {
    apply_points_seq_with(
        PointKernel::Sym,
        grid,
        problem,
        kernel,
        points,
        VoxelRange::full(problem.domain.dims()),
        scratch,
    );
}

fn bench_pair<S: Scalar, K: SpaceTimeKernel>(
    group: &mut criterion::BenchmarkGroup<'_>,
    scalar: &str,
    kname: &str,
    problem: &Problem,
    kernel: &K,
    points: &[Point],
) {
    // Sanity: both loops must produce the same density field.
    let dims = problem.domain.dims();
    let (mut a, mut b): (Grid3<S>, Grid3<S>) = (Grid3::zeros(dims), Grid3::zeros(dims));
    let mut naive = NaiveScratch {
        disk: Vec::new(),
        bar: Vec::new(),
    };
    let mut scratch = Scratch::default();
    naive_scatter(&mut a, problem, kernel, points, &mut naive);
    engine_scatter(&mut b, problem, kernel, points, &mut scratch);
    let diff = a.max_rel_diff(&b, 1e-12);
    assert!(diff < 1e-6, "engine diverges from naive: {diff}");

    let mut grid: Grid3<S> = Grid3::zeros(dims);
    group.bench_function(format!("sym_{scalar}_{kname}_naive"), |bch| {
        bch.iter(|| {
            grid.as_mut_slice().fill(S::ZERO);
            naive_scatter(&mut grid, problem, kernel, black_box(points), &mut naive);
            black_box(grid.get(0, 0, 0))
        })
    });
    group.bench_function(format!("sym_{scalar}_{kname}_engine"), |bch| {
        bch.iter(|| {
            grid.as_mut_slice().fill(S::ZERO);
            engine_scatter(&mut grid, problem, kernel, black_box(points), &mut scratch);
            black_box(grid.get(0, 0, 0))
        })
    });
}

fn bench_scatter(c: &mut Criterion) {
    let (problem, points) = instance();
    let gauss = TruncatedGaussian::default();
    let lut = Tabulated::new(TruncatedGaussian::default());

    let mut group = c.benchmark_group("scatter");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    bench_pair::<f32, _>(
        &mut group,
        "f32",
        "epanechnikov",
        &problem,
        &Epanechnikov,
        &points,
    );
    bench_pair::<f64, _>(
        &mut group,
        "f64",
        "epanechnikov",
        &problem,
        &Epanechnikov,
        &points,
    );
    bench_pair::<f32, _>(&mut group, "f32", "gaussian", &problem, &gauss, &points);
    bench_pair::<f64, _>(&mut group, "f64", "gaussian", &problem, &gauss, &points);
    bench_pair::<f32, _>(&mut group, "f32", "tabulated", &problem, &lut, &points);
    bench_pair::<f64, _>(&mut group, "f64", "tabulated", &problem, &lut, &points);

    println!(
        "  (instance: {} points, Hs={} Ht={} voxels, box {} voxels/point)",
        points.len(),
        problem.vbw.hs,
        problem.vbw.ht,
        problem.vbw.cylinder_box_volume()
    );
    group.finish();
}

criterion_group!(benches, bench_scatter);
criterion_main!(benches);
