//! Sequential algorithm micro-benchmarks — Table 3 in miniature: the
//! VB → VB-DEC → PB → PB-DISK/PB-BAR → PB-SYM cost ladder on one small
//! instance.

use criterion::{criterion_group, criterion_main, Criterion};
use stkde_core::algorithms::{pb, pb_bar, pb_disk, pb_sym, vb, vb_dec};
use stkde_core::Problem;
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, GridDims};
use stkde_kernels::Epanechnikov;

fn instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(48, 48, 24));
    let points = synth::uniform(300, domain.extent(), 1).into_vec();
    (Problem::new(domain, Bandwidth::new(5.0, 3.0), 300), points)
}

fn bench_sequential(c: &mut Criterion) {
    let (problem, points) = instance();
    let k = Epanechnikov;
    let mut group = c.benchmark_group("sequential");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("vb", |b| {
        b.iter(|| vb::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("vb_dec", |b| {
        b.iter(|| vb_dec::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb", |b| {
        b.iter(|| pb::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb_disk", |b| {
        b.iter(|| pb_disk::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb_bar", |b| {
        b.iter(|| pb_bar::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("pb_sym", |b| {
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
