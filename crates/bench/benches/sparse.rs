//! Criterion micro-benchmarks for the Morton-brick sparse grid:
//!
//! * **Scatter** — dense vs sequential-sparse vs parallel-sparse `PB-SYM`
//!   on an init-dominated (Flu-like) and a compute-dominated
//!   (Dengue-like) miniature. `sparse/flu_scatter_par_t8` vs
//!   `sparse/flu_scatter_seq` feeds `bench_guard`'s in-run invariant:
//!   the shared-grid parallel path must never lose to the sequential
//!   path it wraps.
//! * **Reads** — the read side of a densely-populated grid through the
//!   Morton-brick table vs the retired row-major flat block table
//!   ([`stkde_bench::flatblock`]), identical payloads, differing only
//!   in table layout. Guarded: Morton assembly must be no worse than
//!   flat, and the per-voxel `get` sweep (which pays the bit-interleave
//!   per call) stays within a sanity bound.
//! * **Assemble** — `to_dense` of a sparse result (the export path).
//! * **Row writes** — the `add_row_f64` primitive on both layouts.
//!
//! Allocation-fraction context (occupancy, bricks touched) is printed
//! once outside the timed sections so harness logs carry the sparsity
//! alongside the times.

use criterion::{criterion_group, criterion_main, Criterion};
use stkde_bench::flatblock::FlatBlockGrid;
use stkde_core::algorithms::pb_sym;
use stkde_core::{sparse, Problem};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, Domain, Grid3, GridDims, SparseGrid3};
use stkde_kernels::Epanechnikov;

/// Flu-like: few points scattered over a large grid — init dominates.
fn sparse_instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(192, 192, 96));
    let points = synth::uniform(64, domain.extent(), 3).into_vec();
    (Problem::new(domain, Bandwidth::new(2.0, 2.0), 64), points)
}

/// Dengue-like: many clustered points on a small grid — compute dominates.
fn dense_instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(48, 48, 32));
    let points = synth::uniform(2000, domain.extent(), 4).into_vec();
    (Problem::new(domain, Bandwidth::new(6.0, 4.0), 2000), points)
}

fn bench_scatter(c: &mut Criterion) {
    let k = Epanechnikov;
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);

    let (problem, points) = sparse_instance();
    // Allocation-fraction context for the logs (untimed).
    {
        let (g, _) = sparse::run::<f32, _>(&problem, &k, &points);
        println!(
            "flu-like sparsity: {} of {} bricks allocated ({:.2}% occupancy, \
             {:.1} MiB sparse vs {:.1} MiB dense)",
            g.allocated_bricks(),
            g.table_len(),
            100.0 * g.occupancy(),
            g.allocated_bytes() as f64 / (1024.0 * 1024.0),
            problem.domain.dims().bytes::<f32>() as f64 / (1024.0 * 1024.0),
        );
    }
    group.bench_function("flu_dense_pb_sym", |b| {
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("flu_scatter_seq", |b| {
        b.iter(|| sparse::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("flu_scatter_par_t8", |b| {
        b.iter(|| sparse::run_par::<f32, _>(&problem, &k, &points, 8).unwrap())
    });
    group.bench_function("flu_assemble_to_dense", |b| {
        let (g, _) = sparse::run::<f32, _>(&problem, &k, &points);
        b.iter(|| g.to_dense())
    });

    let (problem, points) = dense_instance();
    group.bench_function("dengue_dense_pb_sym", |b| {
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("dengue_scatter_seq", |b| {
        b.iter(|| sparse::run::<f32, _>(&problem, &k, &points))
    });
    group.finish();
}

/// Read side of a densely-populated 64³ volume: the regime where the
/// old flat table was at its best (every block allocated, perfectly
/// predictable row-major table walk).
///
/// Two comparisons, with different standing:
/// - `read_assemble_*` — `to_dense()`, the assemble path the engine
///   actually reads results through. Gated by `bench_guard`: Morton
///   must be no worse than the flat table here.
/// - `read_voxels_*` — a per-voxel `get` sweep. Informative: Morton
///   pays the bit-interleave on every call, so it is held only to a
///   loose sanity bound, not parity.
fn bench_reads(c: &mut Criterion) {
    let dims = GridDims::new(64, 64, 64);
    let row: Vec<f64> = (0..dims.gx).map(|i| 0.25 + (i % 7) as f64).collect();
    let mut morton: SparseGrid3<f32> = SparseGrid3::new(dims);
    let mut flat: FlatBlockGrid<f32> = FlatBlockGrid::new(dims);
    for t in 0..dims.gt {
        for y in 0..dims.gy {
            morton.add_row_f64(y, t, 0, &row);
            flat.add_row_f64(y, t, 0, &row);
        }
    }
    assert_eq!(morton.allocated_bricks(), flat.allocated_blocks());
    assert_eq!(morton.to_dense(), flat.to_dense());

    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);
    group.bench_function("read_assemble_morton", |b| b.iter(|| morton.to_dense()));
    group.bench_function("read_assemble_flatblock", |b| b.iter(|| flat.to_dense()));
    group.bench_function("read_voxels_morton", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for t in 0..dims.gt {
                for y in 0..dims.gy {
                    for x in 0..dims.gx {
                        acc += morton.get(x, y, t);
                    }
                }
            }
            acc
        })
    });
    group.bench_function("read_voxels_flatblock", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for t in 0..dims.gt {
                for y in 0..dims.gy {
                    for x in 0..dims.gx {
                        acc += flat.get(x, y, t);
                    }
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_write_primitives(c: &mut Criterion) {
    let dims = GridDims::new(256, 64, 64);
    let vals = vec![0.5f64; 64];
    let mut group = c.benchmark_group("sparse");
    group.sample_size(10);

    group.bench_function("rowwrite_dense", |b| {
        let mut g: Grid3<f32> = Grid3::zeros(dims);
        b.iter(|| {
            for t in 0..64 {
                let row = g.row_mut(32, t, 64, 128);
                for (o, &v) in row.iter_mut().zip(&vals) {
                    *o += v as f32;
                }
            }
        })
    });
    group.bench_function("rowwrite_morton", |b| {
        let mut g: SparseGrid3<f32> = SparseGrid3::new(dims);
        b.iter(|| {
            for t in 0..64 {
                g.add_row_f64(32, t, 64, &vals);
            }
        })
    });
    group.bench_function("rowwrite_flatblock", |b| {
        let mut g: FlatBlockGrid<f32> = FlatBlockGrid::new(dims);
        b.iter(|| {
            for t in 0..64 {
                g.add_row_f64(32, t, 64, &vals);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_scatter, bench_reads, bench_write_primitives);
criterion_main!(benches);
