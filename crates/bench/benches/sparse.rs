//! Criterion micro-benchmarks for the block-sparse grid extension:
//! dense vs sparse `PB-SYM` on an init-dominated (Flu-like) and a
//! compute-dominated (Dengue-like) miniature, plus the raw write
//! primitives of both backends.

use criterion::{criterion_group, criterion_main, Criterion};
use stkde_core::algorithms::pb_sym;
use stkde_core::{sparse, Problem};
use stkde_data::{synth, Point};
use stkde_grid::{Bandwidth, BlockDims, Domain, Grid3, GridDims, SparseGrid3};
use stkde_kernels::Epanechnikov;

/// Flu-like: few points scattered over a large grid — init dominates.
fn sparse_instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(192, 192, 96));
    let points = synth::uniform(64, domain.extent(), 3).into_vec();
    (Problem::new(domain, Bandwidth::new(2.0, 2.0), 64), points)
}

/// Dengue-like: many clustered points on a small grid — compute dominates.
fn dense_instance() -> (Problem, Vec<Point>) {
    let domain = Domain::from_dims(GridDims::new(48, 48, 32));
    let points = synth::uniform(2000, domain.extent(), 4).into_vec();
    (Problem::new(domain, Bandwidth::new(6.0, 4.0), 2000), points)
}

fn bench_backends(c: &mut Criterion) {
    let k = Epanechnikov;
    let mut group = c.benchmark_group("sparse_backend");
    group.sample_size(10);

    let (problem, points) = sparse_instance();
    group.bench_function("flu_like/dense_pb_sym", |b| {
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("flu_like/sparse_pb_sym", |b| {
        b.iter(|| sparse::run::<f32, _>(&problem, &k, &points))
    });

    let (problem, points) = dense_instance();
    group.bench_function("dengue_like/dense_pb_sym", |b| {
        b.iter(|| pb_sym::run::<f32, _>(&problem, &k, &points))
    });
    group.bench_function("dengue_like/sparse_pb_sym", |b| {
        b.iter(|| sparse::run::<f32, _>(&problem, &k, &points))
    });
    group.finish();
}

fn bench_write_primitives(c: &mut Criterion) {
    let dims = GridDims::new(256, 64, 64);
    let vals = vec![0.5f64; 64];
    let mut group = c.benchmark_group("row_writes");

    group.bench_function("dense_row_add", |b| {
        let mut g: Grid3<f32> = Grid3::zeros(dims);
        b.iter(|| {
            for t in 0..64 {
                let row = g.row_mut(32, t, 64, 128);
                for (o, &v) in row.iter_mut().zip(&vals) {
                    *o += v as f32;
                }
            }
        })
    });
    group.bench_function("sparse_row_add", |b| {
        let mut g: SparseGrid3<f32> = SparseGrid3::with_blocks(dims, BlockDims::DEFAULT);
        b.iter(|| {
            for t in 0..64 {
                g.add_row_f64(32, t, 64, &vals);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_backends, bench_write_primitives);
criterion_main!(benches);
