//! Grid substrate micro-benchmarks: the `Θ(G)` initialization term that
//! dominates the sparse instances (paper Figure 7) and the DR reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stkde_grid::{reduce, Grid3, GridDims};

fn bench_init(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_init");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    for dims in [GridDims::new(64, 64, 64), GridDims::new(128, 128, 64)] {
        let mib = dims.bytes::<f32>() as f64 / (1024.0 * 1024.0);
        group.bench_with_input(
            BenchmarkId::new("zeros_lazy", format!("{dims}({mib:.0}MiB)")),
            &dims,
            |b, &d| b.iter(|| Grid3::<f32>::zeros(d)),
        );
        group.bench_with_input(
            BenchmarkId::new("zeros_touched", format!("{dims}({mib:.0}MiB)")),
            &dims,
            |b, &d| b.iter(|| Grid3::<f32>::zeros_touched(d)),
        );
        group.bench_with_input(
            BenchmarkId::new("zeros_parallel", format!("{dims}({mib:.0}MiB)")),
            &dims,
            |b, &d| b.iter(|| Grid3::<f32>::zeros_parallel(d)),
        );
    }
    group.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_reduce");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(1));
    let dims = GridDims::new(96, 96, 48);
    for p in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("replicas", p), &p, |b, &p| {
            b.iter_with_setup(
                || {
                    (0..p)
                        .map(|_| Grid3::<f32>::zeros_touched(dims))
                        .collect::<Vec<_>>()
                },
                reduce::reduce,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_init, bench_reduce);
criterion_main!(benches);
