//! Model-checked scenarios for the sparse grid's lock-free brick
//! allocation (`stkde_grid::brick`).
//!
//! Two writers race `add` calls through the real slot-load → CAS-install
//! path (compiled with `stkde-grid`'s `model` feature, which routes the
//! protocol's yield points through the deterministic scheduler). The
//! protocol's claim, checked at every preemption placement:
//!
//! * a brick is **published exactly once** — both writers' values land in
//!   the same payload, no write is lost to a discarded duplicate
//!   allocation, and the allocation counter says one brick;
//! * the CAS loser's zero-filled payload is dropped privately (the race
//!   counter may record the contention, but never a second publication);
//! * writers hitting *different* bricks never interact at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use stkde_analyze::sched_model::{Explorer, ModelCtx, Replay};
use stkde_grid::model::{clear_yield_hook, set_yield_hook, TestSparse};

/// Route the grid's instrumented yield points through the model
/// scheduler for the duration of `f` on this thread.
fn with_hook<R>(ctx: &ModelCtx, f: impl FnOnce() -> R) -> R {
    let c = ctx.clone();
    set_yield_hook(Box::new(move |label| c.step(label)));
    let r = f();
    clear_yield_hook();
    r
}

/// Two writers, disjoint voxels of the *same* brick: the slot CAS must
/// materialize that brick exactly once, and both writes must survive,
/// under every interleaving of the load/CAS yield points.
#[test]
fn racing_writers_publish_one_brick_exactly_once() {
    let saw_race = Arc::new(AtomicBool::new(false));
    let saw_race_outer = Arc::clone(&saw_race);
    let stats = Explorer::default().exhaustive(|| {
        let grid = TestSparse::new(16, 16, 16);
        let saw_race = Arc::clone(&saw_race);

        let g1 = grid.clone();
        let writer_a = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: the two writers target distinct voxels (0,0,0)
                // and (1,0,0); only the brick slot is contended.
                unsafe { g1.add_racing(0, 0, 0, 1.0) };
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        let g2 = grid.clone();
        let writer_b = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: disjoint voxel from writer_a, same brick.
                unsafe { g2.add_racing(1, 0, 0, 2.0) };
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        Replay {
            threads: vec![writer_a, writer_b],
            check: Box::new(move || {
                assert_eq!(grid.get(0, 0, 0), 1.0, "writer A's value lost");
                assert_eq!(grid.get(1, 0, 0), 2.0, "writer B's value lost");
                assert_eq!(
                    grid.allocated_bricks(),
                    1,
                    "one brick slot, one publication"
                );
                let races = grid.cas_races();
                assert!(races <= 1, "two writers can lose at most one CAS: {races}");
                if races == 1 {
                    saw_race.store(true, Ordering::Relaxed);
                }
            }),
        }
    });
    assert!(stats.complete, "scenario small enough to exhaust");
    assert!(stats.schedules > 1, "preemption points must fan out");
    // The interleaving where both writers pass the null slot-load before
    // either CASes is in the enumerated space, so the duplicate-alloc /
    // loser-discard path must actually have been exercised.
    assert!(
        saw_race_outer.load(Ordering::Relaxed),
        "no enumerated schedule hit the CAS-loser path"
    );
}

/// Two writers on different bricks: no shared slot, so no CAS can be
/// lost and both bricks materialize independently.
#[test]
fn writers_on_different_bricks_never_contend() {
    let stats = Explorer::default().exhaustive(|| {
        let grid = TestSparse::new(32, 16, 16);

        let g1 = grid.clone();
        let writer_a = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: voxel (0,0,0) is in brick (0,0,0); writer_b's
                // voxel is in brick (1,0,0) — fully disjoint.
                unsafe { g1.add_racing(0, 0, 0, 3.0) };
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        let g2 = grid.clone();
        let writer_b = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: disjoint voxel and brick from writer_a.
                unsafe { g2.add_racing(8, 0, 0, 4.0) };
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        Replay {
            threads: vec![writer_a, writer_b],
            check: Box::new(move || {
                assert_eq!(grid.get(0, 0, 0), 3.0);
                assert_eq!(grid.get(8, 0, 0), 4.0);
                assert_eq!(grid.allocated_bricks(), 2);
                assert_eq!(grid.cas_races(), 0, "distinct slots cannot contend");
            }),
        }
    });
    assert!(stats.complete, "scenario small enough to exhaust");
}
