//! Model-checked scenarios for the rayon shim's Chase–Lev deque and the
//! registry's sleep/wake protocol.
//!
//! These tests drive the *real* implementations (via `rayon::model`'s
//! facades, compiled with the `model` feature) under the deterministic
//! scheduler in `stkde_analyze::sched_model`. Every shared access inside
//! `deque.rs` / the `SleepGate` is a yield point, so exhaustive mode
//! enumerates every sequentially-consistent interleaving of the bounded
//! scenario; randomized mode samples larger spaces reproducibly.
//!
//! Invariants checked throughout: **conservation** (every pushed token is
//! claimed by exactly one of pop/steal/drain — nothing lost, nothing
//! duplicated, never the reserved `0` token that would signal a read of
//! an unpublished cell) and **no lost wakeups** (a sleeper never commits
//! to sleep after a publisher's notify has fully completed).

use rayon::model::{clear_yield_hook, set_yield_hook, TestDeque, TestSleepGate, TestSteal};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use stkde_analyze::sched_model::{Explorer, ModelCtx, Replay};

/// Route the rayon shim's instrumented yield points through the model
/// scheduler for the duration of `f` on this thread.
fn with_hook<R>(ctx: &ModelCtx, f: impl FnOnce() -> R) -> R {
    let c = ctx.clone();
    set_yield_hook(Box::new(move |label| c.step(label)));
    let r = f();
    clear_yield_hook();
    r
}

/// The single-element pop-vs-steal race: owner pushes one token and pops;
/// a thief steals concurrently. The CAS on `top` must hand the element to
/// exactly one side at every preemption placement.
#[test]
fn pop_vs_steal_single_element_exhaustive() {
    let stats = Explorer::default().exhaustive(|| {
        let deque = Arc::new(TestDeque::new());
        let popped = Arc::new(Mutex::new(None::<Option<usize>>));
        let stolen = Arc::new(Mutex::new(None::<TestSteal>));

        let d1 = Arc::clone(&deque);
        let p1 = Arc::clone(&popped);
        let owner = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: this model thread is the deque's only owner;
                // push/pop never run on any other thread in this scenario.
                unsafe {
                    d1.push(1);
                    *p1.lock().unwrap() = Some(d1.pop());
                }
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        let d2 = Arc::clone(&deque);
        let s2 = Arc::clone(&stolen);
        let thief = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                *s2.lock().unwrap() = Some(d2.steal());
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        Replay {
            threads: vec![owner, thief],
            check: Box::new(move || {
                let owner_got = matches!(*popped.lock().unwrap(), Some(Some(1)));
                let thief_got = matches!(*stolen.lock().unwrap(), Some(TestSteal::Success(1)));
                assert!(
                    owner_got ^ thief_got,
                    "token 1 must be claimed exactly once (owner: {owner_got}, thief: {thief_got})"
                );
                let mut deque =
                    Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("deque still shared"));
                assert_eq!(
                    deque.drain(),
                    Vec::<usize>::new(),
                    "claimed token still queued"
                );
            }),
        }
    });
    assert!(
        stats.complete,
        "exploration must exhaust the space: {stats:?}"
    );
    assert!(
        stats.schedules > 100,
        "bounded scenario should still branch richly: {stats:?}"
    );
}

/// Two thieves race for one prefilled element: exactly one CAS on `top`
/// may win; the loser must observe `Retry` or `Empty`, never a duplicate.
#[test]
fn two_thieves_one_element_exhaustive() {
    let stats = Explorer::default().exhaustive(|| {
        let deque = Arc::new(TestDeque::new());
        // SAFETY: prefill happens on this (main) thread before any model
        // thread exists — unshared, trivially owner-only.
        unsafe { deque.push(1) };
        let outcomes = Arc::new(Mutex::new(Vec::<TestSteal>::new()));

        let threads = (0..2)
            .map(|_| {
                let d = Arc::clone(&deque);
                let o = Arc::clone(&outcomes);
                Box::new(move |ctx: &ModelCtx| {
                    let got = with_hook(ctx, || d.steal());
                    o.lock().unwrap().push(got);
                }) as Box<dyn FnOnce(&ModelCtx) + Send>
            })
            .collect();

        Replay {
            threads,
            check: Box::new(move || {
                let outcomes = outcomes.lock().unwrap();
                let wins: Vec<usize> = outcomes
                    .iter()
                    .filter_map(|o| match o {
                        TestSteal::Success(v) => Some(*v),
                        _ => None,
                    })
                    .collect();
                assert_eq!(wins, vec![1], "exactly one thief must win: {outcomes:?}");
                let mut deque =
                    Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("deque still shared"));
                assert_eq!(deque.drain(), Vec::<usize>::new());
            }),
        }
    });
    assert!(stats.complete, "{stats:?}");
    assert!(stats.schedules > 100, "{stats:?}");
}

/// Steal racing a buffer grow: a 2-slot ring is prefilled, the owner's
/// third push doubles the buffer while a thief reads. The thief may see
/// the retired buffer (leaked, still valid — deque.rs module docs) but
/// must never surface a lost, duplicated, or unpublished (0) token.
#[test]
fn steal_during_grow_exhaustive() {
    let stats = Explorer::default().exhaustive(|| {
        let deque = Arc::new(TestDeque::with_capacity(2));
        // SAFETY: prefill on the main thread, before sharing.
        unsafe {
            deque.push(1);
            deque.push(2);
        }
        let stolen = Arc::new(Mutex::new(None::<TestSteal>));

        let d1 = Arc::clone(&deque);
        let owner = Box::new(move |ctx: &ModelCtx| {
            with_hook(ctx, || {
                // SAFETY: only this model thread pushes.
                unsafe { d1.push(3) };
            });
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        let d2 = Arc::clone(&deque);
        let s2 = Arc::clone(&stolen);
        let thief = Box::new(move |ctx: &ModelCtx| {
            let got = with_hook(ctx, || d2.steal());
            *s2.lock().unwrap() = Some(got);
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        Replay {
            threads: vec![owner, thief],
            check: Box::new(move || {
                let mut claimed = Vec::new();
                if let Some(TestSteal::Success(v)) = *stolen.lock().unwrap() {
                    claimed.push(v);
                }
                let mut deque =
                    Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("deque still shared"));
                claimed.extend(deque.drain());
                claimed.sort_unstable();
                assert_eq!(
                    claimed,
                    vec![1, 2, 3],
                    "conservation across grow: every token exactly once"
                );
            }),
        }
    });
    assert!(stats.complete, "{stats:?}");
    assert!(stats.schedules > 100, "{stats:?}");
}

/// The no-lost-wakeup invariant of the sleep gate, exhaustively: if a
/// publisher's `notify` fully completed before the sleeper's go-to-sleep
/// decision, the sleeper must NOT decide to sleep (either its rescan saw
/// the work or the epoch ticket went stale). This is the Dekker-style
/// pairing `registry.rs` documents, checked at every preemption point.
#[test]
fn sleep_gate_never_loses_a_wakeup_exhaustive() {
    let stats = Explorer::default().exhaustive(|| {
        let gate = Arc::new(TestSleepGate::new());
        let work = Arc::new(AtomicBool::new(false));
        // (publisher's notify-completion clock, sleeper's outcome).
        let publish_done = Arc::new(Mutex::new(None::<usize>));
        let decision = Arc::new(Mutex::new(None::<(bool, usize)>)); // (would_sleep, clock)
        let rescan_saw = Arc::new(Mutex::new(false));

        let g1 = Arc::clone(&gate);
        let w1 = Arc::clone(&work);
        let pd = Arc::clone(&publish_done);
        let publisher = Box::new(move |ctx: &ModelCtx| {
            ctx.step("work:publish");
            w1.store(true, Ordering::SeqCst);
            with_hook(ctx, || g1.notify());
            *pd.lock().unwrap() = Some(ctx.now());
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        let g2 = Arc::clone(&gate);
        let w2 = Arc::clone(&work);
        let dec = Arc::clone(&decision);
        let saw = Arc::clone(&rescan_saw);
        let sleeper = Box::new(move |ctx: &ModelCtx| {
            let ticket = with_hook(ctx, || g2.prepare_park());
            ctx.step("rescan");
            if w2.load(Ordering::SeqCst) {
                g2.cancel_park();
                *saw.lock().unwrap() = true;
            } else {
                let would = with_hook(ctx, || g2.would_sleep(ticket));
                *dec.lock().unwrap() = Some((would, ctx.now()));
            }
        }) as Box<dyn FnOnce(&ModelCtx) + Send>;

        Replay {
            threads: vec![publisher, sleeper],
            check: Box::new(move || {
                if let (Some((true, dec_at)), Some(done_at)) =
                    (*decision.lock().unwrap(), *publish_done.lock().unwrap())
                {
                    assert!(
                        done_at > dec_at,
                        "lost wakeup: notify completed at step {done_at}, yet the sleeper \
                         committed to sleep at step {dec_at} without having seen the work"
                    );
                }
            }),
        }
    });
    assert!(stats.complete, "{stats:?}");
    assert!(stats.schedules > 100, "{stats:?}");
}

/// A larger workload (3 tokens, one owner doing push/pop, two thieves
/// with bounded retries) sampled with seeded-random schedules. The
/// conservation invariant must hold on every sampled schedule, and the
/// sample itself must be a pure function of the seed.
#[test]
fn randomized_conservation_is_seed_reproducible() {
    let run = |seed: u64| {
        // Per-schedule outcome signatures, to compare runs byte-for-byte.
        let signatures = Arc::new(Mutex::new(Vec::<String>::new()));
        let sig_log = Arc::clone(&signatures);
        let stats = Explorer::default().random(seed, 200, move || {
            let deque = Arc::new(TestDeque::new());
            let claims = Arc::new(Mutex::new(Vec::<(&'static str, usize)>::new()));

            let d = Arc::clone(&deque);
            let c = Arc::clone(&claims);
            let owner = Box::new(move |ctx: &ModelCtx| {
                with_hook(ctx, || {
                    // SAFETY: single owner thread for push/pop.
                    unsafe {
                        for t in 1..=3usize {
                            d.push(t);
                        }
                        for _ in 0..3 {
                            if let Some(v) = d.pop() {
                                c.lock().unwrap().push(("pop", v));
                            }
                        }
                    }
                });
            }) as Box<dyn FnOnce(&ModelCtx) + Send>;

            let mut threads = vec![owner];
            for _ in 0..2 {
                let d = Arc::clone(&deque);
                let c = Arc::clone(&claims);
                threads.push(Box::new(move |ctx: &ModelCtx| {
                    with_hook(ctx, || {
                        let mut attempts = 0;
                        while attempts < 4 {
                            attempts += 1;
                            match d.steal() {
                                TestSteal::Success(v) => c.lock().unwrap().push(("steal", v)),
                                TestSteal::Empty => break,
                                TestSteal::Retry => {}
                            }
                        }
                    });
                }) as Box<dyn FnOnce(&ModelCtx) + Send>);
            }

            let sig = Arc::clone(&sig_log);
            Replay {
                threads,
                check: Box::new(move || {
                    let mut deque =
                        Arc::try_unwrap(deque).unwrap_or_else(|_| panic!("deque still shared"));
                    let claims = claims.lock().unwrap();
                    let mut all: Vec<usize> = claims.iter().map(|(_, v)| *v).collect();
                    all.extend(deque.drain());
                    all.sort_unstable();
                    assert_eq!(all, vec![1, 2, 3], "conservation violated: {claims:?}");
                    sig.lock().unwrap().push(format!("{claims:?}"));
                }),
            }
        });
        assert_eq!(stats.schedules, 200);
        Arc::try_unwrap(signatures).unwrap().into_inner().unwrap()
    };
    let a = run(0xDEC0DE);
    let b = run(0xDEC0DE);
    assert_eq!(
        a, b,
        "same seed must reproduce the identical schedule sample"
    );
}

/// Pinned-schedule regression corpus: the exhaustive runs above found no
/// invariant violations, so (per the audit issue) the interesting
/// preemption placements are committed as fixed replays — cheap guards
/// that rerun exact interleavings around the single-element CAS race.
#[test]
fn pinned_schedules_regression_corpus() {
    // Each entry: a schedule prefix biasing who advances at each decision
    // point (0 = owner, 1 = thief, clamped once a thread finishes).
    let corpus: &[&[usize]] = &[
        &[],                       // owner-first canonical run
        &[1, 1, 1, 1, 1, 1],       // thief races ahead of the push
        &[0, 0, 0, 1, 1, 1],       // thief arrives mid-push
        &[0, 0, 0, 0, 1, 0, 1, 0], // steal interleaved inside the pop
        &[1, 0, 1, 0, 1, 0, 1, 0], // strict alternation
        &[0, 1, 1, 0, 0, 1, 0, 1], // thief reads top/bottom around the fence
    ];
    for schedule in corpus {
        let deque = Arc::new(TestDeque::new());
        let popped = Arc::new(Mutex::new(None::<Option<usize>>));
        let stolen = Arc::new(Mutex::new(None::<TestSteal>));
        let (d1, d2) = (Arc::clone(&deque), Arc::clone(&deque));
        let (p1, s2) = (Arc::clone(&popped), Arc::clone(&stolen));
        Explorer::default().replay(schedule, move || Replay {
            threads: vec![
                Box::new(move |ctx: &ModelCtx| {
                    with_hook(ctx, || {
                        // SAFETY: single owner thread for push/pop.
                        unsafe {
                            d1.push(1);
                            *p1.lock().unwrap() = Some(d1.pop());
                        }
                    });
                }),
                Box::new(move |ctx: &ModelCtx| {
                    let got = with_hook(ctx, || d2.steal());
                    *s2.lock().unwrap() = Some(got);
                }),
            ],
            check: Box::new(|| {}),
        });
        let owner_got = matches!(*popped.lock().unwrap(), Some(Some(1)));
        let thief_got = matches!(*stolen.lock().unwrap(), Some(TestSteal::Success(1)));
        assert!(
            owner_got ^ thief_got,
            "schedule {schedule:?}: token claimed {}",
            if owner_got && thief_got {
                "twice"
            } else {
                "never"
            }
        );
    }
}

/// Panic propagation through the real (uninstrumented) pool: a panicking
/// join arm must re-raise on the joining side and leave the workers
/// serviceable — the invariant the per-job latches in the shim encode.
#[test]
fn real_pool_panic_propagation_survives() {
    for _ in 0..8 {
        let caught = std::panic::catch_unwind(|| {
            rayon::join(|| 1 + 1, || -> usize { panic!("model-checker smoke boom") });
        });
        assert!(caught.is_err(), "panic must cross the join");
        // The pool must keep scheduling real work afterwards.
        let (a, b) = rayon::join(|| 6 * 7, || 7 * 6);
        assert_eq!((a, b), (42, 42));
    }
}
