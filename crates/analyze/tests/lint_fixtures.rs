//! Fixture tests for `stkde-lint`: exact diagnostics, allowlist
//! semantics, and the binary's exit-code contract.
//!
//! Each test materializes a tiny fake workspace in a scratch directory
//! (the scanner skips directories literally named `fixtures`, precisely
//! so corpora like these are never linted as product code) and asserts
//! the lint's output byte-for-byte where it matters: `file:line: [ID]`
//! prefixes, waiver accounting, stale-entry failures.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use stkde_analyze::{allowlist, lint_tree};

/// A scratch workspace that cleans up after itself.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root =
            std::env::temp_dir().join(format!("stkde-lint-fixture-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).expect("creating fixture root");
        // The CLI refuses roots without a Cargo.toml.
        fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("writing manifest");
        Fixture { root }
    }

    fn write(&self, rel: &str, contents: &str) -> &Self {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().expect("file paths have parents"))
            .expect("creating fixture dirs");
        fs::write(path, contents).expect("writing fixture file");
        self
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

/// One file per rule; every diagnostic checked against its exact
/// `file:line: [ID] title` rendering.
#[test]
fn each_rule_fires_with_exact_diagnostics() {
    let fx = Fixture::new("diag");
    fx.write(
        "crates/comm/src/hot.rs",
        "fn f(p: *const u8) -> u8 {\n\
         \x20   let v = unsafe { *p };\n\
         \x20   let n = channel_rx.recv();\n\
         \x20   n.unwrap()\n\
         }\n",
    );
    fx.write(
        "crates/grid/src/counters.rs",
        "fn bump(c: &AtomicUsize) {\n\
         \x20   c.fetch_add(1, Ordering::Relaxed);\n\
         }\n",
    );
    fx.write(
        "crates/data/src/loader.rs",
        "fn go() {\n\
         \x20   std::thread::spawn(|| {});\n\
         }\n",
    );

    let outcome = lint_tree(&fx.root, &[]).expect("lint runs");
    let mut rendered: Vec<String> = outcome.violations.iter().map(|v| v.render()).collect();
    rendered.sort();
    assert_eq!(
        rendered,
        vec![
            "crates/comm/src/hot.rs:2: [STK001] `unsafe` without a SAFETY justification",
            "crates/comm/src/hot.rs:3: [STK005] blocking `recv()` without a deadline in crates/comm",
            "crates/comm/src/hot.rs:4: [STK003] panic path (`unwrap`/`expect`/`panic!`) in hot-crate non-test code",
            "crates/data/src/loader.rs:2: [STK004] raw thread spawn outside the sanctioned runtimes",
            "crates/grid/src/counters.rs:2: [STK002] `Ordering::Relaxed` outside the audited allowlist",
        ],
    );
    assert_eq!(outcome.suppressed, 0);
    assert!(outcome.stale_entries.is_empty());
    assert!(!outcome.is_clean());
}

/// A SAFETY comment within the lookback window waives STK001 without any
/// allowlist entry; `unsafe` in strings, comments, and identifiers never
/// fires at all.
#[test]
fn safety_comments_and_lexer_channels() {
    let fx = Fixture::new("channels");
    fx.write(
        "crates/core/src/ok.rs",
        "// SAFETY: slice bounds were checked by the caller.\n\
         let v = unsafe { slice.get_unchecked(i) };\n\
         let msg = \"unsafe panic!() .unwrap()\";\n\
         // this comment mentions unsafe and .unwrap() freely\n\
         let un_safe = 1;\n",
    );
    let outcome = lint_tree(&fx.root, &[]).expect("lint runs");
    assert!(
        outcome.violations.is_empty(),
        "false positives: {}",
        outcome.render()
    );
    assert!(outcome.is_clean());
}

/// Rules with `skip_test_code` ignore `#[cfg(test)]` regions and whole
/// `tests/` targets; STK001 deliberately still applies there.
#[test]
fn test_code_is_exempt_except_safety() {
    let fx = Fixture::new("testcode");
    fx.write(
        "crates/core/src/lib.rs",
        "fn real() {}\n\
         #[cfg(test)]\n\
         mod tests {\n\
         \x20   #[test]\n\
         \x20   fn t() { x.unwrap(); }\n\
         }\n",
    );
    fx.write(
        "crates/core/tests/integration.rs",
        "fn t() {\n\
         \x20   y.expect(\"test code may panic\");\n\
         \x20   let v = unsafe { raw() };\n\
         }\n",
    );
    let outcome = lint_tree(&fx.root, &[]).expect("lint runs");
    let rendered: Vec<String> = outcome.violations.iter().map(|v| v.render()).collect();
    assert_eq!(
        rendered,
        vec![
            "crates/core/tests/integration.rs:3: [STK001] `unsafe` without a SAFETY justification"
        ],
        "only the SAFETY rule follows into test code"
    );
}

/// Allowlist entries waive by (rule, path-prefix, line-substring); the
/// waiver is counted, and an entry matching nothing is stale and makes
/// the outcome dirty.
#[test]
fn allowlist_waives_and_detects_staleness() {
    let fx = Fixture::new("allow");
    fx.write(
        "crates/server/src/stats.rs",
        "fn bump(c: &AtomicUsize) {\n\
         \x20   c.fetch_add(1, Ordering::Relaxed);\n\
         }\n",
    );

    let live = allowlist::parse(
        "STK002 crates/server/src/stats.rs :: fetch_add(1, Ordering::Relaxed) :: monotonic stats counter, readers tolerate lag\n",
    )
    .expect("valid allowlist");
    let outcome = lint_tree(&fx.root, &live).expect("lint runs");
    assert!(outcome.is_clean(), "waived: {}", outcome.render());
    assert_eq!(outcome.suppressed, 1);

    let stale = allowlist::parse(
        "STK002 crates/server/src/stats.rs :: fetch_add(1, Ordering::Relaxed) :: monotonic stats counter, readers tolerate lag\n\
         STK003 crates/comm/src/gone.rs :: .unwrap() :: file was deleted last release\n",
    )
    .expect("valid allowlist");
    let outcome = lint_tree(&fx.root, &stale).expect("lint runs");
    assert!(!outcome.is_clean(), "stale waiver must fail the lint");
    assert_eq!(outcome.stale_entries.len(), 1);
    assert_eq!(outcome.stale_entries[0].rule_id, "STK003");
    assert!(
        outcome.render().contains("stale waiver matches nothing"),
        "{}",
        outcome.render()
    );
}

/// Allowlist parsing: reasons are mandatory, rule ids must exist.
#[test]
fn allowlist_grammar_is_strict() {
    assert!(
        allowlist::parse("STK003 * :: .unwrap() :: poisoning propagation is deliberate").is_ok()
    );
    let no_reason = allowlist::parse("STK003 * :: .unwrap()");
    assert!(no_reason.is_err());
    assert!(
        no_reason.unwrap_err().to_string().contains("reason"),
        "error must say the reason is missing"
    );
    assert!(allowlist::parse("STK042 * :: x :: bogus rule").is_err());
}

fn run_lint(args: &[&str], cwd: &Path) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_stkde-lint"))
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("running stkde-lint");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// The binary's exit-code contract: 0 clean, 1 violations/stale waivers,
/// 2 configuration errors.
#[test]
fn binary_exit_codes_and_output() {
    let fx = Fixture::new("bin");
    fx.write("crates/core/src/clean.rs", "fn fine() {}\n");
    let root = fx.root.to_string_lossy().into_owned();

    let (code, stdout, _) = run_lint(&[&root], &fx.root);
    assert_eq!(code, 0, "clean tree: {stdout}");
    assert!(stdout.contains("0 violation(s)"), "{stdout}");

    fx.write("crates/core/src/dirty.rs", "fn f() { oops.unwrap(); }\n");
    let (code, stdout, _) = run_lint(&[&root], &fx.root);
    assert_eq!(code, 1, "violations must exit 1: {stdout}");
    assert!(
        stdout.contains("crates/core/src/dirty.rs:1: [STK003]"),
        "diagnostic must be file:line-addressed: {stdout}"
    );
    assert!(
        stdout.contains("hint:"),
        "diagnostics carry fix hints: {stdout}"
    );

    // A waiver flips it back to clean...
    fs::write(
        fx.root.join("stkde-lint.allow"),
        "STK003 crates/core/src/dirty.rs :: oops.unwrap() :: fixture waiver\n",
    )
    .expect("writing allowlist");
    let (code, stdout, _) = run_lint(&[&root], &fx.root);
    assert_eq!(code, 0, "waived tree must be clean: {stdout}");
    assert!(stdout.contains("1 waived"), "{stdout}");

    // ...and a malformed allowlist is a configuration error.
    fs::write(fx.root.join("stkde-lint.allow"), "STK003 * :: broken\n").expect("writing allowlist");
    let (code, _, stderr) = run_lint(&[&root], &fx.root);
    assert_eq!(code, 2, "bad allowlist must exit 2: {stderr}");

    // Non-workspace root: configuration error.
    let (code, _, stderr) = run_lint(&["/nonexistent-stkde-path"], &fx.root);
    assert_eq!(code, 2, "{stderr}");

    // --list-rules prints the whole catalog.
    let (code, stdout, _) = run_lint(&["--list-rules"], &fx.root);
    assert_eq!(code, 0);
    for id in ["STK001", "STK002", "STK003", "STK004", "STK005"] {
        assert!(stdout.contains(id), "catalog missing {id}: {stdout}");
    }
}

/// The real workspace must lint clean with its checked-in allowlist —
/// the same gate CI runs, wired into `cargo test`.
#[test]
fn workspace_is_clean_under_checked_in_allowlist() {
    let ws_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analyze sits two levels below the workspace root")
        .to_path_buf();
    let outcome = stkde_analyze::lint::lint_workspace(&ws_root).expect("lint runs");
    assert!(
        outcome.is_clean(),
        "workspace must lint clean:\n{}",
        outcome.render()
    );
    assert!(
        outcome.files_scanned > 50,
        "suspiciously few files scanned ({}) — wrong root?",
        outcome.files_scanned
    );
}
