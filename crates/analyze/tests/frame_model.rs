//! Model-checked scenarios for `stkde-comm`'s chunked frame codec.
//!
//! The `FrameDecoder` itself is single-threaded; what *is* concurrent in
//! the real system is the arrival order of frames from multiple
//! connections into the server's pump loop. These scenarios model writer
//! threads racing chunks into a shared arrival queue under the
//! deterministic scheduler, then replay the queue in arrival order
//! through per-connection decoders — asserting that reassembly is
//! invariant under every cross-connection interleaving, and that
//! mis-multiplexing two tagged streams into one decoder is rejected at
//! exactly the interleavings where the tags actually interleave.

use std::sync::{Arc, Mutex};
use stkde_analyze::sched_model::{Explorer, ModelCtx, Replay};
use stkde_comm::payload::{encode_message, FrameDecoder, FRAME_HEADER_BYTES};

/// Cut `bytes` into `pieces` contiguous slices of roughly equal size
/// (deliberately NOT frame-aligned, so decoders see mid-header splits).
fn split_into(bytes: &[u8], pieces: usize) -> Vec<Vec<u8>> {
    let n = bytes.len();
    (0..pieces)
        .map(|i| bytes[n * i / pieces..n * (i + 1) / pieces].to_vec())
        .collect()
}

/// Two connections, each carrying one multi-frame message, their chunks
/// racing into the arrival queue: at every interleaving, per-connection
/// in-order delivery must reassemble both messages exactly.
#[test]
fn per_connection_reassembly_is_interleaving_invariant_exhaustive() {
    // Payloads sized to 3 frames each at chunk=8, then split into 4
    // unaligned arrival pieces per connection.
    let mut wires: Vec<Vec<u8>> = Vec::new();
    for conn in 0..2u32 {
        let payload: Vec<u8> = (0..20u8)
            .map(|b| b.wrapping_add(conn as u8 * 100))
            .collect();
        let mut wire = Vec::new();
        let frames = encode_message(10 + conn, &payload, 8, &mut wire);
        assert_eq!(frames, 3);
        wires.push(wire);
    }
    let wires = Arc::new(wires);

    let stats = Explorer::default().exhaustive(move || {
        let arrivals = Arc::new(Mutex::new(Vec::<(usize, Vec<u8>)>::new()));
        let threads = (0..2usize)
            .map(|conn| {
                let arrivals = Arc::clone(&arrivals);
                let pieces = split_into(&wires[conn], 4);
                Box::new(move |ctx: &ModelCtx| {
                    for piece in pieces {
                        ctx.step("arrival:push");
                        arrivals.lock().unwrap().push((conn, piece));
                    }
                }) as Box<dyn FnOnce(&ModelCtx) + Send>
            })
            .collect();
        Replay {
            threads,
            check: Box::new(move || {
                let arrivals = arrivals.lock().unwrap();
                let mut decoders = [FrameDecoder::new(), FrameDecoder::new()];
                for (conn, piece) in arrivals.iter() {
                    decoders[*conn].push(piece).expect("well-formed stream");
                }
                for (conn, dec) in decoders.iter_mut().enumerate() {
                    let msg = dec.next_message().expect("message must complete");
                    assert_eq!(msg.tag, 10 + conn as u32);
                    assert_eq!(msg.frames, 3);
                    let want: Vec<u8> = (0..20u8)
                        .map(|b| b.wrapping_add(conn as u8 * 100))
                        .collect();
                    assert_eq!(msg.bytes, want, "conn {conn} payload corrupted");
                    assert!(dec.next_message().is_none());
                    dec.finish().expect("no partial state may remain");
                }
            }),
        }
    });
    assert!(stats.complete, "{stats:?}");
    assert!(stats.schedules > 100, "{stats:?}");
}

/// Mis-multiplexing guard: two writers feed differently-tagged messages
/// into ONE decoder. The decoder must accept exactly the serialized
/// orders (one message wholly before the other) and reject with
/// `MixedTags` exactly when frames of both tags interleave mid-message —
/// verified against an independent oracle over the arrival log.
#[test]
fn single_decoder_rejects_mixed_tags_at_every_interleaving() {
    // Two frames per message so non-last and last frames exist.
    let mut wires: Vec<Vec<Vec<u8>>> = Vec::new();
    for tag in [1u32, 2u32] {
        let payload = vec![tag as u8; 10];
        let mut wire = Vec::new();
        let frames = encode_message(tag, &payload, 8, &mut wire);
        assert_eq!(frames, 2);
        // Split exactly at the frame boundary: piece 0 = frame 0 (not
        // last), piece 1 = frame 1 (FLAG_LAST).
        let cut = FRAME_HEADER_BYTES + 8;
        wires.push(vec![wire[..cut].to_vec(), wire[cut..].to_vec()]);
    }
    let wires = Arc::new(wires);

    let stats = Explorer::default().exhaustive(move || {
        let arrivals = Arc::new(Mutex::new(Vec::<(u32, bool, Vec<u8>)>::new()));
        let threads = (0..2usize)
            .map(|i| {
                let arrivals = Arc::clone(&arrivals);
                let frames = wires[i].clone();
                let tag = 1 + i as u32;
                Box::new(move |ctx: &ModelCtx| {
                    for (k, frame) in frames.into_iter().enumerate() {
                        ctx.step("arrival:frame");
                        arrivals.lock().unwrap().push((tag, k == 1, frame));
                    }
                }) as Box<dyn FnOnce(&ModelCtx) + Send>
            })
            .collect();
        Replay {
            threads,
            check: Box::new(move || {
                let arrivals = arrivals.lock().unwrap();
                // Oracle: walk the arrival order; an error is expected iff
                // some frame's tag differs from an open partial message.
                let mut open: Option<u32> = None;
                let mut expect_error = false;
                for (tag, last, _) in arrivals.iter() {
                    match open {
                        Some(t) if t != *tag => {
                            expect_error = true;
                            break;
                        }
                        _ => {}
                    }
                    open = if *last { None } else { Some(*tag) };
                }
                let mut dec = FrameDecoder::new();
                let mut got_error = false;
                for (_, _, frame) in arrivals.iter() {
                    if dec.push(frame).is_err() {
                        got_error = true;
                        break;
                    }
                }
                assert_eq!(
                    got_error,
                    expect_error,
                    "decoder verdict must match the tag-interleaving oracle \
                     (arrival order: {:?})",
                    arrivals
                        .iter()
                        .map(|(t, l, _)| (*t, *l))
                        .collect::<Vec<_>>()
                );
                if !got_error {
                    // Clean orders must still deliver both messages intact.
                    let a = dec.next_message().expect("first message");
                    let b = dec.next_message().expect("second message");
                    let mut tags = [a.tag, b.tag];
                    tags.sort_unstable();
                    assert_eq!(tags, [1, 2]);
                    assert_eq!(a.bytes, vec![a.tag as u8; 10]);
                    assert_eq!(b.bytes, vec![b.tag as u8; 10]);
                }
            }),
        }
    });
    assert!(stats.complete, "{stats:?}");
    // 2 threads × 2 frames: small space, but it must cover both clean and
    // mixed orders. (The >100 budget lives in the 3-writer random test.)
    assert!(stats.schedules >= 6, "{stats:?}");
}

/// Three connections with differently-sized messages and unaligned splits
/// under seeded-random schedules: the reassembly invariant must hold on
/// every sampled schedule, and the sample is reproducible by seed.
#[test]
fn three_connection_randomized_reassembly() {
    let run = |seed: u64| {
        let sigs = Arc::new(Mutex::new(Vec::<String>::new()));
        let sig_log = Arc::clone(&sigs);
        let stats = Explorer::default().random(seed, 150, move || {
            let arrivals = Arc::new(Mutex::new(Vec::<(usize, Vec<u8>)>::new()));
            let threads = (0..3usize)
                .map(|conn| {
                    let payload: Vec<u8> = (0..(7 + 9 * conn as u8)).collect();
                    let mut wire = Vec::new();
                    encode_message(conn as u32, &payload, 5, &mut wire);
                    let pieces = split_into(&wire, 3);
                    let arrivals = Arc::clone(&arrivals);
                    Box::new(move |ctx: &ModelCtx| {
                        for piece in pieces {
                            ctx.step("arrival:push");
                            arrivals.lock().unwrap().push((conn, piece));
                        }
                    }) as Box<dyn FnOnce(&ModelCtx) + Send>
                })
                .collect();
            let sig = Arc::clone(&sig_log);
            Replay {
                threads,
                check: Box::new(move || {
                    let arrivals = arrivals.lock().unwrap();
                    let mut decoders = [
                        FrameDecoder::new(),
                        FrameDecoder::new(),
                        FrameDecoder::new(),
                    ];
                    for (conn, piece) in arrivals.iter() {
                        decoders[*conn].push(piece).expect("well-formed stream");
                    }
                    for (conn, dec) in decoders.iter_mut().enumerate() {
                        let msg = dec.next_message().expect("message must complete");
                        assert_eq!(msg.tag, conn as u32);
                        let want: Vec<u8> = (0..(7 + 9 * conn as u8)).collect();
                        assert_eq!(msg.bytes, want);
                        dec.finish().expect("clean end of stream");
                    }
                    sig.lock().unwrap().push(format!(
                        "{:?}",
                        arrivals.iter().map(|(c, _)| *c).collect::<Vec<_>>()
                    ));
                }),
            }
        });
        assert_eq!(stats.schedules, 150);
        Arc::try_unwrap(sigs).unwrap().into_inner().unwrap()
    };
    let a = run(0xF4A3E);
    assert_eq!(a, run(0xF4A3E), "same seed must resample identically");
    assert_eq!(a.len(), 150);
}
