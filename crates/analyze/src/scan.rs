//! Line/token-level Rust source scanner.
//!
//! `stkde-lint` cannot use `syn` (crates.io is unreachable from the build
//! environment), so rules match against a *lexed view* of each line
//! instead of raw text: string literals, char literals, and comments are
//! blanked out of the code channel, comment text is extracted into its
//! own channel, and `#[cfg(test)]` / `#[test]` regions are tracked by
//! brace depth. That is enough to keep needle matching honest — the word
//! `unsafe` inside a doc comment or a string literal never triggers a
//! rule, and rules that only apply to non-test code skip test modules.
//!
//! The scanner is conservative where Rust's grammar is genuinely hairy
//! (e.g. it distinguishes lifetimes from char literals with a two-char
//! lookahead); the unit tests in this module pin the cases the rule set
//! relies on.

use std::fmt;
use std::path::{Path, PathBuf};

/// One scanned source line, split into channels.
#[derive(Debug, Clone)]
pub struct Line {
    /// Line number, 1-based.
    pub number: usize,
    /// The raw line as written.
    pub raw: String,
    /// Code channel: the raw line with strings, chars, and comments
    /// blanked (replaced by spaces, preserving column positions).
    pub code: String,
    /// Comment channel: the concatenated text of every comment that
    /// overlaps this line (line, block, and doc comments).
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` or `#[test]`
    /// region, or the whole file is a test/bench target.
    pub in_test: bool,
}

/// A scanned file: path relative to the scan root plus its lines.
#[derive(Debug)]
pub struct SourceFile {
    pub rel_path: String,
    pub lines: Vec<Line>,
}

impl fmt::Display for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} lines)", self.rel_path, self.lines.len())
    }
}

/// Lexer state that survives across lines.
#[derive(Default)]
struct LexState {
    /// Nesting depth of `/* */` block comments (they nest in Rust).
    block_comment: usize,
    /// Inside a regular `"..."` string (they may span lines).
    in_string: bool,
    /// Inside a raw string; the payload is the `#` count of its opener.
    raw_string: Option<usize>,
}

/// Test-region tracker: a `#[cfg(test)]`/`#[test]` attribute arms it, the
/// next opening brace at the recorded depth starts the region, and the
/// region ends when brace depth returns to its starting value.
#[derive(Default)]
struct TestTracker {
    depth: isize,
    /// A test attribute was seen; the next braced item is a test region.
    armed: bool,
    /// Depth at which the active region was opened.
    region_floor: Option<isize>,
}

impl TestTracker {
    fn observe(&mut self, code: &str, whole_file_is_test: bool) -> bool {
        if whole_file_is_test {
            return true;
        }
        let had_attr = code.contains("#[cfg(test)]")
            || code.contains("#[test]")
            || code.contains("#[cfg(all(test");
        if had_attr && self.region_floor.is_none() {
            self.armed = true;
        }
        let mut line_is_test = self.region_floor.is_some() || self.armed;
        for ch in code.chars() {
            match ch {
                '{' => {
                    if self.armed && self.region_floor.is_none() {
                        self.region_floor = Some(self.depth);
                        self.armed = false;
                    }
                    self.depth += 1;
                }
                '}' => {
                    self.depth -= 1;
                    if let Some(floor) = self.region_floor {
                        if self.depth <= floor {
                            self.region_floor = None;
                            // The closing line itself still counts as test.
                            line_is_test = true;
                        }
                    }
                }
                _ => {}
            }
        }
        line_is_test
    }
}

/// Scan one file's contents into lines. `whole_file_is_test` marks every
/// line as test code (used for `tests/` and `benches/` targets).
pub fn scan_source(rel_path: &str, contents: &str, whole_file_is_test: bool) -> SourceFile {
    let mut lex = LexState::default();
    let mut tests = TestTracker::default();
    let mut lines = Vec::new();
    for (idx, raw) in contents.lines().enumerate() {
        let (code, comment) = split_channels(raw, &mut lex);
        let in_test = tests.observe(&code, whole_file_is_test);
        lines.push(Line {
            number: idx + 1,
            raw: raw.to_string(),
            code,
            comment,
            in_test,
        });
    }
    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
    }
}

/// Split one raw line into (code-with-blanks, comment-text), advancing
/// the cross-line lexer state.
fn split_channels(raw: &str, lex: &mut LexState) -> (String, String) {
    let bytes: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < bytes.len() {
        // Continuations of multi-line constructs first.
        if lex.block_comment > 0 {
            let ch = bytes[i];
            if ch == '/' && bytes.get(i + 1) == Some(&'*') {
                lex.block_comment += 1;
                code.push_str("  ");
                i += 2;
                continue;
            }
            if ch == '*' && bytes.get(i + 1) == Some(&'/') {
                lex.block_comment -= 1;
                code.push_str("  ");
                i += 2;
                continue;
            }
            comment.push(ch);
            code.push(' ');
            i += 1;
            continue;
        }
        if lex.in_string {
            let ch = bytes[i];
            if ch == '\\' {
                code.push_str("  ");
                i += 2;
                continue;
            }
            if ch == '"' {
                lex.in_string = false;
                code.push('"');
            } else {
                code.push(' ');
            }
            i += 1;
            continue;
        }
        if let Some(hashes) = lex.raw_string {
            // Look for `"###` with the right number of hashes.
            if bytes[i] == '"' && closes_raw(&bytes, i + 1, hashes) {
                lex.raw_string = None;
                code.push('"');
                for _ in 0..hashes {
                    code.push(' ');
                }
                i += 1 + hashes;
            } else {
                code.push(' ');
                i += 1;
            }
            continue;
        }

        let ch = bytes[i];
        match ch {
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment (incl. /// and //!): rest of line.
                comment.push_str(&raw[char_offset(raw, i)..]);
                while code.len() < raw.len() {
                    code.push(' ');
                }
                break;
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                lex.block_comment += 1;
                code.push_str("  ");
                i += 2;
            }
            '"' => {
                lex.in_string = true;
                code.push('"');
                i += 1;
            }
            'r' | 'b' if starts_raw_string(&bytes, i) => {
                let (hashes, consumed) = raw_string_open(&bytes, i);
                lex.raw_string = Some(hashes);
                for _ in 0..consumed {
                    code.push(' ');
                }
                i += consumed;
            }
            'b' if bytes.get(i + 1) == Some(&'"') && !is_ident_tail(&bytes, i) => {
                lex.in_string = true;
                code.push_str(" \"");
                i += 2;
            }
            '\'' => {
                if let Some(end) = char_literal_end(&bytes, i) {
                    for _ in i..end {
                        code.push(' ');
                    }
                    i = end;
                } else {
                    // A lifetime: keep the tick out of the code channel,
                    // it cannot open anything.
                    code.push(' ');
                    i += 1;
                }
            }
            _ => {
                code.push(ch);
                i += 1;
            }
        }
    }
    (code, comment)
}

/// Does `bytes[i..]` start a raw (byte) string: `r"`, `r#"`, `br"`, ...?
fn starts_raw_string(bytes: &[char], i: usize) -> bool {
    if is_ident_tail(bytes, i) {
        return false;
    }
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
        if bytes.get(j) != Some(&'r') {
            return false;
        }
    }
    if bytes.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&'#') {
        j += 1;
    }
    bytes.get(j) == Some(&'"')
}

/// `(hash_count, chars_consumed)` of a raw-string opener at `i`.
fn raw_string_open(bytes: &[char], i: usize) -> (usize, usize) {
    let mut j = i;
    if bytes[j] == 'b' {
        j += 1;
    }
    j += 1; // the `r`
    let mut hashes = 0;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    j += 1; // the opening quote
    (hashes, j - i)
}

fn closes_raw(bytes: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| bytes.get(from + k) == Some(&'#'))
}

/// Is the char before `i` part of an identifier (so `bar"x"` is not a
/// raw string and `b` is just the end of an ident)?
fn is_ident_tail(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If a char literal starts at `i` (which holds `'`), return the index
/// one past its closing quote; `None` means it is a lifetime.
fn char_literal_end(bytes: &[char], i: usize) -> Option<usize> {
    let next = bytes.get(i + 1)?;
    if *next == '\\' {
        // Escaped char: scan forward to the closing quote.
        let mut j = i + 2;
        while j < bytes.len() {
            if bytes[j] == '\\' {
                j += 2;
                continue;
            }
            if bytes[j] == '\'' {
                return Some(j + 1);
            }
            j += 1;
        }
        return None;
    }
    if bytes.get(i + 2) == Some(&'\'') && *next != '\'' {
        return Some(i + 3);
    }
    None
}

/// Byte offset of the `idx`-th char of `s`.
fn char_offset(s: &str, idx: usize) -> usize {
    s.char_indices().nth(idx).map(|(o, _)| o).unwrap_or(s.len())
}

/// Directories never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "node_modules"];

/// Path fragments that mark a whole file as test code.
const TEST_PATH_MARKS: &[&str] = &["/tests/", "/benches/"];

/// Recursively collect every `.rs` file under `root`, skipping build
/// output and fixture corpora. Paths come back sorted for deterministic
/// diagnostics.
pub fn collect_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Scan a file from disk, classifying `tests/`/`benches/` targets as
/// all-test code.
pub fn scan_file(root: &Path, path: &Path) -> std::io::Result<SourceFile> {
    let rel = path
        .strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/");
    let contents = std::fs::read_to_string(path)?;
    let slashed = format!("/{rel}");
    let whole_file_is_test = TEST_PATH_MARKS.iter().any(|m| slashed.contains(m));
    Ok(scan_source(&rel, &contents, whole_file_is_test))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> SourceFile {
        scan_source("x.rs", src, false)
    }

    #[test]
    fn strings_are_blanked() {
        let f = scan(r#"let x = "unsafe panic!()"; y();"#);
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].code.contains("y();"));
    }

    #[test]
    fn line_comments_go_to_comment_channel() {
        let f = scan("foo(); // SAFETY: unsafe ok");
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].comment.contains("SAFETY:"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = scan("a();\n/* unsafe\n still unsafe */ b();\nc();");
        assert!(!f.lines[1].code.contains("unsafe"));
        assert!(!f.lines[2].code.contains("unsafe"));
        assert!(f.lines[2].code.contains("b();"));
        assert!(f.lines[1].comment.contains("unsafe"));
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("/* a /* b */ still */ code();");
        assert!(f.lines[0].code.contains("code();"));
        assert!(!f.lines[0].code.contains("still"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan(r###"let s = r#"unsafe " quote"# ; after();"###);
        assert!(!f.lines[0].code.contains("unsafe"));
        assert!(f.lines[0].code.contains("after();"));
    }

    #[test]
    fn multiline_strings_are_blanked() {
        let f = scan("let s = \"line one\nunsafe line two\"; done();");
        assert!(!f.lines[1].code.contains("unsafe"));
        assert!(f.lines[1].code.contains("done();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) { g::<'static>(x) }");
        // The braces must survive so depth tracking works.
        assert!(f.lines[0].code.contains('{'));
        assert!(f.lines[0].code.contains('}'));
    }

    #[test]
    fn char_literals_with_braces_are_blanked() {
        let f = scan(r"let open = '{'; let uni = '\u{1F600}'; h();");
        assert!(!f.lines[0].code.contains('{'));
        assert!(f.lines[0].code.contains("h();"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src =
            "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn real2() {}";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test, "attribute line counts as test");
        assert!(f.lines[2].in_test);
        assert!(f.lines[3].in_test);
        assert!(f.lines[4].in_test, "closing brace still in region");
        assert!(!f.lines[5].in_test, "region ends after closing brace");
    }

    #[test]
    fn test_attr_fn_is_tracked() {
        let src = "#[test]\nfn check() {\n    boom();\n}\nfn real() {}";
        let f = scan(src);
        assert!(f.lines[2].in_test);
        assert!(!f.lines[4].in_test);
    }

    #[test]
    fn whole_file_test_flag() {
        let f = scan_source("tests/t.rs", "fn f() {}", true);
        assert!(f.lines[0].in_test);
    }

    #[test]
    fn cfg_test_in_string_does_not_arm() {
        let f = scan("let s = \"#[cfg(test)]\";\nfn real() { x(); }");
        assert!(!f.lines[1].in_test);
    }
}
