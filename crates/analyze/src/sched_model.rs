//! A loom-style deterministic scheduler for model-checking the
//! workspace's hand-rolled concurrency.
//!
//! # Model
//!
//! A *scenario* is a set of thread bodies plus a post-run check. The
//! bodies run on real OS threads, but every shared-memory access is
//! bracketed by a *yield point* (either an explicit [`ModelCtx::step`]
//! call, or — for the rayon shim's real deque/sleep-gate code — the
//! `rayon::model` instrumentation seam routed into [`ModelCtx::step`]).
//! The scheduler enforces that **exactly one thread runs at a time** and
//! that it runs only from one yield point to the next, so a schedule
//! (the sequence of "which thread goes next" choices) fully determines
//! the execution.
//!
//! Two exploration modes:
//!
//! * [`Explorer::exhaustive`] — depth-first enumeration of *every*
//!   schedule, by replaying the scenario with a growing choice prefix
//!   and backtracking. Because execution is serialized, this explores
//!   all sequentially-consistent interleavings of the instrumented
//!   accesses. (It deliberately does not model weaker-than-SC
//!   reorderings — that is what the best-effort Miri/TSan CI jobs and
//!   the fence comments in `deque.rs` are for. What it *does* catch is
//!   the whole class of lost/duplicated-update and lost-wakeup logic
//!   races, at every possible preemption placement.)
//! * [`Explorer::random`] — seeded pseudo-random schedules for
//!   scenarios whose full interleaving space is too large. The same
//!   seed always yields the same schedule sequence, so a failure found
//!   in CI reproduces locally and can be pinned as a regression test
//!   with [`Explorer::replay`].
//!
//! On an invariant failure (a panic in a body or in the check), the
//! harness re-raises the panic with the offending schedule attached, so
//! the exact interleaving can be replayed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// What a thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Parked at a yield point, waiting to be granted a step.
    Blocked,
    /// Granted; executing code between two yield points.
    Running,
    Done,
}

struct SchedState {
    phase: Vec<Phase>,
    /// Thread granted the next step (consumed by that thread).
    granted: Option<usize>,
    /// Global step counter; doubles as a logical clock for scenarios.
    steps: usize,
    /// First panic payload message captured from a body.
    failed: Option<String>,
}

struct SchedShared {
    m: Mutex<SchedState>,
    cv: Condvar,
}

/// Per-thread handle passed to scenario bodies.
#[derive(Clone)]
pub struct ModelCtx {
    shared: Arc<SchedShared>,
    tid: usize,
    clock: Arc<AtomicUsize>,
}

impl ModelCtx {
    /// Yield to the scheduler; returns when this thread is granted its
    /// next step. `label` names the shared access about to happen (used
    /// only for debugging; scheduling is label-agnostic).
    pub fn step(&self, _label: &str) {
        let mut st = self.shared.m.lock().expect("model scheduler poisoned");
        st.phase[self.tid] = Phase::Blocked;
        self.shared.cv.notify_all();
        loop {
            if st.granted == Some(self.tid) {
                st.granted = None;
                st.phase[self.tid] = Phase::Running;
                return;
            }
            // Abandon ship once some body has failed: the explorer only
            // wants every thread out of the way so it can report.
            if st.failed.is_some() {
                st.granted = None;
                st.phase[self.tid] = Phase::Running;
                return;
            }
            let (guard, timed_out) = self
                .shared
                .cv
                .wait_timeout(st, Duration::from_secs(30))
                .expect("model scheduler poisoned");
            st = guard;
            assert!(
                !timed_out.timed_out(),
                "model thread {} starved for 30s — scheduler bug or a body \
                 blocked outside a yield point",
                self.tid
            );
        }
    }

    /// The scheduler's logical clock: total steps granted so far.
    /// Scenarios use it to order events ("the publish completed before
    /// the sleep decision") without `Instant`.
    pub fn now(&self) -> usize {
        self.clock.load(Ordering::SeqCst)
    }
}

/// One scenario instantiation: fresh thread bodies plus a post-run check
/// (which runs after every body has finished, with exclusive access to
/// whatever state the bodies shared).
pub struct Replay {
    pub threads: Vec<ThreadBody>,
    pub check: Box<dyn FnOnce() + 'static>,
}

/// One model thread: runs to completion under the cooperative scheduler,
/// yielding at every instrumented point via the [`ModelCtx`] it receives.
pub type ThreadBody = Box<dyn FnOnce(&ModelCtx) + Send + 'static>;

/// Statistics from an exploration run.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Schedules fully executed.
    pub schedules: usize,
    /// Length of the longest schedule (in scheduling decisions).
    pub max_decisions: usize,
    /// True when exhaustive exploration finished the whole space (never
    /// set by `random`).
    pub complete: bool,
}

/// Scheduling policy for one replay.
enum Policy<'a> {
    /// Follow `prefix`, then always pick the lowest-numbered enabled
    /// thread, recording the choices made.
    Dfs {
        prefix: &'a mut Vec<usize>,
        sizes: &'a mut Vec<usize>,
    },
    /// Seeded xorshift choices.
    Random { state: u64 },
    /// Fixed schedule (regression replay); past its end, lowest-first.
    Fixed {
        schedule: &'a [usize],
        cursor: usize,
    },
}

impl Policy<'_> {
    /// Pick an index into `enabled` (which has ≥ 2 entries).
    fn choose(&mut self, decision: usize, n_enabled: usize) -> usize {
        match self {
            Policy::Dfs { prefix, sizes } => {
                if sizes.len() <= decision {
                    sizes.resize(decision + 1, 0);
                }
                sizes[decision] = n_enabled;
                if decision < prefix.len() {
                    // A shorter-than-recorded enabled set can occur when
                    // an earlier divergence changed control flow; clamp.
                    prefix[decision].min(n_enabled - 1)
                } else {
                    prefix.push(0);
                    0
                }
            }
            Policy::Random { state } => {
                // xorshift64 — deterministic for a given seed.
                let mut x = *state;
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                *state = x;
                (x % n_enabled as u64) as usize
            }
            Policy::Fixed { schedule, cursor } => {
                let c = schedule.get(*cursor).copied().unwrap_or(0);
                *cursor += 1;
                c.min(n_enabled - 1)
            }
        }
    }
}

/// The model-checking driver. See the module docs for the two modes.
pub struct Explorer {
    /// Hard cap on schedules explored by `exhaustive` (guards CI time;
    /// hitting it leaves `Stats::complete == false`).
    pub max_schedules: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_schedules: 200_000,
        }
    }
}

impl Explorer {
    /// Exhaustively explore every schedule of the scenario, re-raising
    /// the first invariant failure with its schedule attached.
    pub fn exhaustive(&self, mut make: impl FnMut() -> Replay) -> Stats {
        let mut stats = Stats::default();
        let mut prefix: Vec<usize> = Vec::new();
        loop {
            let mut sizes: Vec<usize> = Vec::new();
            let decisions = {
                let policy = Policy::Dfs {
                    prefix: &mut prefix,
                    sizes: &mut sizes,
                };
                run_one(make(), policy, &prefix_snapshot_label(&stats))
            };
            stats.schedules += 1;
            stats.max_decisions = stats.max_decisions.max(decisions);
            if stats.schedules >= self.max_schedules {
                return stats;
            }
            // Backtrack: bump the last choice that still has siblings.
            let mut advanced = false;
            while let Some(last) = prefix.pop() {
                let k = prefix.len();
                if last + 1 < sizes.get(k).copied().unwrap_or(0) {
                    prefix.push(last + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                stats.complete = true;
                return stats;
            }
        }
    }

    /// Run `iters` seeded-random schedules. Reproducible: the schedule
    /// sequence is a pure function of `seed`.
    pub fn random(&self, seed: u64, iters: usize, mut make: impl FnMut() -> Replay) -> Stats {
        let mut stats = Stats::default();
        for i in 0..iters {
            // Distinct, deterministic stream per iteration (SplitMix-ish
            // mixing so consecutive seeds do not correlate).
            let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
            s ^= s >> 30;
            s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s ^= s >> 27;
            let decisions = run_one(
                make(),
                Policy::Random { state: s | 1 },
                &format!("random(seed={seed}, iter={i})"),
            );
            stats.schedules += 1;
            stats.max_decisions = stats.max_decisions.max(decisions);
        }
        stats
    }

    /// Replay one fixed schedule (as reported by a failure message) —
    /// the regression-test entry point.
    pub fn replay(&self, schedule: &[usize], make: impl FnOnce() -> Replay) {
        run_one(
            make(),
            Policy::Fixed {
                schedule,
                cursor: 0,
            },
            &format!("replay({schedule:?})"),
        );
    }
}

fn prefix_snapshot_label(stats: &Stats) -> String {
    format!("exhaustive(schedule #{})", stats.schedules)
}

/// Run one replay under `policy`; returns the number of scheduling
/// decisions taken. Panics (with `label` and the schedule) if a body or
/// the check fails.
fn run_one(replay: Replay, mut policy: Policy<'_>, label: &str) -> usize {
    let n = replay.threads.len();
    let shared = Arc::new(SchedShared {
        m: Mutex::new(SchedState {
            phase: vec![Phase::Running; n],
            granted: None,
            steps: 0,
            failed: None,
        }),
        cv: Condvar::new(),
    });
    let clock = Arc::new(AtomicUsize::new(0));

    let mut handles = Vec::with_capacity(n);
    for (tid, body) in replay.threads.into_iter().enumerate() {
        let ctx = ModelCtx {
            shared: Arc::clone(&shared),
            tid,
            clock: Arc::clone(&clock),
        };
        handles.push(
            std::thread::Builder::new()
                .name(format!("model-{tid}"))
                .spawn(move || {
                    // Park immediately: even the first instruction of a
                    // body only runs once scheduled.
                    ctx.step("spawn");
                    let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
                    let mut st = ctx.shared.m.lock().expect("model scheduler poisoned");
                    if let Err(p) = result {
                        if st.failed.is_none() {
                            // `&*p`, not `&p`: a `&Box<dyn Any>` would
                            // unsize to a dyn Any over the *Box*, and the
                            // payload downcasts would always miss.
                            st.failed = Some(panic_message(&*p));
                        }
                    }
                    st.phase[tid] = Phase::Done;
                    ctx.shared.cv.notify_all();
                })
                .expect("spawning a model thread"),
        );
    }

    // The scheduler loop: wait for quiescence, pick, grant.
    let mut decisions = 0usize;
    let mut trace: Vec<usize> = Vec::new();
    loop {
        let mut st = shared.m.lock().expect("model scheduler poisoned");
        loop {
            let any_running = st.phase.contains(&Phase::Running);
            if !any_running && st.granted.is_none() {
                break;
            }
            if st.failed.is_some() {
                break;
            }
            let (guard, timed_out) = shared
                .cv
                .wait_timeout(st, Duration::from_secs(30))
                .expect("model scheduler poisoned");
            st = guard;
            assert!(
                !timed_out.timed_out(),
                "model scheduler starved for 30s under {label} (schedule so far: {trace:?})"
            );
        }
        if st.failed.is_some() {
            // Release every parked thread so they can run to completion.
            shared.cv.notify_all();
            let done = st.phase.iter().all(|p| *p == Phase::Done);
            if done {
                let msg = st.failed.clone().unwrap_or_default();
                drop(st);
                join_all(handles);
                panic!("model invariant failed under {label}: {msg} (schedule: {trace:?})");
            }
            drop(st);
            std::thread::yield_now();
            continue;
        }
        let enabled: Vec<usize> = st
            .phase
            .iter()
            .enumerate()
            .filter(|(_, p)| **p == Phase::Blocked)
            .map(|(i, _)| i)
            .collect();
        if enabled.is_empty() {
            // All done.
            break;
        }
        let pick = if enabled.len() == 1 {
            // No branching — not a decision point.
            enabled[0]
        } else {
            let c = policy.choose(decisions, enabled.len());
            decisions += 1;
            trace.push(c);
            enabled[c]
        };
        st.granted = Some(pick);
        st.steps += 1;
        clock.store(st.steps, Ordering::SeqCst);
        drop(st);
        shared.cv.notify_all();
    }
    drop(shared);
    join_all(handles);

    // Bodies done and joined: the check has exclusive access.
    if let Err(p) = catch_unwind(AssertUnwindSafe(replay.check)) {
        panic!(
            "model invariant failed under {label}: {} (schedule: {trace:?})",
            panic_message(&*p)
        );
    }
    decisions
}

fn join_all(handles: Vec<std::thread::JoinHandle<()>>) {
    for h in handles {
        // Body panics were already captured via catch_unwind; a join
        // error here would mean the runner itself died, which the
        // scheduler treats as a failed invariant anyway.
        let _ = h.join();
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Two threads, three grants each (the implicit spawn yield plus two
    /// explicit steps): the interleaving count must be the full
    /// multinomial C(6,3) = 20.
    #[test]
    fn exhaustive_counts_all_interleavings() {
        let stats = Explorer::default().exhaustive(|| Replay {
            threads: (0..2)
                .map(|_| {
                    Box::new(move |ctx: &ModelCtx| {
                        ctx.step("a");
                        ctx.step("b");
                    }) as Box<dyn FnOnce(&ModelCtx) + Send>
                })
                .collect(),
            check: Box::new(|| {}),
        });
        assert!(stats.complete);
        assert_eq!(stats.schedules, 20, "{stats:?}");
    }

    /// The classic non-atomic increment: exhaustive exploration must
    /// find the lost-update interleaving.
    #[test]
    fn finds_lost_update() {
        let found = catch_unwind(AssertUnwindSafe(|| {
            Explorer::default().exhaustive(|| {
                let cell = Arc::new(AtomicUsize::new(0));
                let threads = (0..2)
                    .map(|_| {
                        let cell = Arc::clone(&cell);
                        Box::new(move |ctx: &ModelCtx| {
                            ctx.step("load");
                            let v = cell.load(Ordering::SeqCst);
                            ctx.step("store");
                            cell.store(v + 1, Ordering::SeqCst);
                        }) as Box<dyn FnOnce(&ModelCtx) + Send>
                    })
                    .collect();
                let cell2 = Arc::clone(&cell);
                Replay {
                    threads,
                    check: Box::new(move || {
                        assert_eq!(cell2.load(Ordering::SeqCst), 2, "lost update");
                    }),
                }
            });
        }));
        let msg = panic_message(&*found.expect_err("model must catch the race"));
        assert!(msg.contains("lost update"), "{msg}");
        assert!(
            msg.contains("schedule:"),
            "failure must carry its schedule: {msg}"
        );
    }

    /// Same seed → same schedules; the recorded outcome sequence is a
    /// pure function of the seed.
    #[test]
    fn random_mode_is_seed_reproducible() {
        let run = |seed: u64| {
            let log = Arc::new(Mutex::new(Vec::new()));
            Explorer::default().random(seed, 20, || {
                let log = Arc::clone(&log);
                let order = Arc::new(Mutex::new(Vec::new()));
                let threads = (0..3u8)
                    .map(|t| {
                        let order = Arc::clone(&order);
                        Box::new(move |ctx: &ModelCtx| {
                            ctx.step("a");
                            order.lock().unwrap().push(t);
                            ctx.step("b");
                            order.lock().unwrap().push(t);
                        }) as Box<dyn FnOnce(&ModelCtx) + Send>
                    })
                    .collect();
                let order2 = Arc::clone(&order);
                Replay {
                    threads,
                    check: Box::new(move || {
                        log.lock().unwrap().push(order2.lock().unwrap().clone());
                    }),
                }
            });
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    /// `replay` follows a pinned schedule deterministically.
    #[test]
    fn fixed_replay_is_deterministic() {
        let run = |schedule: &[usize]| {
            let order = Arc::new(Mutex::new(Vec::new()));
            let o2 = Arc::clone(&order);
            Explorer::default().replay(schedule, move || {
                let threads = (0..2u8)
                    .map(|t| {
                        let order = Arc::clone(&o2);
                        Box::new(move |ctx: &ModelCtx| {
                            ctx.step("a");
                            order.lock().unwrap().push(t);
                        }) as Box<dyn FnOnce(&ModelCtx) + Send>
                    })
                    .collect();
                Replay {
                    threads,
                    check: Box::new(|| {}),
                }
            });
            Arc::try_unwrap(order).unwrap().into_inner().unwrap()
        };
        assert_eq!(run(&[0]), vec![0, 1]);
        assert_eq!(run(&[1, 1]), vec![1, 0]);
    }

    /// The logical clock is monotone and visible to bodies.
    #[test]
    fn logical_clock_orders_events() {
        let times = Arc::new(Mutex::new((0usize, 0usize)));
        let t2 = Arc::clone(&times);
        Explorer::default().replay(&[0, 0, 0], move || {
            let ta = Arc::clone(&t2);
            let tb = Arc::clone(&t2);
            Replay {
                threads: vec![
                    Box::new(move |ctx: &ModelCtx| {
                        ctx.step("a");
                        ta.lock().unwrap().0 = ctx.now();
                    }),
                    Box::new(move |ctx: &ModelCtx| {
                        ctx.step("a");
                        tb.lock().unwrap().1 = ctx.now();
                    }),
                ],
                check: Box::new(|| {}),
            }
        });
        let (a, b) = *times.lock().unwrap();
        assert_ne!(a, b, "distinct steps have distinct clock readings");
    }
}
