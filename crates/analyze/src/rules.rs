//! The rule catalog: repo-specific concurrency-hygiene rules as data.
//!
//! Each rule is a row in [`RULES`]: an id, the code-channel needles that
//! trigger it, the path set it applies to, an optional extra condition
//! (e.g. "a SAFETY comment must be nearby"), and a fix hint printed with
//! every diagnostic. Adding a rule is adding a row — the engine in
//! [`crate::lint`] is rule-agnostic. See `ANALYSIS.md` for the catalog
//! in prose and the policy for granting exceptions.

use crate::scan::SourceFile;

/// Extra condition a matched needle must *fail* to become a violation.
#[derive(Debug, Clone, Copy)]
pub enum Check {
    /// The needle alone is the violation (allowlist-only exceptions).
    Always,
    /// Satisfied if a comment within the same or the `window` preceding
    /// lines contains one of the given markers (case-sensitive).
    NearbyCommentMarker {
        window: usize,
        markers: &'static [&'static str],
    },
}

/// One lint rule.
#[derive(Debug)]
pub struct Rule {
    /// Stable id, e.g. `STK001`; allowlist entries reference it.
    pub id: &'static str,
    /// One-line statement of the rule.
    pub title: &'static str,
    /// Substrings matched against the code channel (strings/comments
    /// already blanked).
    pub needles: &'static [&'static str],
    /// Needles must match at word boundaries (for bare keywords).
    pub word_boundary: bool,
    /// Path prefixes the rule applies to; empty = the whole tree.
    pub include: &'static [&'static str],
    /// Path prefixes exempt from the rule.
    pub exclude: &'static [&'static str],
    /// Skip lines inside test regions / test targets.
    pub skip_test_code: bool,
    pub check: Check,
    /// Printed with each diagnostic.
    pub fix_hint: &'static str,
}

/// The workspace rule set.
pub const RULES: &[Rule] = &[
    Rule {
        id: "STK001",
        title: "`unsafe` without a SAFETY justification",
        needles: &["unsafe"],
        word_boundary: true,
        include: &[],
        exclude: &[],
        skip_test_code: false,
        check: Check::NearbyCommentMarker {
            window: 10,
            markers: &["SAFETY:", "# Safety", "Safety:"],
        },
        fix_hint: "add a `// SAFETY: <why the invariants hold>` comment directly above \
                   the unsafe block, or a `/// # Safety` section on an unsafe fn",
    },
    Rule {
        id: "STK002",
        title: "`Ordering::Relaxed` outside the audited allowlist",
        needles: &["Ordering::Relaxed"],
        word_boundary: false,
        include: &[],
        exclude: &[],
        skip_test_code: true,
        check: Check::Always,
        fix_hint: "use Acquire/Release/SeqCst, or record the site in stkde-lint.allow \
                   with the argument for why relaxed ordering is sufficient",
    },
    Rule {
        id: "STK003",
        title: "panic path (`unwrap`/`expect`/`panic!`) in hot-crate non-test code",
        needles: &[".unwrap()", ".expect(", "panic!("],
        word_boundary: false,
        include: &[
            "crates/core/src",
            "crates/grid/src",
            "crates/comm/src",
            "crates/server/src",
            "crates/obs/src",
        ],
        exclude: &[],
        skip_test_code: true,
        check: Check::Always,
        fix_hint: "return a typed error (CommError/ServeError) or handle the None; \
                   deliberate crash-on-corruption sites go in stkde-lint.allow with a reason",
    },
    Rule {
        id: "STK004",
        title: "raw thread spawn outside the sanctioned runtimes",
        needles: &["thread::spawn", "thread::Builder"],
        word_boundary: false,
        include: &[],
        exclude: &["shims/rayon/", "crates/comm/src/process.rs"],
        skip_test_code: true,
        check: Check::Always,
        fix_hint: "schedule work on the rayon pool (join/scope/install) or the \
                   ProcessWorld rank runtime; ad-hoc threads dodge the pool's \
                   panic propagation and shutdown story",
    },
    Rule {
        id: "STK005",
        title: "blocking `recv()` without a deadline in crates/comm",
        needles: &[".recv()"],
        word_boundary: false,
        include: &["crates/comm/"],
        exclude: &[],
        skip_test_code: true,
        check: Check::Always,
        fix_hint: "use recv_timeout with a per-operation deadline so a dead peer \
                   surfaces as CommError::Timeout instead of a hang",
    },
];

/// Look up a rule by id.
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// One diagnostic: a rule fired at a location.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule_id: &'static str,
    pub rel_path: String,
    pub line: usize,
    pub excerpt: String,
}

impl Violation {
    /// `file:line: [ID] title` — the stable diagnostic format the fixture
    /// tests assert on.
    pub fn render(&self) -> String {
        let title = rule_by_id(self.rule_id).map(|r| r.title).unwrap_or("");
        format!(
            "{}:{}: [{}] {}",
            self.rel_path, self.line, self.rule_id, title
        )
    }
}

impl Rule {
    /// Does this rule apply to `rel_path` at all?
    pub fn applies_to(&self, rel_path: &str) -> bool {
        if !self.include.is_empty() && !self.include.iter().any(|p| rel_path.starts_with(p)) {
            return false;
        }
        !self.exclude.iter().any(|p| rel_path.starts_with(p))
    }

    /// Run this rule over a scanned file, appending violations.
    pub fn apply(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if !self.applies_to(&file.rel_path) {
            return;
        }
        for (idx, line) in file.lines.iter().enumerate() {
            if self.skip_test_code && line.in_test {
                continue;
            }
            let hit = self.needles.iter().any(|n| {
                if self.word_boundary {
                    contains_word(&line.code, n)
                } else {
                    line.code.contains(n)
                }
            });
            if !hit {
                continue;
            }
            if let Check::NearbyCommentMarker { window, markers } = self.check {
                let lo = idx.saturating_sub(window);
                let justified = file.lines[lo..=idx]
                    .iter()
                    .any(|l| markers.iter().any(|m| l.comment.contains(m)));
                if justified {
                    continue;
                }
            }
            out.push(Violation {
                rule_id: self.id,
                rel_path: file.rel_path.clone(),
                line: line.number,
                excerpt: line.raw.trim().to_string(),
            });
        }
    }
}

/// `haystack` contains `needle` delimited by non-identifier chars.
fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = haystack[from..].find(needle) {
        let start = from + pos;
        let end = start + needle.len();
        let pre_ok = start == 0
            || !haystack[..start]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let post_ok = !haystack[end..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if pre_ok && post_ok {
            return true;
        }
        from = end;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_source;

    #[test]
    fn rule_ids_are_unique_and_hinted() {
        let mut ids: Vec<_> = RULES.iter().map(|r| r.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len(), "duplicate rule id");
        for r in RULES {
            assert!(!r.fix_hint.is_empty(), "{} needs a fix hint", r.id);
            assert!(!r.needles.is_empty(), "{} needs needles", r.id);
        }
    }

    #[test]
    fn word_boundary_matching() {
        assert!(contains_word("let x = unsafe { y }", "unsafe"));
        assert!(!contains_word("let un_safe = 1;", "unsafe"));
        assert!(!contains_word("maybe_unsafe()", "unsafe"));
        assert!(contains_word("unsafe{}", "unsafe"));
    }

    #[test]
    fn safety_comment_window_suppresses_stk001() {
        let src = "// SAFETY: the buffer outlives the call.\nlet v = unsafe { read(p) };";
        let file = scan_source("crates/x/src/a.rs", src, false);
        let mut out = Vec::new();
        rule_by_id("STK001").unwrap().apply(&file, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn naked_unsafe_fires_stk001() {
        let file = scan_source("crates/x/src/a.rs", "let v = unsafe { read(p) };", false);
        let mut out = Vec::new();
        rule_by_id("STK001").unwrap().apply(&file, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn stk003_only_fires_in_hot_crates() {
        let src = "fn f() { x.unwrap(); }";
        let mut out = Vec::new();
        let rule = rule_by_id("STK003").unwrap();
        rule.apply(&scan_source("crates/core/src/a.rs", src, false), &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        rule.apply(&scan_source("crates/obs/src/a.rs", src, false), &mut out);
        assert_eq!(out.len(), 1, "obs is a hot crate too");
        out.clear();
        rule.apply(&scan_source("crates/bench/src/a.rs", src, false), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn stk004_excludes_the_runtimes() {
        let src = "std::thread::spawn(|| {});";
        let rule = rule_by_id("STK004").unwrap();
        let mut out = Vec::new();
        rule.apply(
            &scan_source("shims/rayon/src/registry.rs", src, false),
            &mut out,
        );
        assert!(out.is_empty());
        rule.apply(
            &scan_source("crates/comm/src/process.rs", src, false),
            &mut out,
        );
        assert!(out.is_empty());
        rule.apply(&scan_source("crates/data/src/x.rs", src, false), &mut out);
        assert_eq!(out.len(), 1);
    }
}
