//! `stkde-lint` — audit the workspace source against the rule catalog.
//!
//! ```text
//! stkde-lint [ROOT] [--allowlist FILE] [--list-rules]
//! ```
//!
//! `ROOT` defaults to the current directory (CI runs it from the
//! workspace root). Exit status: 0 clean, 1 violations or stale
//! allowlist entries, 2 usage/configuration errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                for rule in stkde_analyze::RULES {
                    println!("{}  {}", rule.id, rule.title);
                    println!("        fix: {}", rule.fix_hint);
                }
                return ExitCode::SUCCESS;
            }
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("stkde-lint: --allowlist needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "-h" | "--help" => {
                println!("usage: stkde-lint [ROOT] [--allowlist FILE] [--list-rules]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other));
            }
            other => {
                eprintln!("stkde-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("Cargo.toml").exists() {
        eprintln!(
            "stkde-lint: {} does not look like a workspace root (no Cargo.toml)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let entries = match stkde_analyze::allowlist::load(
        &allowlist_path.unwrap_or_else(|| root.join("stkde-lint.allow")),
    ) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("stkde-lint: {e}");
            return ExitCode::from(2);
        }
    };
    match stkde_analyze::lint_tree(&root, &entries) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("stkde-lint: scanning {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
