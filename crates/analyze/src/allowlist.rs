//! The accepted-exceptions file: `stkde-lint.allow`.
//!
//! Every granted exception is one line:
//!
//! ```text
//! RULE_ID PATH :: LINE_SUBSTRING :: REASON
//! ```
//!
//! * `RULE_ID` — which rule the exception is for (`STK003`, ...).
//! * `PATH` — workspace-relative path the exception applies to, or `*`
//!   for any path the rule covers (used for idioms like
//!   `.lock().unwrap()` that are policy everywhere).
//! * `LINE_SUBSTRING` — matched against the raw source line; an entry
//!   may legitimately cover several sites (e.g. every stats counter in
//!   one file).
//! * `REASON` — mandatory; the written-down argument for why the rule
//!   does not apply. An entry without a reason is a parse error.
//!
//! Entries that match nothing are *stale* and fail the lint: when the
//! code a waiver covered is fixed or deleted, the waiver must go too.

use std::fmt;
use std::path::Path;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
    pub rule_id: String,
    /// `*` or a path prefix.
    pub path: String,
    pub needle: String,
    pub reason: String,
}

impl Entry {
    /// Does this entry waive `v`? Path `*` matches anywhere; otherwise
    /// prefix match, so a directory grants its whole subtree.
    pub fn matches(&self, rule_id: &str, rel_path: &str, raw_line: &str) -> bool {
        self.rule_id == rule_id
            && (self.path == "*" || rel_path.starts_with(&self.path))
            && raw_line.contains(&self.needle)
    }
}

impl fmt::Display for Entry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} :: {} :: {}",
            self.rule_id, self.path, self.needle, self.reason
        )
    }
}

/// A malformed allowlist line.
#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "allowlist line {}: {}", self.line, self.message)
    }
}

/// Parse allowlist text. Blank lines and `#` comments are skipped.
pub fn parse(text: &str) -> Result<Vec<Entry>, ParseError> {
    let mut entries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.splitn(3, " :: ");
        let head = fields.next().unwrap_or("").trim();
        let needle = fields.next().map(str::trim).unwrap_or("");
        let reason = fields.next().map(str::trim).unwrap_or("");
        let (rule_id, path) = match head.split_once(char::is_whitespace) {
            Some((r, p)) => (r.trim(), p.trim()),
            None => {
                return Err(ParseError {
                    line,
                    message: "expected `RULE_ID PATH :: SUBSTRING :: REASON`".into(),
                })
            }
        };
        if crate::rules::rule_by_id(rule_id).is_none() {
            return Err(ParseError {
                line,
                message: format!("unknown rule id `{rule_id}`"),
            });
        }
        if needle.is_empty() {
            return Err(ParseError {
                line,
                message: "empty line-substring field".into(),
            });
        }
        if reason.is_empty() {
            return Err(ParseError {
                line,
                message: "an exception without a reason is not an exception".into(),
            });
        }
        entries.push(Entry {
            line,
            rule_id: rule_id.to_string(),
            path: path.to_string(),
            needle: needle.to_string(),
            reason: reason.to_string(),
        });
    }
    Ok(entries)
}

/// Load and parse an allowlist file; a missing file is an empty list.
pub fn load(path: &Path) -> Result<Vec<Entry>, ParseError> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(ParseError {
            line: 0,
            message: format!("reading {}: {e}", path.display()),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let text = "# policy waivers\n\n\
                    STK003 * :: .lock().unwrap() :: poisoning is a crash-worthy bug\n\
                    STK002 crates/server/src/service.rs :: Ordering::Relaxed :: monotonic counters\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule_id, "STK003");
        assert_eq!(entries[0].path, "*");
        assert!(entries[1].path.starts_with("crates/server"));
    }

    #[test]
    fn entry_matching() {
        let e = Entry {
            line: 1,
            rule_id: "STK003".into(),
            path: "crates/comm/".into(),
            needle: ".expect(".into(),
            reason: "r".into(),
        };
        assert!(e.matches("STK003", "crates/comm/src/world.rs", "x.expect(\"y\")"));
        assert!(!e.matches("STK003", "crates/core/src/a.rs", "x.expect(\"y\")"));
        assert!(!e.matches("STK002", "crates/comm/src/world.rs", "x.expect(\"y\")"));
        assert!(!e.matches("STK003", "crates/comm/src/world.rs", "x.unwrap()"));
    }

    #[test]
    fn reason_is_mandatory() {
        assert!(parse("STK003 * :: .unwrap() ::  \n").is_err());
        assert!(parse("STK003 * :: .unwrap()\n").is_err());
    }

    #[test]
    fn unknown_rule_is_an_error() {
        assert!(parse("STK999 * :: x :: y\n").is_err());
    }
}
