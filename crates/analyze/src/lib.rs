//! `stkde-analyze`: in-tree correctness tooling for the workspace's
//! hand-rolled concurrency.
//!
//! Two engines live here (see `ANALYSIS.md` at the workspace root for
//! the operator's guide):
//!
//! * **`stkde-lint`** ([`lint`], [`rules`], [`allowlist`], [`scan`]) — a
//!   zero-dependency source auditor enforcing the repo's concurrency
//!   hygiene: SAFETY-justified `unsafe`, allowlisted `Relaxed` atomics,
//!   no panic paths in hot-crate production code, no ad-hoc thread
//!   spawns, no deadline-less blocking receives in the comm layer.
//!   Rules are data ([`rules::RULES`]); accepted exceptions live in
//!   `stkde-lint.allow` with mandatory reasons and fail the lint when
//!   they go stale.
//! * **The concurrency model checker** ([`sched_model`]) — a loom-style
//!   deterministic scheduler that drives the *real* Chase–Lev deque and
//!   sleep-gate code (through the rayon shim's `model` feature) and the
//!   comm frame decoder under bounded-exhaustive and seeded-random
//!   interleaving exploration. The scenario suites are this crate's
//!   integration tests, so `cargo test` is the model-checking run.

pub mod allowlist;
pub mod lint;
pub mod rules;
pub mod scan;
pub mod sched_model;

pub use lint::{lint_tree, lint_workspace, LintOutcome};
pub use rules::{Rule, Violation, RULES};
