//! The lint engine: walk a tree, run every rule, apply the allowlist.

use crate::allowlist::{self, Entry};
use crate::rules::{Violation, RULES};
use crate::scan;
use std::path::Path;

/// Result of linting a tree.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Violations not covered by any allowlist entry.
    pub violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (stale waivers).
    pub stale_entries: Vec<Entry>,
    /// Violations waived by the allowlist.
    pub suppressed: usize,
    pub files_scanned: usize,
}

impl LintOutcome {
    /// Clean = nothing to report: no live violations, no stale waivers.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stale_entries.is_empty()
    }

    /// Human-readable report, one diagnostic per line plus a summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&v.render());
            out.push('\n');
            out.push_str(&format!("    {}\n", v.excerpt));
            if let Some(rule) = crate::rules::rule_by_id(v.rule_id) {
                out.push_str(&format!("    hint: {}\n", rule.fix_hint));
            }
        }
        for e in &self.stale_entries {
            out.push_str(&format!(
                "stkde-lint.allow:{}: stale waiver matches nothing: `{e}`\n",
                e.line
            ));
        }
        out.push_str(&format!(
            "stkde-lint: {} file(s), {} violation(s), {} waived, {} stale waiver(s)\n",
            self.files_scanned,
            self.violations.len(),
            self.suppressed,
            self.stale_entries.len()
        ));
        out
    }
}

/// Lint every `.rs` file under `root` against [`RULES`], waiving matches
/// through `entries`.
pub fn lint_tree(root: &Path, entries: &[Entry]) -> std::io::Result<LintOutcome> {
    let files = scan::collect_rust_files(root)?;
    let mut outcome = LintOutcome {
        files_scanned: files.len(),
        ..Default::default()
    };
    let mut used = vec![false; entries.len()];
    for path in &files {
        let file = scan::scan_file(root, path)?;
        let mut raw_hits = Vec::new();
        for rule in RULES {
            rule.apply(&file, &mut raw_hits);
        }
        for v in raw_hits {
            let raw_line = file
                .lines
                .get(v.line - 1)
                .map(|l| l.raw.as_str())
                .unwrap_or("");
            let waived = entries
                .iter()
                .enumerate()
                .find(|(_, e)| e.matches(v.rule_id, &v.rel_path, raw_line));
            match waived {
                Some((i, _)) => {
                    used[i] = true;
                    outcome.suppressed += 1;
                }
                None => outcome.violations.push(v),
            }
        }
    }
    outcome.stale_entries = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    Ok(outcome)
}

/// Lint `root` with its conventional allowlist (`<root>/stkde-lint.allow`).
pub fn lint_workspace(root: &Path) -> Result<LintOutcome, String> {
    let entries = allowlist::load(&root.join("stkde-lint.allow")).map_err(|e| e.to_string())?;
    lint_tree(root, &entries).map_err(|e| format!("scanning {}: {e}", root.display()))
}
