//! Critical-path (T∞) analysis and Graham bounds.

use crate::dag::TaskDag;

/// The longest weighted chain of a task DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Length of the longest chain, `T∞` (sum of task weights on it).
    pub length: f64,
    /// The tasks on one longest chain, in execution order.
    pub tasks: Vec<usize>,
}

impl CriticalPath {
    /// The critical path relative to the total work, `T∞ / T₁` — the
    /// quantity plotted in Figure 12 of the paper. By Graham's bound the
    /// attainable speedup is at most `1 / (T∞/T₁)` for large `P`.
    pub fn relative(&self, total_work: f64) -> f64 {
        if total_work == 0.0 {
            0.0
        } else {
            self.length / total_work
        }
    }
}

/// Compute the critical path via longest-path dynamic programming over a
/// topological order.
///
/// # Panics
/// Panics if the DAG contains a cycle (cannot happen for DAGs constructed
/// through [`TaskDag`] constructors, which validate acyclicity).
pub fn critical_path(dag: &TaskDag) -> CriticalPath {
    let n = dag.n();
    if n == 0 {
        return CriticalPath {
            length: 0.0,
            tasks: Vec::new(),
        };
    }
    let order = dag.topo_order().expect("DAG must be acyclic");
    // finish[v] = weight(v) + max over preds finish[p]
    let mut finish = vec![0.0f64; n];
    let mut best_pred: Vec<Option<usize>> = vec![None; n];
    for &v in &order {
        let mut base = 0.0;
        for &p in dag.preds(v) {
            if finish[p as usize] > base {
                base = finish[p as usize];
                best_pred[v] = Some(p as usize);
            }
        }
        finish[v] = base + dag.weights()[v];
    }
    let (mut v, _) = finish
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();
    let length = finish[v];
    let mut tasks = vec![v];
    while let Some(p) = best_pred[v] {
        tasks.push(p);
        v = p;
    }
    tasks.reverse();
    CriticalPath { length, tasks }
}

/// Graham's list-scheduling guarantee: any greedy schedule of the DAG on
/// `p` processors finishes within `(T₁ − T∞)/p + T∞` (paper §5.2).
pub fn graham_bound(total_work: f64, critical_path_len: f64, p: usize) -> f64 {
    (total_work - critical_path_len) / p as f64 + critical_path_len
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn chain_critical_path_is_total() {
        let dag = TaskDag::from_edges(3, vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]);
        let cp = critical_path(&dag);
        assert_eq!(cp.length, 6.0);
        assert_eq!(cp.tasks, vec![0, 1, 2]);
        assert_eq!(cp.relative(dag.total_work()), 1.0);
    }

    #[test]
    fn independent_tasks_path_is_heaviest_task() {
        let dag = TaskDag::from_edges(4, vec![1.0, 9.0, 2.0, 3.0], &[]);
        let cp = critical_path(&dag);
        assert_eq!(cp.length, 9.0);
        assert_eq!(cp.tasks, vec![1]);
        assert!((cp.relative(15.0) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn diamond_takes_heavier_branch() {
        //    0
        //   / \
        //  1   2    w1 = 5, w2 = 1
        //   \ /
        //    3
        let dag = TaskDag::from_edges(
            4,
            vec![1.0, 5.0, 1.0, 1.0],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let cp = critical_path(&dag);
        assert_eq!(cp.length, 7.0);
        assert_eq!(cp.tasks, vec![0, 1, 3]);
    }

    #[test]
    fn empty_dag() {
        let dag = TaskDag::from_edges(0, vec![], &[]);
        let cp = critical_path(&dag);
        assert_eq!(cp.length, 0.0);
        assert!(cp.tasks.is_empty());
        assert_eq!(cp.relative(0.0), 0.0);
    }

    #[test]
    fn graham_bound_limits() {
        // All work on the path: no parallelism.
        assert_eq!(graham_bound(10.0, 10.0, 16), 10.0);
        // No dependencies: perfect strong scaling plus the longest task.
        let b = graham_bound(100.0, 1.0, 10);
        assert!((b - (99.0 / 10.0 + 1.0)).abs() < 1e-12);
        // p = 1 is exactly T1.
        assert_eq!(graham_bound(42.0, 5.0, 1), 42.0);
    }

    proptest! {
        /// On random layered DAGs: T∞ ≤ T₁, the extracted chain is a real
        /// chain whose weights sum to the reported length, and the Graham
        /// bound lies between T₁/p and T₁.
        #[test]
        fn prop_path_invariants(
            layers in 1usize..5,
            width in 1usize..5,
            seed in 0u64..100
        ) {
            let n = layers * width;
            let weights: Vec<f64> = (0..n)
                .map(|i| 1.0 + (((i as u64 + seed) * 2654435761) % 17) as f64)
                .collect();
            // Edges between consecutive layers, pseudo-randomly.
            let mut edges = Vec::new();
            for l in 0..layers.saturating_sub(1) {
                for a in 0..width {
                    for b in 0..width {
                        if (a + b + l + seed as usize).is_multiple_of(3) {
                            edges.push((l * width + a, (l + 1) * width + b));
                        }
                    }
                }
            }
            let dag = TaskDag::from_edges(n, weights.clone(), &edges);
            let cp = critical_path(&dag);
            let t1 = dag.total_work();
            prop_assert!(cp.length <= t1 + 1e-9);
            // Chain property + length consistency.
            let sum: f64 = cp.tasks.iter().map(|&v| weights[v]).sum();
            prop_assert!((sum - cp.length).abs() < 1e-9);
            for w in cp.tasks.windows(2) {
                prop_assert!(dag.succs(w[0]).contains(&(w[1] as u32)));
            }
            for p in [1usize, 2, 16] {
                let g = graham_bound(t1, cp.length, p);
                prop_assert!(g >= t1 / p as f64 - 1e-9);
                prop_assert!(g <= t1 + 1e-9);
            }
        }
    }
}
