//! Moldable-task replication for `PB-SYM-PD-REP` (paper §5.2).
//!
//! When the critical path of the subdomain DAG is long — typically because
//! one heavily clustered subdomain dominates — the paper replicates the
//! offending tasks: the points of a replicated subdomain are split into `r`
//! parts that accumulate into *private* buffers (and therefore run free of
//! all stencil constraints), followed by a cheap merge task that adds the
//! buffers into the shared grid under the original stencil constraints.
//! This trades extra work (buffer init + merge, like a localized
//! `PB-SYM-DR`) for a shorter critical path:
//!
//! > “As long as the critical path is longer than n/(2P), the tasks on the
//! > path are replicated an additional time and the critical path is
//! > recomputed.”
//!
//! [`plan_replication`] implements that fixed-point loop on weight
//! estimates; [`expand_dag`] materializes the transformed DAG
//! (replicas + merge nodes) for execution or simulation.

use crate::critical_path::critical_path;
use crate::dag::TaskDag;

/// Parameters of the replication planner.
#[derive(Debug, Clone, PartialEq)]
pub struct RepParams {
    /// Number of processors `P` the schedule targets.
    pub processors: usize,
    /// Estimated merge cost per task if it gets replicated (typically
    /// proportional to the subdomain halo volume).
    pub merge_weights: Vec<f64>,
    /// Upper bound on replicas per task (defaults to `processors` via
    /// [`RepParams::new`]).
    pub max_replicas: usize,
    /// Safety cap on planner iterations.
    pub max_rounds: usize,
}

impl RepParams {
    /// Standard parameters: replicas capped at `P`, 64 planner rounds.
    pub fn new(processors: usize, merge_weights: Vec<f64>) -> Self {
        Self {
            processors: processors.max(1),
            max_replicas: processors.max(1),
            merge_weights,
            max_rounds: 64,
        }
    }
}

/// The outcome of replication planning: a replica count per original task
/// (`1` = unreplicated).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepPlan {
    /// Replica count per task.
    pub replicas: Vec<usize>,
}

impl RepPlan {
    /// `true` if no task is replicated.
    pub fn is_trivial(&self) -> bool {
        self.replicas.iter().all(|&r| r == 1)
    }

    /// Number of replicated tasks.
    pub fn replicated_count(&self) -> usize {
        self.replicas.iter().filter(|&&r| r > 1).count()
    }

    /// Total extra tasks introduced (replicas beyond the first, plus one
    /// merge node per replicated task).
    pub fn extra_tasks(&self) -> usize {
        self.replicas
            .iter()
            .filter(|&&r| r > 1)
            .copied() // (r replicas - 1 original) + 1 merge
            .sum()
    }

    /// Effective path-weight of each task under the plan:
    /// `w/r` for the longest replica plus the merge cost when replicated.
    pub fn effective_weights(&self, base: &[f64], merge: &[f64]) -> Vec<f64> {
        self.replicas
            .iter()
            .zip(base.iter().zip(merge))
            .map(|(&r, (&w, &m))| if r > 1 { w / r as f64 + m } else { w })
            .collect()
    }
}

/// Iteratively replicate critical-path tasks until the (estimated) critical
/// path drops below `T₁ / (2P)` or no further replication helps.
pub fn plan_replication(dag: &TaskDag, params: &RepParams) -> RepPlan {
    let n = dag.n();
    assert_eq!(
        params.merge_weights.len(),
        n,
        "merge weights length mismatch"
    );
    let base = dag.weights().to_vec();
    let mut plan = RepPlan {
        replicas: vec![1; n],
    };
    if n == 0 {
        return plan;
    }
    let p = params.processors;
    let mut scratch = dag.clone();
    for _ in 0..params.max_rounds {
        let eff = plan.effective_weights(&base, &params.merge_weights);
        scratch.set_weights(eff);
        let cp = critical_path(&scratch);
        // T1 under the plan: all replica work plus merge overhead.
        let t1: f64 = base
            .iter()
            .zip(&plan.replicas)
            .zip(&params.merge_weights)
            .map(|((&w, &r), &m)| if r > 1 { w + m } else { w })
            .sum();
        if cp.length <= t1 / (2.0 * p as f64) {
            break;
        }
        let mut progressed = false;
        for &v in &cp.tasks {
            // Only replicate tasks whose split would actually shorten the
            // path: real work remaining and below the replica cap.
            if plan.replicas[v] < params.max_replicas
                && base[v] / plan.replicas[v] as f64 > params.merge_weights[v]
            {
                plan.replicas[v] += 1;
                progressed = true;
            }
        }
        if !progressed {
            break;
        }
    }
    plan
}

/// A node of an [`expand_dag`]-transformed DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepNode {
    /// The original, unreplicated task.
    Process(usize),
    /// Part `part` of `parts` of a replicated task: accumulates into a
    /// private buffer, free of stencil constraints.
    Replica {
        /// Original task index.
        task: usize,
        /// Which replica (0-based).
        part: usize,
        /// Total replicas of this task.
        parts: usize,
    },
    /// The merge of a replicated task's buffers into the shared grid;
    /// inherits the original task's stencil constraints.
    Merge(usize),
}

impl RepNode {
    /// The original task this node derives from.
    pub fn task(&self) -> usize {
        match *self {
            RepNode::Process(t) | RepNode::Merge(t) => t,
            RepNode::Replica { task, .. } => task,
        }
    }
}

/// The materialized replication transformation of a task DAG.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpandedDag {
    /// The transformed DAG.
    pub dag: TaskDag,
    /// What each node of [`ExpandedDag::dag`] represents.
    pub nodes: Vec<RepNode>,
}

/// Materialize `plan` over `dag`: each replicated task `v` becomes `r`
/// unconstrained replica nodes of weight `w(v)/r` plus one merge node of
/// weight `merge_weights[v]` that carries `v`'s original dependencies;
/// unreplicated tasks keep their edges (re-targeted at merge nodes where a
/// neighbor was replicated).
pub fn expand_dag(dag: &TaskDag, plan: &RepPlan, merge_weights: &[f64]) -> ExpandedDag {
    let n = dag.n();
    assert_eq!(plan.replicas.len(), n, "plan length mismatch");
    assert_eq!(merge_weights.len(), n, "merge weights length mismatch");

    let mut nodes = Vec::new();
    let mut weights = Vec::new();
    // anchor[v] = node index carrying v's stencil dependencies
    // (Process node, or Merge node when replicated).
    let mut anchor = vec![0usize; n];
    let mut replica_ids: Vec<Vec<usize>> = vec![Vec::new(); n];

    for v in 0..n {
        let r = plan.replicas[v];
        if r <= 1 {
            anchor[v] = nodes.len();
            nodes.push(RepNode::Process(v));
            weights.push(dag.weights()[v]);
        } else {
            for part in 0..r {
                replica_ids[v].push(nodes.len());
                nodes.push(RepNode::Replica {
                    task: v,
                    part,
                    parts: r,
                });
                weights.push(dag.weights()[v] / r as f64);
            }
            anchor[v] = nodes.len();
            nodes.push(RepNode::Merge(v));
            weights.push(merge_weights[v]);
        }
    }

    let mut edges = Vec::new();
    for v in 0..n {
        // Stencil edges, re-anchored.
        for &s in dag.succs(v) {
            edges.push((anchor[v], anchor[s as usize]));
        }
        // Replica → merge edges.
        for &rid in &replica_ids[v] {
            edges.push((rid, anchor[v]));
        }
    }

    ExpandedDag {
        dag: TaskDag::from_edges(nodes.len(), weights, &edges),
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::critical_path;
    use crate::list_schedule::list_schedule;

    /// A hub-dominated DAG: one huge task in a chain of light ones.
    fn skewed_chain() -> TaskDag {
        TaskDag::from_edges(4, vec![1.0, 100.0, 1.0, 1.0], &[(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn trivial_when_already_balanced() {
        let dag = TaskDag::from_edges(8, vec![1.0; 8], &[]);
        let plan = plan_replication(&dag, &RepParams::new(4, vec![0.1; 8]));
        assert!(plan.is_trivial());
        assert_eq!(plan.extra_tasks(), 0);
    }

    #[test]
    fn replicates_dominant_task() {
        let dag = skewed_chain();
        let plan = plan_replication(&dag, &RepParams::new(4, vec![0.5; 4]));
        assert!(
            plan.replicas[1] > 1,
            "heavy task should replicate: {plan:?}"
        );
        assert!(plan.replicated_count() >= 1);
    }

    #[test]
    fn effective_weights_account_for_merge() {
        let plan = RepPlan {
            replicas: vec![1, 4],
        };
        let eff = plan.effective_weights(&[10.0, 100.0], &[0.0, 2.0]);
        assert_eq!(eff[0], 10.0);
        assert_eq!(eff[1], 100.0 / 4.0 + 2.0);
    }

    #[test]
    fn planner_respects_replica_cap() {
        let dag = skewed_chain();
        let mut params = RepParams::new(16, vec![0.01; 4]);
        params.max_replicas = 3;
        let plan = plan_replication(&dag, &params);
        assert!(plan.replicas.iter().all(|&r| r <= 3));
    }

    #[test]
    fn planner_skips_tasks_where_merge_dominates() {
        // Splitting a task whose merge cost exceeds its share is useless.
        let dag = TaskDag::from_edges(1, vec![4.0], &[]);
        let plan = plan_replication(&dag, &RepParams::new(8, vec![10.0]));
        assert!(plan.is_trivial());
    }

    #[test]
    fn expansion_preserves_task_coverage() {
        let dag = skewed_chain();
        let plan = RepPlan {
            replicas: vec![1, 3, 1, 1],
        };
        let ex = expand_dag(&dag, &plan, &[0.5; 4]);
        // 3 process + 3 replicas + 1 merge = 7 nodes.
        assert_eq!(ex.dag.n(), 7);
        let mut coverage = [0.0f64; 4];
        for (i, node) in ex.nodes.iter().enumerate() {
            if !matches!(node, RepNode::Merge(_)) {
                coverage[node.task()] += ex.dag.weights()[i];
            }
        }
        for (v, &w) in dag.weights().iter().enumerate() {
            assert!((coverage[v] - w).abs() < 1e-9, "task {v} work lost");
        }
    }

    #[test]
    fn expansion_shortens_critical_path() {
        let dag = skewed_chain();
        let params = RepParams::new(4, vec![0.5; 4]);
        let plan = plan_replication(&dag, &params);
        let ex = expand_dag(&dag, &plan, &params.merge_weights);
        let before = critical_path(&dag).length;
        let after = critical_path(&ex.dag).length;
        assert!(
            after < before * 0.6,
            "critical path {before} -> {after}: not shortened enough"
        );
    }

    #[test]
    fn expansion_improves_simulated_makespan() {
        let dag = skewed_chain();
        let params = RepParams::new(4, vec![0.5; 4]);
        let plan = plan_replication(&dag, &params);
        let ex = expand_dag(&dag, &plan, &params.merge_weights);
        let before = list_schedule(&dag, 4, dag.weights()).makespan;
        let after = list_schedule(&ex.dag, 4, ex.dag.weights()).makespan;
        assert!(
            after < before,
            "simulated makespan should improve: {before} -> {after}"
        );
    }

    #[test]
    fn expansion_replicas_have_no_external_deps() {
        let dag = skewed_chain();
        let plan = RepPlan {
            replicas: vec![1, 2, 1, 1],
        };
        let ex = expand_dag(&dag, &plan, &[0.1; 4]);
        for (i, node) in ex.nodes.iter().enumerate() {
            if let RepNode::Replica { .. } = node {
                assert!(ex.dag.preds(i).is_empty(), "replica {i} has preds");
                assert_eq!(ex.dag.succs(i).len(), 1, "replica {i} must feed merge only");
                let m = ex.dag.succs(i)[0] as usize;
                assert!(matches!(ex.nodes[m], RepNode::Merge(t) if t == node.task()));
            }
        }
    }

    #[test]
    fn expansion_merge_inherits_stencil_edges() {
        let dag = skewed_chain(); // chain 0 -> 1 -> 2 -> 3
        let plan = RepPlan {
            replicas: vec![1, 2, 1, 1],
        };
        let ex = expand_dag(&dag, &plan, &[0.1; 4]);
        let merge = ex
            .nodes
            .iter()
            .position(|n| matches!(n, RepNode::Merge(1)))
            .unwrap();
        let proc0 = ex
            .nodes
            .iter()
            .position(|n| matches!(n, RepNode::Process(0)))
            .unwrap();
        let proc2 = ex
            .nodes
            .iter()
            .position(|n| matches!(n, RepNode::Process(2)))
            .unwrap();
        assert!(ex.dag.preds(merge).contains(&(proc0 as u32)));
        assert!(ex.dag.succs(merge).contains(&(proc2 as u32)));
    }

    #[test]
    fn empty_dag_plans_trivially() {
        let dag = TaskDag::from_edges(0, vec![], &[]);
        let plan = plan_replication(&dag, &RepParams::new(4, vec![]));
        assert!(plan.is_trivial());
        let ex = expand_dag(&dag, &plan, &[]);
        assert_eq!(ex.dag.n(), 0);
    }
}
