//! Weighted task DAGs derived from stencil colorings.

use crate::coloring::Coloring;
use crate::stencil::StencilGraph;

/// A weighted directed acyclic task graph.
///
/// For the point-decomposed STKDE algorithms the DAG is obtained by
/// orienting every stencil edge from the endpoint with the *lower* color to
/// the endpoint with the *higher* color (paper §5.2, Figure 6): a proper
/// coloring guarantees the orientation is acyclic, and executing tasks in
/// dependency order guarantees no two adjacent subdomains run concurrently.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskDag {
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    weights: Vec<f64>,
}

impl TaskDag {
    /// Orient `graph` by `coloring` and attach task `weights`.
    ///
    /// # Panics
    /// Panics if the coloring is not proper for `graph`, or if lengths
    /// mismatch.
    pub fn from_coloring(graph: &StencilGraph, coloring: &Coloring, weights: Vec<f64>) -> Self {
        let n = graph.n();
        assert_eq!(coloring.colors().len(), n, "coloring length mismatch");
        assert_eq!(weights.len(), n, "weights length mismatch");
        assert!(coloring.is_valid(graph), "coloring must be proper");
        let mut preds = vec![Vec::new(); n];
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, sv) in succs.iter_mut().enumerate() {
            let cv = coloring.color(v);
            for &u in graph.neighbors(v) {
                let cu = coloring.color(u as usize);
                if cv < cu {
                    sv.push(u);
                    preds[u as usize].push(v as u32);
                }
            }
        }
        Self {
            preds,
            succs,
            weights,
        }
    }

    /// Build a DAG from explicit edges `(from, to)`.
    ///
    /// # Panics
    /// Panics on out-of-range endpoints or if the result contains a cycle.
    pub fn from_edges(n: usize, weights: Vec<f64>, edges: &[(usize, usize)]) -> Self {
        assert_eq!(weights.len(), n, "weights length mismatch");
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for &(u, v) in edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range");
            succs[u].push(v as u32);
            preds[v].push(u as u32);
        }
        let dag = Self {
            preds,
            succs,
            weights,
        };
        assert!(dag.topo_order().is_some(), "edge list contains a cycle");
        dag
    }

    /// Number of tasks.
    #[inline]
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// Predecessors of task `v`.
    #[inline]
    pub fn preds(&self, v: usize) -> &[u32] {
        &self.preds[v]
    }

    /// Successors of task `v`.
    #[inline]
    pub fn succs(&self, v: usize) -> &[u32] {
        &self.succs[v]
    }

    /// Task weights (processing-time estimates).
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Replace the task weights (same shape).
    ///
    /// # Panics
    /// Panics if the length changes.
    pub fn set_weights(&mut self, weights: Vec<f64>) {
        assert_eq!(weights.len(), self.weights.len(), "weights length mismatch");
        self.weights = weights;
    }

    /// Total work `T₁` (sum of weights).
    pub fn total_work(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// A topological order (Kahn), or `None` if the graph has a cycle.
    pub fn topo_order(&self) -> Option<Vec<usize>> {
        let n = self.n();
        let mut in_deg: Vec<usize> = self.preds.iter().map(Vec::len).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| in_deg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &s in &self.succs[v] {
                in_deg[s as usize] -= 1;
                if in_deg[s as usize] == 0 {
                    queue.push(s as usize);
                }
            }
        }
        (order.len() == n).then_some(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{greedy_coloring, order_lexicographic};
    use stkde_grid::{Decomp, Decomposition, GridDims};

    fn lattice_dag(a: usize, b: usize, c: usize) -> TaskDag {
        let d = Decomposition::new(GridDims::new(a * 4, b * 4, c * 4), Decomp::new(a, b, c));
        let g = StencilGraph::from_decomposition(&d);
        let coloring = greedy_coloring(&g, &order_lexicographic(g.n()));
        TaskDag::from_coloring(&g, &coloring, vec![1.0; g.n()])
    }

    #[test]
    fn oriented_dag_has_all_stencil_edges() {
        let d = Decomposition::new(GridDims::new(12, 12, 12), Decomp::new(3, 3, 3));
        let g = StencilGraph::from_decomposition(&d);
        let dag = lattice_dag(3, 3, 3);
        assert_eq!(dag.edge_count(), g.edge_count());
    }

    #[test]
    fn oriented_dag_is_acyclic() {
        let dag = lattice_dag(4, 4, 4);
        let order = dag.topo_order().expect("must be acyclic");
        assert_eq!(order.len(), dag.n());
        // Verify order respects edges.
        let mut pos = vec![0usize; dag.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }
        for v in 0..dag.n() {
            for &s in dag.succs(v) {
                assert!(pos[v] < pos[s as usize]);
            }
        }
    }

    #[test]
    fn preds_succs_consistent() {
        let dag = lattice_dag(3, 2, 2);
        for v in 0..dag.n() {
            for &s in dag.succs(v) {
                assert!(dag.preds(s as usize).contains(&(v as u32)));
            }
            for &p in dag.preds(v) {
                assert!(dag.succs(p as usize).contains(&(v as u32)));
            }
        }
    }

    #[test]
    fn from_edges_builds_chain() {
        let dag = TaskDag::from_edges(3, vec![1.0, 2.0, 3.0], &[(0, 1), (1, 2)]);
        assert_eq!(dag.total_work(), 6.0);
        assert_eq!(dag.topo_order().unwrap(), vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn from_edges_rejects_cycle() {
        let _ = TaskDag::from_edges(2, vec![1.0, 1.0], &[(0, 1), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "coloring must be proper")]
    fn from_coloring_rejects_improper() {
        let g = StencilGraph::from_adjacency(vec![vec![1], vec![0]]);
        let c = Coloring::from_colors(vec![0, 0]);
        let _ = TaskDag::from_coloring(&g, &c, vec![1.0, 1.0]);
    }

    #[test]
    fn set_weights_replaces() {
        let mut dag = TaskDag::from_edges(2, vec![1.0, 1.0], &[(0, 1)]);
        dag.set_weights(vec![5.0, 7.0]);
        assert_eq!(dag.total_work(), 12.0);
    }
}
