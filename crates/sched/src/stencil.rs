//! The 27-point stencil adjacency graph over a subdomain lattice.

use stkde_grid::Decomposition;

/// An undirected graph whose vertices are subdomains and whose edges link
/// lattice neighbors (Chebyshev distance 1 — the 27-point stencil of
/// paper §5.2).
///
/// Kept as a plain adjacency structure so the coloring and scheduling code
/// is testable on arbitrary graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StencilGraph {
    adj: Vec<Vec<u32>>,
}

impl StencilGraph {
    /// Build the 27-point stencil graph of a decomposition.
    pub fn from_decomposition(d: &Decomposition) -> Self {
        let adj = d
            .ids()
            .map(|id| d.neighbors(id).into_iter().map(|n| n.0 as u32).collect())
            .collect();
        Self { adj }
    }

    /// Build from an explicit adjacency list (test helper / generic use).
    ///
    /// # Panics
    /// Panics if the adjacency is not symmetric or contains self-loops or
    /// out-of-range vertices.
    pub fn from_adjacency(adj: Vec<Vec<u32>>) -> Self {
        let n = adj.len() as u32;
        for (u, nbrs) in adj.iter().enumerate() {
            for &v in nbrs {
                assert!(v < n, "neighbor {v} out of range");
                assert_ne!(v as usize, u, "self-loop at {u}");
                assert!(
                    adj[v as usize].contains(&(u as u32)),
                    "asymmetric edge {u} -> {v}"
                );
            }
        }
        Self { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Neighbors of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: usize) -> &[u32] {
        &self.adj[v]
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adj.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stkde_grid::{Decomp, Decomposition, GridDims};

    fn lattice(a: usize, b: usize, c: usize) -> StencilGraph {
        let d = Decomposition::new(GridDims::new(a * 4, b * 4, c * 4), Decomp::new(a, b, c));
        StencilGraph::from_decomposition(&d)
    }

    #[test]
    fn lattice_3cube_degrees() {
        let g = lattice(3, 3, 3);
        assert_eq!(g.n(), 27);
        assert_eq!(g.max_degree(), 26); // the center vertex
        let min_deg = (0..g.n()).map(|v| g.neighbors(v).len()).min().unwrap();
        assert_eq!(min_deg, 7); // corner vertices
    }

    #[test]
    fn single_subdomain_has_no_edges() {
        let g = lattice(1, 1, 1);
        assert_eq!(g.n(), 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn line_lattice_is_path_with_diagonals_absent() {
        let g = lattice(4, 1, 1);
        assert_eq!(g.n(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn edges_are_symmetric() {
        let g = lattice(3, 2, 4);
        for u in 0..g.n() {
            for &v in g.neighbors(u) {
                assert!(g.neighbors(v as usize).contains(&(u as u32)));
            }
        }
    }

    #[test]
    fn from_adjacency_accepts_valid() {
        let g = StencilGraph::from_adjacency(vec![vec![1], vec![0, 2], vec![1]]);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn from_adjacency_rejects_asymmetric() {
        let _ = StencilGraph::from_adjacency(vec![vec![1], vec![]]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_adjacency_rejects_self_loop() {
        let _ = StencilGraph::from_adjacency(vec![vec![0]]);
    }
}
