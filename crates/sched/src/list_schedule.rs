//! Event-driven P-processor list-scheduling simulation.
//!
//! This is the machine-independent execution model behind the paper's
//! analysis (§5.2): greedy workers pick the highest-priority ready task the
//! moment a processor frees up, which is exactly what the OpenMP runtime
//! (and our [`crate::executor`]) do. Simulating it with measured task
//! weights predicts the makespan — and hence speedup — on *any* processor
//! count, which is how the repository reproduces the paper's 16-thread
//! figures on hosts with fewer cores (see DESIGN.md §4).

use crate::dag::TaskDag;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Totally ordered f64 for use in heaps (NaN-free inputs assumed).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The outcome of a simulated schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleResult {
    /// Simulated completion time of the last task.
    pub makespan: f64,
    /// Simulated start time of each task.
    pub start: Vec<f64>,
    /// Processor each task ran on.
    pub processor: Vec<usize>,
}

impl ScheduleResult {
    /// Simulated speedup over the serial execution `T₁ / makespan`.
    pub fn speedup(&self, total_work: f64) -> f64 {
        if self.makespan == 0.0 {
            1.0
        } else {
            total_work / self.makespan
        }
    }
}

/// Simulate greedy list scheduling of `dag` on `p` identical processors.
///
/// When several tasks are ready, the one with the highest `priority` value
/// starts first (ties by lower index). Passing the task weights as
/// priorities yields longest-processing-time-first — the order
/// `PB-SYM-PD-SCHED` induces by coloring heavy subdomains first.
///
/// # Panics
/// Panics if `p == 0` or `priority.len() != dag.n()`.
pub fn list_schedule(dag: &TaskDag, p: usize, priority: &[f64]) -> ScheduleResult {
    assert!(p > 0, "need at least one processor");
    assert_eq!(priority.len(), dag.n(), "priority length mismatch");
    let n = dag.n();
    let mut in_deg: Vec<usize> = (0..n).map(|v| dag.preds(v).len()).collect();
    // Ready heap: max-priority first, then min index.
    let mut ready: BinaryHeap<(OrdF64, Reverse<usize>)> = (0..n)
        .filter(|&v| in_deg[v] == 0)
        .map(|v| (OrdF64(priority[v]), Reverse(v)))
        .collect();
    // Running tasks: min-heap on finish time.
    let mut running: BinaryHeap<Reverse<(OrdF64, usize)>> = BinaryHeap::new();
    let mut start = vec![0.0f64; n];
    let mut processor = vec![0usize; n];
    // Idle processor pool (ids only matter for reporting).
    let mut idle: Vec<usize> = (0..p).rev().collect();
    let mut time = 0.0f64;
    let mut makespan = 0.0f64;
    let mut done = 0usize;

    while done < n {
        // Start as many ready tasks as we have idle processors.
        while !idle.is_empty() {
            match ready.pop() {
                Some((_, Reverse(v))) => {
                    let proc = idle.pop().unwrap();
                    start[v] = time;
                    processor[v] = proc;
                    running.push(Reverse((OrdF64(time + dag.weights()[v]), v)));
                }
                None => break,
            }
        }
        // Advance to the next completion.
        let Reverse((OrdF64(finish), v)) = running
            .pop()
            .expect("deadlock: tasks pending but none running (cycle?)");
        time = finish;
        makespan = makespan.max(finish);
        idle.push(processor[v]);
        done += 1;
        for &s in dag.succs(v) {
            in_deg[s as usize] -= 1;
            if in_deg[s as usize] == 0 {
                ready.push((OrdF64(priority[s as usize]), Reverse(s as usize)));
            }
        }
    }
    ScheduleResult {
        makespan,
        start,
        processor,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::{critical_path, graham_bound};
    use proptest::prelude::*;

    #[test]
    fn single_processor_serializes() {
        let dag = TaskDag::from_edges(3, vec![2.0, 3.0, 4.0], &[]);
        let r = list_schedule(&dag, 1, dag.weights());
        assert_eq!(r.makespan, 9.0);
        assert!((r.speedup(9.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn independent_tasks_scale() {
        let dag = TaskDag::from_edges(4, vec![1.0; 4], &[]);
        let r = list_schedule(&dag, 4, dag.weights());
        assert_eq!(r.makespan, 1.0);
        assert_eq!(r.speedup(4.0), 4.0);
    }

    #[test]
    fn chain_cannot_scale() {
        let dag = TaskDag::from_edges(3, vec![1.0; 3], &[(0, 1), (1, 2)]);
        let r = list_schedule(&dag, 8, dag.weights());
        assert_eq!(r.makespan, 3.0);
    }

    #[test]
    fn lpt_priority_beats_spt_here() {
        // Two processors, tasks 5,1,1,1,1,1: starting the long task first
        // (LPT) gives makespan 5; shortest-first strands it at the end (7).
        let w = vec![5.0, 1.0, 1.0, 1.0, 1.0, 1.0];
        let dag = TaskDag::from_edges(6, w.clone(), &[]);
        let lpt = list_schedule(&dag, 2, &w);
        let spt_prio: Vec<f64> = w.iter().map(|x| -x).collect();
        let spt = list_schedule(&dag, 2, &spt_prio);
        assert_eq!(lpt.makespan, 5.0);
        assert_eq!(spt.makespan, 7.0);
    }

    #[test]
    fn respects_dependencies() {
        let dag = TaskDag::from_edges(
            4,
            vec![1.0, 2.0, 2.0, 1.0],
            &[(0, 1), (0, 2), (1, 3), (2, 3)],
        );
        let r = list_schedule(&dag, 2, dag.weights());
        for v in 0..4 {
            for &p in dag.preds(v) {
                let pfinish = r.start[p as usize] + dag.weights()[p as usize];
                assert!(r.start[v] >= pfinish - 1e-12);
            }
        }
        assert_eq!(r.makespan, 4.0); // 0; then 1 & 2 in parallel; then 3
    }

    #[test]
    fn processors_never_oversubscribed() {
        let dag = TaskDag::from_edges(6, vec![2.0; 6], &[]);
        let r = list_schedule(&dag, 2, dag.weights());
        // With 6 equal tasks on 2 processors: makespan 6, and at any time
        // at most 2 tasks overlap.
        assert_eq!(r.makespan, 6.0);
        for i in 0..6 {
            let overlap = (0..6)
                .filter(|&j| {
                    r.start[j] < r.start[i] + 2.0 - 1e-12 && r.start[i] < r.start[j] + 2.0 - 1e-12
                })
                .count();
            assert!(overlap <= 2);
        }
    }

    proptest! {
        /// Simulated makespan always lies in [max(T1/p, T∞), Graham bound].
        #[test]
        fn prop_makespan_within_graham(
            layers in 1usize..5, width in 1usize..5,
            p in 1usize..9, seed in 0u64..60
        ) {
            let n = layers * width;
            let weights: Vec<f64> = (0..n)
                .map(|i| 1.0 + (((i as u64 + 3) * (seed + 11)) % 13) as f64)
                .collect();
            let mut edges = Vec::new();
            for l in 0..layers.saturating_sub(1) {
                for a in 0..width {
                    for b in 0..width {
                        if (a * 2 + b + l + seed as usize).is_multiple_of(4) {
                            edges.push((l * width + a, (l + 1) * width + b));
                        }
                    }
                }
            }
            let dag = TaskDag::from_edges(n, weights, &edges);
            let r = list_schedule(&dag, p, dag.weights());
            let t1 = dag.total_work();
            let tinf = critical_path(&dag).length;
            prop_assert!(r.makespan >= t1 / p as f64 - 1e-9, "below T1/p");
            prop_assert!(r.makespan >= tinf - 1e-9, "below T-inf");
            prop_assert!(
                r.makespan <= graham_bound(t1, tinf, p) + 1e-9,
                "above Graham bound: {} > {}", r.makespan, graham_bound(t1, tinf, p)
            );
        }
    }
}
