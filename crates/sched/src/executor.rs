//! A dependency-counting parallel task executor.
//!
//! This is the stand-in for OpenMP 4.0's `task depend` construct used by
//! the paper's `PB-SYM-PD-SCHED`/`-REP` implementations: tasks become ready
//! when all their DAG predecessors have finished, and greedy workers always
//! grab the highest-priority ready task — i.e. the executor *is* a list
//! scheduler, so Graham's `T_P ≤ (T₁−T∞)/P + T∞` guarantee applies.
//!
//! The worker loops run as `rayon::scope` tasks on the shim's persistent
//! work-stealing pool of the requested size (pools are cached per thread
//! count), so repeated `run_dag` calls — the serve path re-plans per
//! generation — pay no thread-spawn cost after the first. Every loop
//! processes ready tasks to exhaustion and returns as soon as the DAG is
//! drained, so the scope completes even if fewer than `threads` loops ever
//! get a pool worker to themselves (e.g. under `RAYON_NUM_THREADS=1`).
//!
//! Because equal-sized pools share one worker set, a loop must never park
//! a pool worker for the whole run: an unrelated `join` waiting nearby
//! could help-steal the loop job and would then be pinned until the DAG
//! drains. Instead a loop that finds no ready task waits on the condvar
//! for at most [`IDLE_WAIT`], then *returns after respawning itself* —
//! handing its pool worker back to whatever computation it interrupted,
//! while the respawned pass (an ordinary stealable job) resumes the DAG.
//!
//! Panics inside tasks are caught, poison the run, and are re-thrown on the
//! calling thread after all workers have drained (no deadlocks, no lost
//! workers).

use crate::dag::TaskDag;
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Totally ordered f64 key for the ready heap.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

struct SharedState {
    ready: BinaryHeap<(OrdF64, Reverse<usize>)>,
    remaining: usize,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

/// Longest a worker pass may park a pool worker while the ready heap is
/// empty but tasks are in flight (see module docs).
const IDLE_WAIT: std::time::Duration = std::time::Duration::from_millis(1);

/// Everything a worker pass needs, bundled so passes can respawn
/// themselves through `Scope::spawn` without capturing a dozen refs.
struct ExecCtx<'a, F> {
    state: Mutex<SharedState>,
    cv: Condvar,
    in_deg: Vec<AtomicUsize>,
    dag: &'a TaskDag,
    priority: &'a [f64],
    task_fn: F,
}

/// Outcome of one worker pass.
#[derive(PartialEq, Eq)]
enum Pass {
    /// The DAG is drained (or poisoned); do not respawn.
    Finished,
    /// Nothing ready right now but tasks are in flight: hand the pool
    /// worker back and resume in a fresh job.
    Again,
}

/// Run ready tasks until the DAG drains or a brief idle wait expires.
fn worker_pass<F: Fn(usize) + Sync>(ctx: &ExecCtx<'_, F>) -> Pass {
    loop {
        // Acquire a task (or learn that the run is over / currently dry).
        let task = {
            let mut s = ctx.state.lock();
            if s.remaining == 0 || s.panic_payload.is_some() {
                return Pass::Finished;
            }
            match s.ready.pop() {
                Some((_, Reverse(v))) => v,
                None => {
                    ctx.cv.wait_for(&mut s, IDLE_WAIT);
                    if s.remaining == 0 || s.panic_payload.is_some() {
                        return Pass::Finished;
                    }
                    match s.ready.pop() {
                        Some((_, Reverse(v))) => v,
                        None => return Pass::Again,
                    }
                }
            }
        };

        // Run it outside the lock.
        let result = catch_unwind(AssertUnwindSafe(|| (ctx.task_fn)(task)));

        match result {
            Ok(()) => {
                // Release successors.
                for &succ in ctx.dag.succs(task) {
                    let succ = succ as usize;
                    if ctx.in_deg[succ].fetch_sub(1, Ordering::AcqRel) == 1 {
                        let mut s = ctx.state.lock();
                        s.ready.push((OrdF64(ctx.priority[succ]), Reverse(succ)));
                        drop(s);
                        ctx.cv.notify_one();
                    }
                }
                let mut s = ctx.state.lock();
                s.remaining -= 1;
                if s.remaining == 0 {
                    drop(s);
                    ctx.cv.notify_all();
                }
            }
            Err(payload) => {
                let mut s = ctx.state.lock();
                if s.panic_payload.is_none() {
                    s.panic_payload = Some(payload);
                }
                drop(s);
                ctx.cv.notify_all();
                return Pass::Finished;
            }
        }
    }
}

/// Spawn one self-respawning worker pass onto the scope.
fn spawn_pass<'scope, 'a, F>(ctx: &'scope ExecCtx<'a, F>, scope: &rayon::Scope<'scope>)
where
    'a: 'scope,
    F: Fn(usize) + Sync + 'scope,
{
    scope.spawn(move |scope| {
        if worker_pass(ctx) == Pass::Again {
            spawn_pass(ctx, scope);
        }
    });
}

/// Execute every task of `dag` on `threads` worker threads, respecting
/// dependencies; among ready tasks, higher `priority` starts first.
///
/// `task_fn` is called exactly once per task index. If a task panics, the
/// run drains (no new tasks start) and the panic is re-thrown here.
///
/// # Panics
/// Panics if `threads == 0`, if `priority.len() != dag.n()`, or (re-thrown)
/// if a task panicked.
pub fn run_dag<F>(dag: &TaskDag, threads: usize, priority: &[f64], task_fn: F)
where
    F: Fn(usize) + Sync,
{
    assert!(threads > 0, "need at least one worker");
    assert_eq!(priority.len(), dag.n(), "priority length mismatch");
    let n = dag.n();
    if n == 0 {
        return;
    }

    let in_deg: Vec<AtomicUsize> = (0..n)
        .map(|v| AtomicUsize::new(dag.preds(v).len()))
        .collect();
    let ready0: BinaryHeap<(OrdF64, Reverse<usize>)> = (0..n)
        .filter(|&v| dag.preds(v).is_empty())
        .map(|v| (OrdF64(priority[v]), Reverse(v)))
        .collect();
    assert!(
        !ready0.is_empty(),
        "DAG with tasks but no source vertices (cycle)"
    );

    let ctx = ExecCtx {
        state: Mutex::new(SharedState {
            ready: ready0,
            remaining: n,
            panic_payload: None,
        }),
        cv: Condvar::new(),
        in_deg,
        dag,
        priority,
        task_fn,
    };

    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("threads > 0 was asserted above");
    pool.install(|| {
        rayon::scope(|s| {
            let ctx = &ctx;
            for _ in 0..threads {
                spawn_pass(ctx, s);
            }
        });
    });

    let payload = ctx.state.lock().panic_payload.take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex as StdMutex;

    /// Tick counter for ordering assertions.
    fn run_and_trace(dag: &TaskDag, threads: usize) -> (Vec<usize>, Vec<usize>) {
        let clock = AtomicUsize::new(0);
        let starts: Vec<AtomicUsize> = (0..dag.n()).map(|_| AtomicUsize::new(0)).collect();
        let ends: Vec<AtomicUsize> = (0..dag.n()).map(|_| AtomicUsize::new(0)).collect();
        run_dag(dag, threads, dag.weights(), |v| {
            starts[v].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
            std::thread::yield_now();
            ends[v].store(clock.fetch_add(1, Ordering::SeqCst), Ordering::SeqCst);
        });
        (
            starts.iter().map(|a| a.load(Ordering::SeqCst)).collect(),
            ends.iter().map(|a| a.load(Ordering::SeqCst)).collect(),
        )
    }

    #[test]
    fn runs_every_task_once() {
        let dag = TaskDag::from_edges(20, vec![1.0; 20], &[]);
        let count = AtomicUsize::new(0);
        let seen = StdMutex::new(vec![0u8; 20]);
        run_dag(&dag, 4, dag.weights(), |v| {
            count.fetch_add(1, Ordering::SeqCst);
            seen.lock().unwrap()[v] += 1;
        });
        assert_eq!(count.load(Ordering::SeqCst), 20);
        assert!(seen.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn respects_dependencies_under_concurrency() {
        // Two independent chains of length 4, threads = 4.
        let edges = vec![(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (6, 7)];
        let dag = TaskDag::from_edges(8, vec![1.0; 8], &edges);
        for _ in 0..20 {
            let (starts, ends) = run_and_trace(&dag, 4);
            for &(u, v) in &edges {
                assert!(
                    ends[u] < starts[v],
                    "task {v} started (tick {}) before pred {u} finished (tick {})",
                    starts[v],
                    ends[u]
                );
            }
        }
    }

    #[test]
    fn diamond_order() {
        let dag = TaskDag::from_edges(4, vec![1.0; 4], &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let (starts, ends) = run_and_trace(&dag, 2);
        assert!(ends[0] < starts[1] && ends[0] < starts[2]);
        assert!(ends[1] < starts[3] && ends[2] < starts[3]);
    }

    #[test]
    fn single_thread_runs_in_priority_order() {
        let dag = TaskDag::from_edges(4, vec![1.0; 4], &[]);
        let priority = vec![1.0, 4.0, 2.0, 3.0];
        let order = StdMutex::new(Vec::new());
        run_dag(&dag, 1, &priority, |v| order.lock().unwrap().push(v));
        assert_eq!(*order.lock().unwrap(), vec![1, 3, 2, 0]);
    }

    #[test]
    fn empty_dag_is_noop() {
        let dag = TaskDag::from_edges(0, vec![], &[]);
        run_dag(&dag, 3, &[], |_| panic!("should not run"));
    }

    #[test]
    fn task_panic_propagates() {
        let dag = TaskDag::from_edges(8, vec![1.0; 8], &[]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_dag(&dag, 4, dag.weights(), |v| {
                if v == 3 {
                    panic!("boom in task 3");
                }
            });
        }));
        let payload = result.expect_err("panic should propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");
    }

    #[test]
    fn panic_does_not_deadlock_with_blocked_tasks() {
        // Task 1 depends on 0; 0 panics; the run must still terminate.
        let dag = TaskDag::from_edges(2, vec![1.0; 2], &[(0, 1)]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_dag(&dag, 2, dag.weights(), |v| {
                if v == 0 {
                    panic!("first task fails");
                }
            });
        }));
        assert!(result.is_err());
    }

    #[test]
    fn many_threads_few_tasks() {
        let dag = TaskDag::from_edges(2, vec![1.0; 2], &[(0, 1)]);
        let count = AtomicUsize::new(0);
        run_dag(&dag, 16, dag.weights(), |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stress_random_dag() {
        // Layered random DAG, repeated runs to shake out races.
        let mut edges = Vec::new();
        let (layers, width) = (6, 8);
        let n = layers * width;
        for l in 0..layers - 1 {
            for a in 0..width {
                for b in 0..width {
                    if (a * 7 + b * 3 + l) % 5 == 0 {
                        edges.push((l * width + a, (l + 1) * width + b));
                    }
                }
            }
        }
        let dag = TaskDag::from_edges(n, vec![1.0; n], &edges);
        for _ in 0..10 {
            let (starts, ends) = run_and_trace(&dag, 4);
            for &(u, v) in &edges {
                assert!(ends[u] < starts[v]);
            }
        }
    }
}
