//! Vertex colorings of the stencil graph.
//!
//! A proper coloring partitions the subdomains into sets that can safely
//! run concurrently (no two adjacent subdomains share a color). The paper
//! uses two colorings:
//!
//! * the structural **8-color parity** coloring (§5.1): color = parity bits
//!   of the lattice cell — this is what the phased `PB-SYM-PD`
//!   implementation's eight `parallel for` constructs realize;
//! * a **greedy coloring in non-increasing load order** (§5.2,
//!   `PB-SYM-PD-SCHED`): heavier subdomains get smaller colors, so the
//!   schedule starts them early and the implied critical path shrinks.

use crate::stencil::StencilGraph;
use stkde_grid::Decomposition;

/// A proper vertex coloring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u32>,
    num_colors: u32,
}

impl Coloring {
    /// Wrap an explicit color assignment.
    pub fn from_colors(colors: Vec<u32>) -> Self {
        let num_colors = colors.iter().max().map_or(0, |&m| m + 1);
        Self { colors, num_colors }
    }

    /// Color of vertex `v`.
    #[inline]
    pub fn color(&self, v: usize) -> u32 {
        self.colors[v]
    }

    /// All colors, indexed by vertex.
    #[inline]
    pub fn colors(&self) -> &[u32] {
        &self.colors
    }

    /// Number of distinct colors (max color + 1).
    #[inline]
    pub fn num_colors(&self) -> u32 {
        self.num_colors
    }

    /// Vertices of each color class, in vertex order.
    pub fn classes(&self) -> Vec<Vec<usize>> {
        let mut classes = vec![Vec::new(); self.num_colors as usize];
        for (v, &c) in self.colors.iter().enumerate() {
            classes[c as usize].push(v);
        }
        classes
    }

    /// `true` if no edge of `graph` joins two vertices of the same color.
    pub fn is_valid(&self, graph: &StencilGraph) -> bool {
        (0..graph.n()).all(|v| {
            graph
                .neighbors(v)
                .iter()
                .all(|&u| self.colors[u as usize] != self.colors[v])
        })
    }
}

/// The identity vertex order `0, 1, …, n-1`.
pub fn order_lexicographic(n: usize) -> Vec<usize> {
    (0..n).collect()
}

/// Vertices sorted by non-increasing weight (ties broken by index). This is
/// the load-aware order of `PB-SYM-PD-SCHED`: the heaviest subdomains are
/// colored first, land on the smallest colors, and therefore start first in
/// the implied schedule.
pub fn order_by_weight_desc(weights: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

/// Greedy coloring: visit vertices in `order`, assigning each the smallest
/// color not used by an already-colored neighbor.
///
/// # Panics
/// Panics if `order` is not a permutation of the vertices.
pub fn greedy_coloring(graph: &StencilGraph, order: &[usize]) -> Coloring {
    let n = graph.n();
    assert_eq!(order.len(), n, "order must cover all vertices");
    const UNSET: u32 = u32::MAX;
    let mut colors = vec![UNSET; n];
    // Scratch "forbidden" marks, reset lazily via a stamp counter.
    let mut mark = vec![usize::MAX; 64];
    for (stamp, &v) in order.iter().enumerate() {
        assert!(colors[v] == UNSET, "vertex {v} visited twice");
        for &u in graph.neighbors(v) {
            let c = colors[u as usize];
            if c != UNSET {
                if c as usize >= mark.len() {
                    mark.resize(c as usize + 1, usize::MAX);
                }
                mark[c as usize] = stamp;
            }
        }
        let mut c = 0u32;
        while (c as usize) < mark.len() && mark[c as usize] == stamp {
            c += 1;
        }
        colors[v] = c;
    }
    Coloring::from_colors(colors)
}

/// The structural 8-color parity coloring of a decomposition lattice
/// (paper §5.1): the color of a subdomain is the parity triple of its
/// lattice coordinates, giving at most eight classes processed one after
/// another by the phased `PB-SYM-PD`.
pub fn parity_coloring(d: &Decomposition) -> Coloring {
    let colors = d.ids().map(|id| d.parity_class(id) as u32).collect();
    Coloring::from_colors(colors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use stkde_grid::{Decomp, Decomposition, GridDims};

    fn lattice(a: usize, b: usize, c: usize) -> (Decomposition, StencilGraph) {
        let d = Decomposition::new(GridDims::new(a * 4, b * 4, c * 4), Decomp::new(a, b, c));
        let g = StencilGraph::from_decomposition(&d);
        (d, g)
    }

    #[test]
    fn parity_coloring_is_valid_with_8_colors() {
        let (d, g) = lattice(4, 4, 4);
        let c = parity_coloring(&d);
        assert!(c.is_valid(&g));
        assert_eq!(c.num_colors(), 8);
    }

    #[test]
    fn parity_coloring_on_thin_lattice_uses_fewer_classes() {
        let (d, g) = lattice(4, 1, 1);
        let c = parity_coloring(&d);
        assert!(c.is_valid(&g));
        // Colors used: parity of x only → 2 classes (ids 0 and 1).
        let used: std::collections::HashSet<u32> = c.colors().iter().copied().collect();
        assert_eq!(used.len(), 2);
    }

    #[test]
    fn greedy_lexicographic_is_valid() {
        let (_, g) = lattice(4, 3, 5);
        let c = greedy_coloring(&g, &order_lexicographic(g.n()));
        assert!(c.is_valid(&g));
        // Greedy on a 27-stencil needs at most max_degree + 1 colors;
        // in practice 8 for a parity-colorable lattice.
        assert!(c.num_colors() <= 27);
    }

    #[test]
    fn greedy_weighted_is_valid_and_heaviest_gets_color_zero() {
        let (_, g) = lattice(3, 3, 3);
        let mut weights = vec![1.0; g.n()];
        weights[13] = 100.0; // center vertex heaviest
        let order = order_by_weight_desc(&weights);
        assert_eq!(order[0], 13);
        let c = greedy_coloring(&g, &order);
        assert!(c.is_valid(&g));
        assert_eq!(c.color(13), 0);
    }

    #[test]
    fn order_by_weight_desc_breaks_ties_by_index() {
        let order = order_by_weight_desc(&[1.0, 3.0, 3.0, 0.5]);
        assert_eq!(order, vec![1, 2, 0, 3]);
    }

    #[test]
    fn classes_partition_vertices() {
        let (d, _) = lattice(3, 2, 2);
        let c = parity_coloring(&d);
        let classes = c.classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, d.count());
    }

    #[test]
    fn invalid_coloring_detected() {
        let g = StencilGraph::from_adjacency(vec![vec![1], vec![0]]);
        let c = Coloring::from_colors(vec![0, 0]);
        assert!(!c.is_valid(&g));
    }

    #[test]
    #[should_panic(expected = "visited twice")]
    fn greedy_rejects_duplicate_order() {
        let g = StencilGraph::from_adjacency(vec![vec![1], vec![0]]);
        let _ = greedy_coloring(&g, &[0, 0]);
    }

    proptest! {
        #[test]
        fn prop_greedy_valid_on_random_lattices(
            a in 1usize..6, b in 1usize..6, c in 1usize..6,
            seed in 0u64..100
        ) {
            let (_, g) = lattice(a, b, c);
            // Pseudo-random weight order.
            let weights: Vec<f64> = (0..g.n())
                .map(|i| (((i as u64 + 1) * (seed + 7)) % 101) as f64)
                .collect();
            let coloring = greedy_coloring(&g, &order_by_weight_desc(&weights));
            prop_assert!(coloring.is_valid(&g));
            prop_assert!(coloring.num_colors() <= g.max_degree() as u32 + 1);
        }

        #[test]
        fn prop_parity_valid(
            a in 1usize..7, b in 1usize..7, c in 1usize..7
        ) {
            let (d, g) = lattice(a, b, c);
            prop_assert!(parity_coloring(&d).is_valid(&g));
        }
    }
}
