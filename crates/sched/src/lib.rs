//! Scheduling substrate for the point-decomposed STKDE algorithms.
//!
//! `PB-SYM-PD` and its refinements (paper §5) turn the subdomain lattice
//! into a scheduling problem:
//!
//! 1. the A×B×C lattice with 27-point adjacency becomes a [`StencilGraph`];
//! 2. a vertex [`coloring`] (8-color parity for `PD`, load-aware greedy for
//!    `PD-SCHED`) determines which subdomains may run concurrently;
//! 3. orienting every stencil edge from lower to higher color yields a
//!    [`TaskDag`] whose [`critical_path`] bounds attainable parallelism by
//!    Graham's classic list-scheduling theorem
//!    `T_P ≤ (T₁ − T∞)/P + T∞`;
//! 4. the DAG is executed either *for real* by the dependency-counting
//!    worker-pool [`executor`] (the OpenMP-4.0 `task depend` stand-in), or
//!    *in simulation* by [`list_schedule`] — an event-driven P-processor
//!    list-scheduling model used to reproduce the paper's 16-thread speedup
//!    figures on machines with fewer cores;
//! 5. [`replication`] implements the moldable-task transformation of
//!    `PB-SYM-PD-REP`: splitting critical-path tasks into replicas that
//!    accumulate into private buffers plus a cheap merge task.

#![warn(missing_docs)]

pub mod coloring;
pub mod critical_path;
pub mod dag;
pub mod executor;
pub mod list_schedule;
pub mod replication;
pub mod stencil;

pub use coloring::{
    greedy_coloring, order_by_weight_desc, order_lexicographic, parity_coloring, Coloring,
};
pub use critical_path::{critical_path, graham_bound, CriticalPath};
pub use dag::TaskDag;
pub use executor::run_dag;
pub use list_schedule::{list_schedule, ScheduleResult};
pub use replication::{plan_replication, RepParams, RepPlan};
pub use stencil::StencilGraph;
