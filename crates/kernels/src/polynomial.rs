//! Additional polynomial kernels (quartic/biweight, triweight, uniform).
//!
//! These are the standard compact-support kernels of Silverman (1986), the
//! paper's reference for kernel density estimation. They all share the
//! paper kernels' support and separability, so every algorithm in
//! `stkde-core` works with them unchanged.

use crate::traits::{in_spatial_support, in_temporal_support, SpaceTimeKernel};
use serde::{Deserialize, Serialize};

/// Quartic (biweight) kernel:
/// `ks(u,v) = 3/π·(1−u²−v²)²`, `kt(w) = 15/16·(1−w²)²`.
///
/// Both factors integrate to one over their support.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quartic;

impl SpaceTimeKernel for Quartic {
    #[inline(always)]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        let r2 = u * u + v * v;
        if r2 < 1.0 {
            let a = 1.0 - r2;
            (3.0 / std::f64::consts::PI) * a * a
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn temporal(&self, w: f64) -> f64 {
        if in_temporal_support(w) {
            let a = 1.0 - w * w;
            (15.0 / 16.0) * a * a
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "quartic"
    }
}

/// Triweight kernel:
/// `ks(u,v) = 4/π·(1−u²−v²)³`, `kt(w) = 35/32·(1−w²)³`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Triweight;

impl SpaceTimeKernel for Triweight {
    #[inline(always)]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        let r2 = u * u + v * v;
        if r2 < 1.0 {
            let a = 1.0 - r2;
            (4.0 / std::f64::consts::PI) * a * a * a
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn temporal(&self, w: f64) -> f64 {
        if in_temporal_support(w) {
            let a = 1.0 - w * w;
            (35.0 / 32.0) * a * a * a
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "triweight"
    }
}

/// Uniform (flat) kernel:
/// `ks(u,v) = 1/π` on the disk, `kt(w) = 1/2` on the interval.
///
/// Counts events in the cylinder with no distance decay — the cheapest
/// kernel, useful as a smoothing-free baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Uniform;

impl SpaceTimeKernel for Uniform {
    #[inline(always)]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        if in_spatial_support(u, v) {
            std::f64::consts::FRAC_1_PI
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn temporal(&self, w: f64) -> f64 {
        if in_temporal_support(w) {
            0.5
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn all_kernels() -> Vec<Box<dyn SpaceTimeKernel>> {
        vec![Box::new(Quartic), Box::new(Triweight), Box::new(Uniform)]
    }

    #[test]
    fn peaks_are_at_origin() {
        for k in all_kernels() {
            let peak = k.spatial(0.0, 0.0);
            assert!(peak > 0.0, "{} has zero peak", k.name());
            assert!(k.spatial(0.5, 0.5) <= peak);
            assert!(k.temporal(0.5) <= k.temporal(0.0));
        }
    }

    #[test]
    fn uniform_is_flat_on_support() {
        let k = Uniform;
        assert_eq!(k.spatial(0.0, 0.0), k.spatial(0.5, 0.5));
        assert_eq!(k.temporal(-0.9), k.temporal(0.3));
    }

    #[test]
    fn higher_order_means_faster_decay() {
        // At the same radius, triweight < quartic relative to their peaks.
        let r = 0.8;
        let q = Quartic.spatial(r, 0.0) / Quartic.spatial(0.0, 0.0);
        let t = Triweight.spatial(r, 0.0) / Triweight.spatial(0.0, 0.0);
        assert!(t < q);
    }

    proptest! {
        #[test]
        fn all_nonnegative_zero_outside(
            u in -2.0..2.0f64, v in -2.0..2.0f64, w in -2.0..2.0f64
        ) {
            for k in all_kernels() {
                let val = k.eval(u, v, w);
                prop_assert!(val >= 0.0 && val.is_finite());
                if u * u + v * v >= 1.0 {
                    prop_assert_eq!(k.spatial(u, v), 0.0);
                }
                if w.abs() > 1.0 {
                    prop_assert_eq!(k.temporal(w), 0.0);
                }
            }
        }
    }
}
