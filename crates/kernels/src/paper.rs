//! The kernel pair as printed in the paper.

use crate::traits::{in_spatial_support, in_temporal_support, SpaceTimeKernel};
use serde::{Deserialize, Serialize};

/// The kernel pair exactly as printed in §2.1 of the paper:
///
/// ```text
/// ks(u, v) = π/2 · (1 − u)² (1 − v)²
/// kt(w)    = 3/4 · (1 − w)²
/// ```
///
/// interpreted with `|u|, |v|, |w|` so the factors decay with distance and
/// are symmetric (the printed form is almost certainly a typesetting of
/// squared *normalized distances*; taken verbatim it would *grow* for
/// negative offsets). The same supports as [`crate::Epanechnikov`] are
/// applied (`u²+v² < 1`, `|w| ≤ 1`) per the paper's membership conditions
/// `di < hs`, `|ti − t| ≤ ht`.
///
/// Provided for completeness; the flop count per evaluation matches the
/// default kernel, so measured algorithm behaviour is unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaperLiteral;

impl SpaceTimeKernel for PaperLiteral {
    #[inline(always)]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        if in_spatial_support(u, v) {
            let a = 1.0 - u.abs();
            let b = 1.0 - v.abs();
            std::f64::consts::FRAC_PI_2 * a * a * b * b
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn temporal(&self, w: f64) -> f64 {
        if in_temporal_support(w) {
            let a = 1.0 - w.abs();
            0.75 * a * a
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "paper-literal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn peak_values() {
        let k = PaperLiteral;
        assert!((k.spatial(0.0, 0.0) - std::f64::consts::FRAC_PI_2).abs() < 1e-15);
        assert!((k.temporal(0.0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn symmetric_in_sign() {
        let k = PaperLiteral;
        assert_eq!(k.spatial(0.3, -0.4), k.spatial(-0.3, 0.4));
        assert_eq!(k.temporal(0.5), k.temporal(-0.5));
    }

    #[test]
    fn support_matches_epanechnikov() {
        let k = PaperLiteral;
        assert_eq!(k.spatial(0.8, 0.8), 0.0);
        assert!(k.spatial(0.7, 0.7) > 0.0);
        assert_eq!(k.temporal(1.1), 0.0);
        assert!(k.temporal(1.0) >= 0.0);
    }

    proptest! {
        #[test]
        fn nonnegative_decaying(u in -1.5..1.5f64, v in -1.5..1.5f64, w in -1.5..1.5f64) {
            let k = PaperLiteral;
            prop_assert!(k.eval(u, v, w) >= 0.0);
            prop_assert!(k.eval(u, v, w).is_finite());
        }
    }
}
