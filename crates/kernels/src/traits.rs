//! The separable space-time kernel abstraction.

/// A separable space-time kernel: a spatial factor `ks(u, v)` supported on
/// the open unit disk and a temporal factor `kt(w)` supported on the closed
/// interval `[-1, 1]`.
///
/// Implementations must:
///
/// * return `0` outside the support (`u²+v² ≥ 1`, resp. `|w| > 1`),
/// * be non-negative on the support,
/// * be finite everywhere.
///
/// The support boundaries mirror the paper's membership tests:
/// `√((xi−x)² + (yi−y)²) < hs` (strict) and `|ti − t| ≤ ht` (inclusive).
///
/// Kernels need not integrate to one individually; estimators divide by the
/// normalization `n·hs²·ht`, so a kernel whose product integrates to one
/// yields a proper density (see [`crate::integrate`] for numeric checks).
pub trait SpaceTimeKernel: Send + Sync {
    /// Spatial factor at normalized offsets `u = (x−xi)/hs`, `v = (y−yi)/hs`.
    ///
    /// Must return `0` whenever `u² + v² ≥ 1` (the open-unit-disk support
    /// above). This is a **correctness contract**, not just a convention:
    /// the scatter engine's span clipping derives each row's nonzero
    /// X-span from `u² + v² < 1` and never evaluates the kernel outside
    /// it, so a kernel with wider support (e.g. square) would silently
    /// lose the mass outside the disk.
    fn spatial(&self, u: f64, v: f64) -> f64;

    /// Temporal factor at normalized offset `w = (t−ti)/ht`.
    fn temporal(&self, w: f64) -> f64;

    /// Full kernel value `ks(u, v) · kt(w)`.
    #[inline]
    fn eval(&self, u: f64, v: f64, w: f64) -> f64 {
        let s = self.spatial(u, v);
        if s == 0.0 {
            // Skip the temporal evaluation off-support (hot path: most of a
            // cylinder's bounding box is outside the inscribed disk).
            0.0
        } else {
            s * self.temporal(w)
        }
    }

    /// Human-readable kernel name (for reports and experiment logs).
    fn name(&self) -> &'static str;
}

/// `true` if `(u, v)` lies in the spatial support (open unit disk).
#[inline(always)]
pub fn in_spatial_support(u: f64, v: f64) -> bool {
    u * u + v * v < 1.0
}

/// `true` if `w` lies in the temporal support (closed unit interval).
#[inline(always)]
pub fn in_temporal_support(w: f64) -> bool {
    w.abs() <= 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat;
    impl SpaceTimeKernel for Flat {
        fn spatial(&self, u: f64, v: f64) -> f64 {
            if in_spatial_support(u, v) {
                1.0
            } else {
                0.0
            }
        }
        fn temporal(&self, w: f64) -> f64 {
            if in_temporal_support(w) {
                1.0
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    #[test]
    fn eval_is_product() {
        let k = Flat;
        assert_eq!(k.eval(0.0, 0.0, 0.0), 1.0);
        assert_eq!(k.eval(0.8, 0.8, 0.0), 0.0); // outside disk
        assert_eq!(k.eval(0.0, 0.0, 1.5), 0.0); // outside interval
    }

    #[test]
    fn support_predicates() {
        assert!(in_spatial_support(0.0, 0.0));
        assert!(in_spatial_support(0.7, 0.7)); // 0.98 < 1
        assert!(!in_spatial_support(1.0, 0.0));
        assert!(in_temporal_support(1.0)); // inclusive
        assert!(in_temporal_support(-1.0));
        assert!(!in_temporal_support(1.0001));
    }
}
