//! The default STKDE kernel (Nakaya & Yano 2010).

use crate::traits::SpaceTimeKernel;
use serde::{Deserialize, Serialize};

/// Product Epanechnikov kernel:
///
/// ```text
/// ks(u, v) = 2/π · (1 − u² − v²)   for u² + v² < 1, else 0
/// kt(w)    = 3/4 · (1 − w²)        for |w| ≤ 1,     else 0
/// ```
///
/// This is the kernel pair of Nakaya & Yano (2010), the space-time cube
/// formulation the paper references for STKDE. Both factors integrate to
/// one over their support (disk resp. interval), so with the `1/(n·hs²·ht)`
/// normalization the estimate is a proper density.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Epanechnikov;

impl SpaceTimeKernel for Epanechnikov {
    #[inline(always)]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        let r2 = u * u + v * v;
        if r2 < 1.0 {
            std::f64::consts::FRAC_2_PI * (1.0 - r2)
        } else {
            0.0
        }
    }

    #[inline(always)]
    fn temporal(&self, w: f64) -> f64 {
        if w.abs() <= 1.0 {
            0.75 * (1.0 - w * w)
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "epanechnikov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::{in_spatial_support, in_temporal_support};
    use proptest::prelude::*;

    #[test]
    fn peak_values() {
        let k = Epanechnikov;
        assert!((k.spatial(0.0, 0.0) - 2.0 / std::f64::consts::PI).abs() < 1e-15);
        assert!((k.temporal(0.0) - 0.75).abs() < 1e-15);
    }

    #[test]
    fn vanishes_at_and_outside_boundary() {
        let k = Epanechnikov;
        assert_eq!(k.spatial(1.0, 0.0), 0.0);
        assert_eq!(k.spatial(0.8, 0.8), 0.0);
        assert_eq!(k.temporal(1.0), 0.0); // continuous: zero *at* boundary
        assert_eq!(k.temporal(-1.2), 0.0);
    }

    #[test]
    fn radially_symmetric() {
        let k = Epanechnikov;
        let r = 0.6;
        for deg in 0..12 {
            let a = f64::from(deg) * std::f64::consts::PI / 6.0;
            let v = k.spatial(r * a.cos(), r * a.sin());
            assert!((v - k.spatial(r, 0.0)).abs() < 1e-12);
        }
    }

    proptest! {
        #[test]
        fn nonnegative_and_finite(u in -2.0..2.0f64, v in -2.0..2.0f64, w in -2.0..2.0f64) {
            let k = Epanechnikov;
            let val = k.eval(u, v, w);
            prop_assert!(val >= 0.0);
            prop_assert!(val.is_finite());
        }

        #[test]
        fn zero_outside_support(u in -3.0..3.0f64, v in -3.0..3.0f64, w in -3.0..3.0f64) {
            let k = Epanechnikov;
            if !in_spatial_support(u, v) {
                prop_assert_eq!(k.spatial(u, v), 0.0);
            }
            if !in_temporal_support(w) {
                prop_assert_eq!(k.temporal(w), 0.0);
            }
        }

        #[test]
        fn monotone_decay_in_radius(r1 in 0.0..1.0f64, r2 in 0.0..1.0f64) {
            let k = Epanechnikov;
            let (lo, hi) = if r1 < r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(k.spatial(hi, 0.0) <= k.spatial(lo, 0.0));
            prop_assert!(k.temporal(hi) <= k.temporal(lo));
        }
    }
}
