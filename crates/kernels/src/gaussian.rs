//! Truncated Gaussian kernel (extension beyond the paper).

use crate::traits::{in_spatial_support, in_temporal_support, SpaceTimeKernel};
use serde::{Deserialize, Serialize};

/// A Gaussian kernel truncated at the bandwidth so it keeps the same compact
/// support as the paper's kernels (and therefore the same cylinder-based
/// algorithm structure):
///
/// ```text
/// ks(u, v) ∝ exp(−(u² + v²)/(2σ²))   for u² + v² < 1
/// kt(w)    ∝ exp(−w²/(2σ²))          for |w| ≤ 1
/// ```
///
/// `σ` is expressed as a fraction of the bandwidth. This is the kind of
/// "arbitrarily shaped" kernel discussed in the related work (Lopez-Novoa);
/// note it is still *separable*, so `PB-SYM` applies — kernels that are not
/// separable would only support `PB`-level optimizations (paper §7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TruncatedGaussian {
    /// Standard deviation as a fraction of the bandwidth.
    pub sigma: f64,
}

impl TruncatedGaussian {
    /// Create with the given `σ` (must be positive).
    ///
    /// # Panics
    /// Panics if `sigma <= 0`.
    pub fn new(sigma: f64) -> Self {
        assert!(sigma > 0.0 && sigma.is_finite(), "sigma must be positive");
        Self { sigma }
    }
}

impl Default for TruncatedGaussian {
    /// σ = 1/3: the truncation at the bandwidth is at 3σ, keeping ≈99.7% of
    /// the untruncated mass.
    fn default() -> Self {
        Self { sigma: 1.0 / 3.0 }
    }
}

impl SpaceTimeKernel for TruncatedGaussian {
    #[inline]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        if in_spatial_support(u, v) {
            let s2 = 2.0 * self.sigma * self.sigma;
            (-(u * u + v * v) / s2).exp() / (std::f64::consts::PI * s2)
        } else {
            0.0
        }
    }

    #[inline]
    fn temporal(&self, w: f64) -> f64 {
        if in_temporal_support(w) {
            let s2 = 2.0 * self.sigma * self.sigma;
            (-(w * w) / s2).exp() / (std::f64::consts::PI * s2).sqrt()
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "truncated-gaussian"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_sigma_is_third() {
        assert!((TruncatedGaussian::default().sigma - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        let _ = TruncatedGaussian::new(0.0);
    }

    #[test]
    fn decays_with_radius() {
        let k = TruncatedGaussian::default();
        assert!(k.spatial(0.0, 0.0) > k.spatial(0.5, 0.0));
        assert!(k.spatial(0.5, 0.0) > k.spatial(0.9, 0.0));
        assert!(k.temporal(0.0) > k.temporal(0.8));
    }

    #[test]
    fn truncated_outside_support() {
        let k = TruncatedGaussian::default();
        assert_eq!(k.spatial(1.0, 0.1), 0.0);
        assert_eq!(k.temporal(-1.01), 0.0);
        assert!(k.temporal(1.0) > 0.0); // inclusive boundary
    }
}
