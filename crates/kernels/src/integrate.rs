//! Numeric integration of kernels over their support.
//!
//! Used by tests to verify normalization: a kernel pair whose spatial factor
//! integrates to 1 over the unit disk and whose temporal factor integrates
//! to 1 over `[-1, 1]` makes the STKDE a proper density under the paper's
//! `1/(n·hs²·ht)` normalization.

use crate::traits::SpaceTimeKernel;

/// Midpoint-rule integral of the spatial factor over the unit disk
/// (`steps²` sample grid on the bounding square).
pub fn spatial_integral<K: SpaceTimeKernel>(kernel: &K, steps: usize) -> f64 {
    let h = 2.0 / steps as f64;
    let mut acc = 0.0;
    for i in 0..steps {
        let u = -1.0 + (i as f64 + 0.5) * h;
        for j in 0..steps {
            let v = -1.0 + (j as f64 + 0.5) * h;
            acc += kernel.spatial(u, v);
        }
    }
    acc * h * h
}

/// Midpoint-rule integral of the temporal factor over `[-1, 1]`.
pub fn temporal_integral<K: SpaceTimeKernel>(kernel: &K, steps: usize) -> f64 {
    let h = 2.0 / steps as f64;
    (0..steps)
        .map(|i| kernel.temporal(-1.0 + (i as f64 + 0.5) * h))
        .sum::<f64>()
        * h
}

/// Integral of the full space-time kernel over its support
/// (product of the two factor integrals, by separability).
pub fn total_integral<K: SpaceTimeKernel>(kernel: &K, steps: usize) -> f64 {
    spatial_integral(kernel, steps) * temporal_integral(kernel, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epanechnikov, PaperLiteral, Quartic, Triweight, TruncatedGaussian, Uniform};

    const STEPS: usize = 2000;
    const TOL: f64 = 2e-3;

    #[test]
    fn epanechnikov_is_normalized() {
        let k = Epanechnikov;
        assert!((spatial_integral(&k, STEPS) - 1.0).abs() < TOL);
        assert!((temporal_integral(&k, STEPS) - 1.0).abs() < TOL);
        assert!((total_integral(&k, STEPS) - 1.0).abs() < 2.0 * TOL);
    }

    #[test]
    fn quartic_and_triweight_are_normalized() {
        for k in [&Quartic as &dyn SpaceTimeKernel, &Triweight] {
            assert!(
                (spatial_integral_dyn(k, STEPS) - 1.0).abs() < TOL,
                "{} spatial not normalized",
                k.name()
            );
            assert!(
                (temporal_integral_dyn(k, STEPS) - 1.0).abs() < TOL,
                "{} temporal not normalized",
                k.name()
            );
        }
    }

    #[test]
    fn uniform_is_normalized() {
        let k = Uniform;
        assert!((spatial_integral(&k, STEPS) - 1.0).abs() < TOL);
        assert!((temporal_integral(&k, STEPS) - 1.0).abs() < TOL);
    }

    #[test]
    fn paper_literal_mass_is_finite_positive() {
        // The literal printed form is *not* normalized — that only rescales
        // the density, it does not change any algorithmic behaviour.
        let k = PaperLiteral;
        let m = total_integral(&k, STEPS);
        assert!(m > 0.0 && m.is_finite());
    }

    #[test]
    fn truncated_gaussian_mass_close_to_one() {
        // Truncation at 3σ cuts ≈0.3% of the spatial mass.
        let k = TruncatedGaussian::default();
        let m = total_integral(&k, STEPS);
        assert!((m - 1.0).abs() < 0.02, "mass {m}");
    }

    fn spatial_integral_dyn(k: &dyn SpaceTimeKernel, steps: usize) -> f64 {
        let h = 2.0 / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let u = -1.0 + (i as f64 + 0.5) * h;
            for j in 0..steps {
                let v = -1.0 + (j as f64 + 0.5) * h;
                acc += k.spatial(u, v);
            }
        }
        acc * h * h
    }

    fn temporal_integral_dyn(k: &dyn SpaceTimeKernel, steps: usize) -> f64 {
        let h = 2.0 / steps as f64;
        (0..steps)
            .map(|i| k.temporal(-1.0 + (i as f64 + 0.5) * h))
            .sum::<f64>()
            * h
    }
}
