//! Tabulated (lookup-table) kernel evaluation — an ablation on the cost
//! of the kernel flops.
//!
//! The paper estimates ≈40 flops per voxel update for `PB` and motivates
//! `PB-SYM` entirely by *removing redundant kernel evaluations* (§3.2).
//! A lookup table attacks the same cost from the other side: precompute
//! the kernel profile once and replace each evaluation by an indexed
//! linear interpolation. [`Tabulated`] wraps any *radially symmetric*
//! separable kernel — the spatial factor is tabulated over `s = u² + v²`
//! and the temporal factor over `q = w²`, so no square roots are taken.
//!
//! For polynomial kernels (Epanechnikov, quartic, …) the table buys
//! little — the closed form is already a handful of multiplies (and for
//! the Epanechnikov, which is *linear in `s`*, interpolation is exact).
//! For transcendental kernels ([`TruncatedGaussian`](crate::TruncatedGaussian),
//! whose every evaluation calls `exp`) the table removes the
//! transcendental from the inner loop entirely. The `ablations` Criterion
//! bench quantifies both cases; interpolation error is bounded and
//! testable via [`Tabulated::max_spatial_error`].

use crate::traits::SpaceTimeKernel;

/// A kernel whose factors are evaluated by linear interpolation in
/// precomputed tables over the *squared* normalized offsets.
///
/// The base kernel must be radially symmetric in its spatial factor
/// (`ks(u, v)` a function of `u² + v²`) and even in its temporal factor —
/// true of every kernel this crate provides. Construction checks this on
/// a sample grid and panics otherwise.
///
/// ```
/// use stkde_kernels::{SpaceTimeKernel, Tabulated, TruncatedGaussian};
///
/// let exact = TruncatedGaussian::default();
/// let lut = Tabulated::new(TruncatedGaussian::default());
/// // No `exp` in the hot path, bounded interpolation error:
/// assert!((lut.eval(0.3, 0.2, 0.5) - exact.eval(0.3, 0.2, 0.5)).abs() < 1e-4);
/// assert!(lut.max_spatial_error(10_000) < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct Tabulated<K> {
    base: K,
    /// `spatial[i] = ks(√(i/N), 0)` for `i ∈ 0..=N`.
    spatial: Vec<f64>,
    /// `temporal[j] = kt(√(j/M))` for `j ∈ 0..=M`.
    temporal: Vec<f64>,
}

impl<K: SpaceTimeKernel> Tabulated<K> {
    /// Default resolution: 1024 spatial and 1024 temporal bins
    /// (16 KiB of tables — resident in L1 alongside the invariants).
    pub fn new(base: K) -> Self {
        Self::with_bins(base, 1024, 1024)
    }

    /// Tabulate with explicit bin counts.
    ///
    /// # Panics
    /// Panics if a bin count is zero, or if the base kernel is detectably
    /// not radially symmetric / temporally even.
    pub fn with_bins(base: K, spatial_bins: usize, temporal_bins: usize) -> Self {
        assert!(
            spatial_bins > 0 && temporal_bins > 0,
            "bin counts must be non-zero"
        );
        // Symmetry spot-check: ks must agree on same-radius probes and kt
        // must be even. A violated assumption would silently corrupt
        // densities, so fail loudly at construction.
        for i in 1..8 {
            let r = (i as f64 / 8.0) * 0.99;
            let on_axis = base.spatial(r, 0.0);
            let diag = base.spatial(r / 2f64.sqrt(), r / 2f64.sqrt());
            assert!(
                (on_axis - diag).abs() <= 1e-9 * on_axis.abs().max(1.0),
                "spatial factor is not radially symmetric at r={r}"
            );
            let w = i as f64 / 8.0;
            assert!(
                (base.temporal(w) - base.temporal(-w)).abs() <= 1e-12,
                "temporal factor is not even at w={w}"
            );
        }
        // Node i sits at the exact squared radius i/N. The spatial support
        // is *open*, so `spatial(1, 0)` is 0 even for kernels that do not
        // vanish at the edge (Uniform, TruncatedGaussian); the boundary
        // node therefore takes the *inside limit*, linearly extrapolated
        // from two half-step probes (exact for profiles linear in s,
        // O(h²) otherwise, clamped to the kernel's non-negativity).
        let h = 1.0 / spatial_bins as f64;
        let fs = |s: f64| base.spatial(s.sqrt(), 0.0);
        let spatial = (0..=spatial_bins)
            .map(|i| {
                if i == spatial_bins {
                    (2.0 * fs(1.0 - h / 2.0) - fs(1.0 - h)).max(0.0)
                } else {
                    fs(i as f64 * h)
                }
            })
            .collect();
        // The temporal support is closed, so the boundary sample is the
        // true inside value for every kernel.
        let temporal = (0..=temporal_bins)
            .map(|j| base.temporal((j as f64 / temporal_bins as f64).sqrt()))
            .collect();
        Self {
            base,
            spatial,
            temporal,
        }
    }

    /// The wrapped kernel.
    pub fn base(&self) -> &K {
        &self.base
    }

    /// Bytes held by the two tables.
    pub fn table_bytes(&self) -> usize {
        (self.spatial.len() + self.temporal.len()) * 8
    }

    /// Largest absolute spatial error versus the base kernel over a dense
    /// radius sample — the quantity to budget when choosing bin counts.
    pub fn max_spatial_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let r = (i as f64 + 0.5) / samples as f64;
                (self.spatial(r, 0.0) - self.base.spatial(r, 0.0)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Largest absolute temporal error versus the base kernel.
    pub fn max_temporal_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let w = (i as f64 + 0.5) / samples as f64;
                (self.temporal(w) - self.base.temporal(w)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Linear interpolation into a table indexed by a squared offset in
    /// `[0, 1]` (the index clamp makes `sq = 1` hit the last node exactly).
    #[inline(always)]
    fn interp(table: &[f64], sq: f64) -> f64 {
        let bins = table.len() - 1;
        let pos = sq * bins as f64;
        let i = (pos as usize).min(bins - 1);
        let frac = pos - i as f64;
        table[i] + (table[i + 1] - table[i]) * frac
    }
}

impl<K: SpaceTimeKernel> SpaceTimeKernel for Tabulated<K> {
    #[inline]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        let s = u * u + v * v;
        if s >= 1.0 {
            0.0
        } else {
            Self::interp(&self.spatial, s)
        }
    }

    #[inline]
    fn temporal(&self, w: f64) -> f64 {
        let q = w * w;
        if q > 1.0 {
            0.0
        } else {
            // The closed temporal support includes |w| = 1 exactly.
            Self::interp(&self.temporal, q)
        }
    }

    fn name(&self) -> &'static str {
        "tabulated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epanechnikov, Quartic, TruncatedGaussian};

    #[test]
    fn epanechnikov_table_is_essentially_exact() {
        // ks is linear in s = u²+v², so piecewise-linear interpolation in s
        // reproduces it exactly (up to fp rounding).
        let t = Tabulated::new(Epanechnikov);
        assert!(t.max_spatial_error(10_000) < 1e-12);
        assert!(t.max_temporal_error(10_000) < 1e-12);
    }

    #[test]
    fn quartic_error_shrinks_quadratically_with_bins() {
        let coarse = Tabulated::with_bins(Quartic, 64, 64).max_spatial_error(20_000);
        let fine = Tabulated::with_bins(Quartic, 256, 256).max_spatial_error(20_000);
        assert!(coarse > 0.0);
        // 4× bins ⇒ ~16× smaller error for a C² profile; allow slack.
        assert!(
            fine < coarse / 8.0,
            "error should drop ~quadratically: {coarse} -> {fine}"
        );
    }

    #[test]
    fn gaussian_table_is_accurate_at_default_resolution() {
        // exp(−4.5·s) interpolated on 1024 bins: error ≈ f″·h²/8 ≲ 1e-5.
        let t = Tabulated::new(TruncatedGaussian::default());
        assert!(t.max_spatial_error(20_000) < 1e-5);
        assert!(t.max_temporal_error(20_000) < 1e-5);
        assert_eq!(t.table_bytes(), (1025 + 1025) * 8);
    }

    #[test]
    fn support_is_preserved_exactly() {
        let t = Tabulated::new(Epanechnikov);
        assert_eq!(t.spatial(1.0, 0.0), 0.0);
        assert_eq!(t.spatial(0.8, 0.8), 0.0);
        assert!(t.spatial(0.999, 0.0) >= 0.0);
        assert!(t.temporal(1.0) >= 0.0, "|w|=1 is inside (closed support)");
        assert_eq!(t.temporal(1.0001), 0.0);
        assert_eq!(t.temporal(-2.0), 0.0);
    }

    #[test]
    fn eval_matches_product_of_factors() {
        let t = Tabulated::new(Quartic);
        let (u, v, w) = (0.3, -0.2, 0.5);
        assert!((t.eval(u, v, w) - t.spatial(u, v) * t.temporal(w)).abs() < 1e-15);
    }

    #[test]
    fn negative_w_matches_positive() {
        let t = Tabulated::new(TruncatedGaussian::default());
        for i in 0..10 {
            let w = i as f64 / 10.0;
            assert_eq!(t.temporal(w), t.temporal(-w));
        }
    }

    #[test]
    #[should_panic(expected = "not radially symmetric")]
    fn anisotropic_kernel_rejected() {
        struct Skewed;
        impl SpaceTimeKernel for Skewed {
            fn spatial(&self, u: f64, v: f64) -> f64 {
                if u * u + v * v < 1.0 {
                    1.0 + u.abs() // depends on direction, not just radius
                } else {
                    0.0
                }
            }
            fn temporal(&self, _w: f64) -> f64 {
                1.0
            }
            fn name(&self) -> &'static str {
                "skewed"
            }
        }
        let _ = Tabulated::new(Skewed);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bins_rejected() {
        let _ = Tabulated::with_bins(Epanechnikov, 0, 8);
    }
}
