//! Tabulated (lookup-table) kernel evaluation — an ablation on the cost
//! of the kernel flops.
//!
//! The paper estimates ≈40 flops per voxel update for `PB` and motivates
//! `PB-SYM` entirely by *removing redundant kernel evaluations* (§3.2).
//! A lookup table attacks the same cost from the other side: precompute
//! the kernel profile once and replace each evaluation by an indexed
//! linear interpolation. [`Tabulated`] wraps any *radially symmetric*
//! separable kernel — the spatial factor is tabulated over `s = u² + v²`
//! and the temporal factor over `q = w²`, so no square roots are taken.
//!
//! For polynomial kernels (Epanechnikov, quartic, …) the table buys
//! little — the closed form is already a handful of multiplies (and for
//! the Epanechnikov, which is *linear in `s`*, interpolation is exact).
//! For transcendental kernels ([`TruncatedGaussian`](crate::TruncatedGaussian),
//! whose every evaluation calls `exp`) the table removes the
//! transcendental from the inner loop entirely. The `ablations` Criterion
//! bench quantifies both cases; interpolation error is bounded and
//! testable via [`Tabulated::max_spatial_error`].

use crate::traits::SpaceTimeKernel;

/// A kernel whose factors are evaluated by linear interpolation in
/// precomputed tables over the *squared* normalized offsets.
///
/// The base kernel must be radially symmetric in its spatial factor
/// (`ks(u, v)` a function of `u² + v²`) and even in its temporal factor —
/// true of every kernel this crate provides. Construction checks this on
/// a sample grid and panics otherwise.
///
/// ```
/// use stkde_kernels::{SpaceTimeKernel, Tabulated, TruncatedGaussian};
///
/// let exact = TruncatedGaussian::default();
/// let lut = Tabulated::new(TruncatedGaussian::default());
/// // No `exp` in the hot path, bounded interpolation error:
/// assert!((lut.eval(0.3, 0.2, 0.5) - exact.eval(0.3, 0.2, 0.5)).abs() < 1e-4);
/// assert!(lut.max_spatial_error(10_000) < 1e-5);
/// ```
#[derive(Debug, Clone)]
pub struct Tabulated<K> {
    base: K,
    /// `spatial[i] = ks(√(i/N), 0)` for `i ∈ 0..=N`.
    spatial: Vec<f64>,
    /// `temporal[j] = kt(√(j/M))` for `j ∈ 0..=M`.
    temporal: Vec<f64>,
}

impl<K: SpaceTimeKernel> Tabulated<K> {
    /// Default resolution: 1024 spatial and 1024 temporal bins
    /// (16 KiB of tables — resident in L1 alongside the invariants).
    pub fn new(base: K) -> Self {
        Self::with_bins(base, 1024, 1024)
    }

    /// Tabulate with explicit bin counts.
    ///
    /// # Panics
    /// Panics if a bin count is zero, or if the base kernel is detectably
    /// not radially symmetric / temporally even.
    pub fn with_bins(base: K, spatial_bins: usize, temporal_bins: usize) -> Self {
        assert!(
            spatial_bins > 0 && temporal_bins > 0,
            "bin counts must be non-zero"
        );
        // Symmetry spot-check: ks must agree on same-radius probes and kt
        // must be even. A violated assumption would silently corrupt
        // densities, so fail loudly at construction.
        for i in 1..8 {
            let r = (i as f64 / 8.0) * 0.99;
            let on_axis = base.spatial(r, 0.0);
            let diag = base.spatial(r / 2f64.sqrt(), r / 2f64.sqrt());
            assert!(
                (on_axis - diag).abs() <= 1e-9 * on_axis.abs().max(1.0),
                "spatial factor is not radially symmetric at r={r}"
            );
            let w = i as f64 / 8.0;
            assert!(
                (base.temporal(w) - base.temporal(-w)).abs() <= 1e-12,
                "temporal factor is not even at w={w}"
            );
        }
        // Node i sits at the exact squared radius i/N. The spatial support
        // is *open*, so `spatial(1, 0)` is 0 even for kernels that do not
        // vanish at the edge (Uniform, TruncatedGaussian); the boundary
        // node therefore takes the *inside limit*, linearly extrapolated
        // from two half-step probes (exact for profiles linear in s,
        // O(h²) otherwise, clamped to the kernel's non-negativity).
        let h = 1.0 / spatial_bins as f64;
        let fs = |s: f64| base.spatial(s.sqrt(), 0.0);
        let spatial = (0..=spatial_bins)
            .map(|i| {
                if i == spatial_bins {
                    (2.0 * fs(1.0 - h / 2.0) - fs(1.0 - h)).max(0.0)
                } else {
                    fs(i as f64 * h)
                }
            })
            .collect();
        // The temporal support is closed, so the boundary sample is the
        // true inside value for every kernel.
        let temporal = (0..=temporal_bins)
            .map(|j| base.temporal((j as f64 / temporal_bins as f64).sqrt()))
            .collect();
        Self {
            base,
            spatial,
            temporal,
        }
    }

    /// The wrapped kernel.
    pub fn base(&self) -> &K {
        &self.base
    }

    /// Bytes held by the two tables.
    pub fn table_bytes(&self) -> usize {
        (self.spatial.len() + self.temporal.len()) * 8
    }

    /// Largest absolute spatial error versus the base kernel over a dense
    /// sample — the quantity to budget when choosing bin counts.
    ///
    /// Probes half-offset radii, node-aligned squared offsets, *and* a
    /// dense sweep of the last (boundary-extrapolated) bin. Half-offset
    /// radii alone — the original sampler — concentrate quadratically
    /// near `s = 0` and, whenever `samples` is not much larger than the
    /// bin count, skip whole bins near `s → 1`, including the
    /// extrapolation region where non-vanishing profiles err the most:
    /// the old number silently under-reported the true table error.
    pub fn max_spatial_error(&self, samples: usize) -> f64 {
        let h = 1.0 / (self.spatial.len() - 1) as f64;
        let err_at_s = |s: f64| {
            let r = s.sqrt();
            (self.spatial(r, 0.0) - self.base.spatial(r, 0.0)).abs()
        };
        let half_offsets = (0..samples).map(|i| {
            let r = (i as f64 + 0.5) / samples as f64;
            (self.spatial(r, 0.0) - self.base.spatial(r, 0.0)).abs()
        });
        // Node-aligned and mid-bin squared offsets cover every bin once
        // regardless of `samples`.
        let nodes = (0..self.spatial.len() - 1)
            .flat_map(|i| [i as f64 * h, (i as f64 + 0.5) * h])
            .map(err_at_s);
        // The boundary bin `[1−h, 1)` interpolates toward an extrapolated
        // node; sweep it densely (strictly inside the open support).
        let boundary = (1..64).map(|j| err_at_s(1.0 - h * j as f64 / 64.0));
        half_offsets
            .chain(nodes)
            .chain(boundary)
            .fold(0.0, f64::max)
    }

    /// Certified upper bound on the spatial interpolation error, from
    /// curvature rather than error sampling: linear interpolation of a
    /// profile `f` over bins of width `h` errs by at most `M₂·h²/8`
    /// (`M₂ = max |f″|`), and the boundary bin — whose right node is
    /// linearly extrapolated from two half-step probes, itself off by at
    /// most `M₂·h²/4` — by at most `3·M₂·h²/8`. `M₂` is taken from a
    /// second-difference sweep 8× finer than the table with 2× headroom
    /// for curvature peaks between probes, so the bound is certified for
    /// any profile whose curvature that sweep resolves (every kernel in
    /// this crate; a profile oscillating *between* probes of an
    /// 8192-point sweep could evade it).
    pub fn spatial_error_bound(&self) -> f64 {
        let h = 1.0 / (self.spatial.len() - 1) as f64;
        let m2 = max_curvature(|s| self.base.spatial(s.sqrt(), 0.0), h);
        2.0 * m2 * h * h * 3.0 / 8.0 + 4.0 * f64::EPSILON * self.peak(&self.spatial)
    }

    /// Certified upper bound on the temporal interpolation error (the
    /// temporal support is closed, so there is no extrapolated node:
    /// plain `M₂·h²/8` with the same sweep and headroom).
    pub fn temporal_error_bound(&self) -> f64 {
        let h = 1.0 / (self.temporal.len() - 1) as f64;
        let m2 = max_curvature(|q| self.base.temporal(q.sqrt()), h);
        2.0 * m2 * h * h / 8.0 + 4.0 * f64::EPSILON * self.peak(&self.temporal)
    }

    /// Certified upper bound on the *product* evaluation error of
    /// [`SpaceTimeKernel::eval`] versus the base kernel:
    /// `|lut − base| ≤ εs·Mt + εt·Ms + εs·εt`, where `Ms`/`Mt` are the
    /// factor peaks. This is the term an error-bounded serving tier folds
    /// into its reported per-voxel bound when the LUT kernel is the serve
    /// kernel (scaled by the estimator normalization, independently of
    /// the event count).
    pub fn error_bound(&self) -> f64 {
        let es = self.spatial_error_bound();
        let et = self.temporal_error_bound();
        let ms = self.peak(&self.spatial);
        let mt = self.peak(&self.temporal);
        es * mt + et * ms + es * et
    }

    /// Peak magnitude of a factor (max of table nodes — the table brackets
    /// the interpolant, and the nodes sample the base profile).
    fn peak(&self, table: &[f64]) -> f64 {
        table.iter().fold(0.0, |a, &v| a.max(v.abs()))
    }

    /// Largest absolute temporal error versus the base kernel.
    pub fn max_temporal_error(&self, samples: usize) -> f64 {
        (0..samples)
            .map(|i| {
                let w = (i as f64 + 0.5) / samples as f64;
                (self.temporal(w) - self.base.temporal(w)).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Linear interpolation into a table indexed by a squared offset in
    /// `[0, 1]` (the index clamp makes `sq = 1` hit the last node exactly).
    #[inline(always)]
    fn interp(table: &[f64], sq: f64) -> f64 {
        let bins = table.len() - 1;
        let pos = sq * bins as f64;
        let i = (pos as usize).min(bins - 1);
        let frac = pos - i as f64;
        table[i] + (table[i + 1] - table[i]) * frac
    }
}

/// Max `|f″|` over `(0, 1)` via second differences on a sweep `8×` finer
/// than bin width `h`, staying strictly inside the open support.
fn max_curvature(f: impl Fn(f64) -> f64, h: f64) -> f64 {
    let d = h / 8.0;
    let steps = (1.0 / d) as usize;
    (1..steps.saturating_sub(1))
        .map(|j| {
            let x = j as f64 * d;
            ((f(x - d) - 2.0 * f(x) + f(x + d)) / (d * d)).abs()
        })
        .fold(0.0, f64::max)
}

impl<K: SpaceTimeKernel> SpaceTimeKernel for Tabulated<K> {
    #[inline]
    fn spatial(&self, u: f64, v: f64) -> f64 {
        let s = u * u + v * v;
        if s >= 1.0 {
            0.0
        } else {
            Self::interp(&self.spatial, s)
        }
    }

    #[inline]
    fn temporal(&self, w: f64) -> f64 {
        let q = w * w;
        if q > 1.0 {
            0.0
        } else {
            // The closed temporal support includes |w| = 1 exactly.
            Self::interp(&self.temporal, q)
        }
    }

    fn name(&self) -> &'static str {
        "tabulated"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Epanechnikov, Quartic, TruncatedGaussian};

    #[test]
    fn epanechnikov_table_is_essentially_exact() {
        // ks is linear in s = u²+v², so piecewise-linear interpolation in s
        // reproduces it exactly (up to fp rounding).
        let t = Tabulated::new(Epanechnikov);
        assert!(t.max_spatial_error(10_000) < 1e-12);
        assert!(t.max_temporal_error(10_000) < 1e-12);
    }

    #[test]
    fn quartic_error_shrinks_quadratically_with_bins() {
        let coarse = Tabulated::with_bins(Quartic, 64, 64).max_spatial_error(20_000);
        let fine = Tabulated::with_bins(Quartic, 256, 256).max_spatial_error(20_000);
        assert!(coarse > 0.0);
        // 4× bins ⇒ ~16× smaller error for a C² profile; allow slack.
        assert!(
            fine < coarse / 8.0,
            "error should drop ~quadratically: {coarse} -> {fine}"
        );
    }

    #[test]
    fn gaussian_table_is_accurate_at_default_resolution() {
        // exp(−4.5·s) interpolated on 1024 bins: error ≈ f″·h²/8 ≲ 1e-5.
        let t = Tabulated::new(TruncatedGaussian::default());
        assert!(t.max_spatial_error(20_000) < 1e-5);
        assert!(t.max_temporal_error(20_000) < 1e-5);
        assert_eq!(t.table_bytes(), (1025 + 1025) * 8);
    }

    #[test]
    fn support_is_preserved_exactly() {
        let t = Tabulated::new(Epanechnikov);
        assert_eq!(t.spatial(1.0, 0.0), 0.0);
        assert_eq!(t.spatial(0.8, 0.8), 0.0);
        assert!(t.spatial(0.999, 0.0) >= 0.0);
        assert!(t.temporal(1.0) >= 0.0, "|w|=1 is inside (closed support)");
        assert_eq!(t.temporal(1.0001), 0.0);
        assert_eq!(t.temporal(-2.0), 0.0);
    }

    #[test]
    fn eval_matches_product_of_factors() {
        let t = Tabulated::new(Quartic);
        let (u, v, w) = (0.3, -0.2, 0.5);
        assert!((t.eval(u, v, w) - t.spatial(u, v) * t.temporal(w)).abs() < 1e-15);
    }

    #[test]
    fn negative_w_matches_positive() {
        let t = Tabulated::new(TruncatedGaussian::default());
        for i in 0..10 {
            let w = i as f64 / 10.0;
            assert_eq!(t.temporal(w), t.temporal(-w));
        }
    }

    /// A profile whose curvature peaks at the open boundary `s → 1` —
    /// the regime the half-offset-only sampler missed.
    #[derive(Clone)]
    struct BoundaryHeavy;
    impl SpaceTimeKernel for BoundaryHeavy {
        fn spatial(&self, u: f64, v: f64) -> f64 {
            let s = u * u + v * v;
            if s < 1.0 {
                (4.5 * (s - 1.0)).exp()
            } else {
                0.0
            }
        }
        fn temporal(&self, w: f64) -> f64 {
            let q = w * w;
            if q <= 1.0 {
                1.0 - q
            } else {
                0.0
            }
        }
        fn name(&self) -> &'static str {
            "boundary-heavy"
        }
    }

    #[test]
    fn old_half_offset_sampler_under_reported() {
        // With `samples` at or below the bin count, half-offset radius
        // probes (the pre-fix sampler) never land in the extrapolated
        // boundary bin, where this profile errs ~3× worse than interior.
        let t = Tabulated::with_bins(BoundaryHeavy, 256, 256);
        let samples = 128;
        let old = (0..samples)
            .map(|i| {
                let r = (i as f64 + 0.5) / samples as f64;
                (t.spatial(r, 0.0) - t.base().spatial(r, 0.0)).abs()
            })
            .fold(0.0, f64::max);
        let new = t.max_spatial_error(samples);
        assert!(
            new > old * 1.3,
            "fixed sampler must expose the boundary error: old {old}, new {new}"
        );
    }

    #[test]
    fn error_bounds_dominate_measured_error() {
        fn check<K: SpaceTimeKernel + Clone>(base: K) {
            let t = Tabulated::with_bins(base, 128, 128);
            let (es, et) = (t.spatial_error_bound(), t.temporal_error_bound());
            let (ms, mt) = (t.max_spatial_error(20_000), t.max_temporal_error(20_000));
            assert!(ms <= es, "{}: spatial {ms} > bound {es}", t.base().name());
            assert!(mt <= et, "{}: temporal {mt} > bound {et}", t.base().name());
            // Product evals obey the combined bound.
            let eb = t.error_bound();
            for i in 0..60 {
                for j in 0..60 {
                    let (r, w) = (i as f64 / 60.0, j as f64 / 60.0);
                    let (u, v) = (r / 2f64.sqrt(), r / 2f64.sqrt());
                    let d = (t.eval(u, v, w) - t.base().eval(u, v, w)).abs();
                    assert!(d <= eb, "{}: eval err {d} > bound {eb}", t.base().name());
                }
            }
        }
        check(Epanechnikov);
        check(Quartic);
        check(crate::Triweight);
        check(crate::Uniform);
        check(TruncatedGaussian::default());
        check(BoundaryHeavy);
    }

    #[test]
    fn linear_profiles_have_negligible_bound() {
        // Epanechnikov is linear in s: the certified bound collapses to
        // the fp floor, so the approximate serve path reports (near-)zero
        // kernel error for the default serve kernel family.
        let t = Tabulated::new(Epanechnikov);
        assert!(t.spatial_error_bound() < 1e-12);
        assert!(t.error_bound() < 1e-12);
        let g = Tabulated::new(TruncatedGaussian::default());
        assert!(g.error_bound() > 0.0);
        assert!(g.error_bound() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "not radially symmetric")]
    fn anisotropic_kernel_rejected() {
        struct Skewed;
        impl SpaceTimeKernel for Skewed {
            fn spatial(&self, u: f64, v: f64) -> f64 {
                if u * u + v * v < 1.0 {
                    1.0 + u.abs() // depends on direction, not just radius
                } else {
                    0.0
                }
            }
            fn temporal(&self, _w: f64) -> f64 {
                1.0
            }
            fn name(&self) -> &'static str {
                "skewed"
            }
        }
        let _ = Tabulated::new(Skewed);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bins_rejected() {
        let _ = Tabulated::with_bins(Epanechnikov, 0, 8);
    }
}
