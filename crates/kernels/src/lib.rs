//! Separable space-time kernel functions for STKDE.
//!
//! The space-time kernel density estimate (paper §2.1) weights each event by
//! a product of a *spatial* kernel `ks(u, v)` and a *temporal* kernel
//! `kt(w)`, where `u = (x-xi)/hs`, `v = (y-yi)/hs`, `w = (t-ti)/ht` are
//! bandwidth-normalized offsets:
//!
//! ```text
//! f̂(x,y,t) = 1/(n·hs²·ht) · Σᵢ ks(u, v) · kt(w)
//! ```
//!
//! This separability — `ks` independent of `T`, `kt` independent of
//! `(X, Y)` — is exactly the structure `PB-SYM` exploits (paper §3.2,
//! Figure 3), so the kernel abstraction exposes the two factors separately.
//!
//! The default kernel is [`Epanechnikov`], following Nakaya & Yano (2010),
//! the STKDE formulation the paper builds on. The formula as *printed* in
//! the paper (`π/2·(1−u)²(1−v)²`, `¾·(1−w)²`) is also provided as
//! [`PaperLiteral`]; see that type's docs for how the (OCR-ambiguous)
//! printed form is interpreted. All provided kernels share the same support
//! (`u²+v² < 1` spatially, `|w| ≤ 1` temporally), so the algorithmic
//! structure and costs are identical regardless of the choice.

#![warn(missing_docs)]

pub mod epanechnikov;
pub mod gaussian;
pub mod integrate;
pub mod lut;
pub mod paper;
pub mod polynomial;
pub mod traits;

pub use epanechnikov::Epanechnikov;
pub use gaussian::TruncatedGaussian;
pub use lut::Tabulated;
pub use paper::PaperLiteral;
pub use polynomial::{Quartic, Triweight, Uniform};
pub use traits::SpaceTimeKernel;
