//! End-to-end pipeline over (scaled) Table 2 catalog instances: generate →
//! optionally round-trip through CSV → compute with several algorithms →
//! cross-validate → sanity-check the densities.

use stkde::prelude::*;
use stkde::ResultExt;
use stkde_core::validate::grids_agree;
use stkde_data::catalog;

fn tiny(name: &str) -> stkde_data::Instance {
    catalog::by_name(name)
        .unwrap_or_else(|| panic!("unknown instance {name}"))
        .scaled_to_budget(60_000, 1_500)
}

#[test]
fn scaled_catalog_instances_run_and_agree() {
    // One representative per dataset (keeps the test fast while touching
    // all four synthetic profiles).
    for name in ["Dengue_Lr-Lb", "PollenUS_Lr-Lb", "Flu_Lr-Hb", "eBird_Lr-Lb"] {
        let inst = tiny(name);
        let points = inst.generate_points(3);
        let engine = Stkde::new(inst.domain(), inst.bandwidth());
        let reference = engine
            .clone()
            .algorithm(Algorithm::PbSym)
            .compute::<f64>(&points)
            .unwrap();
        for alg in [
            Algorithm::Pb,
            Algorithm::PbSymDr,
            Algorithm::PbSymDd {
                decomp: Decomp::cubic(4),
            },
            Algorithm::PbSymPdSchedRep {
                decomp: Decomp::cubic(4),
            },
        ] {
            let r = engine
                .clone()
                .algorithm(alg)
                .threads(2)
                .compute::<f64>(&points)
                .unwrap();
            assert!(
                grids_agree(reference.grid(), r.grid(), 1e-9, 1e-14),
                "{name}: {alg} diverges"
            );
        }
        // Sanity: density mass ≈ (voxel volume) · Σ f̂ ≤ 1, positive.
        let stats = stkde::grid_stats(reference.grid());
        assert!(stats.max > 0.0, "{name}: empty density");
        assert!(stats.min >= 0.0, "{name}: negative density");
        let res = inst.domain().resolution();
        let voxel_vol = res.sres * res.sres * res.tres;
        let mass = stats.sum * voxel_vol;
        assert!(
            mass > 0.01 && mass < 1.5,
            "{name}: discrete mass {mass} out of range"
        );
    }
}

#[test]
fn csv_round_trip_preserves_density() {
    let inst = tiny("Dengue_Hr-Lb");
    let points = inst.generate_points(11);
    let dir = std::env::temp_dir().join("stkde_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("events.csv");
    stkde::data::csv::save(&points, &path).unwrap();
    let loaded = stkde::data::csv::load(&path).unwrap();
    assert_eq!(loaded.len(), points.len());

    let engine = Stkde::new(inst.domain(), inst.bandwidth());
    let direct = engine
        .clone()
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let roundtrip = engine
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&loaded)
        .unwrap();
    // CSV serializes f64 exactly (shortest round-trip representation), so
    // the densities must match bit-for-bit.
    assert_eq!(direct.grid().as_slice(), roundtrip.grid().as_slice());
    std::fs::remove_file(path).ok();
}

#[test]
fn full_catalog_is_well_formed_after_scaling() {
    for inst in stkde_data::full_catalog() {
        let scaled = inst.scaled_to_budget(40_000, 800);
        let d = scaled.domain().dims();
        assert!(d.volume() > 0);
        // Bandwidths stay at Table 2 values; grid still fits a cylinder.
        assert_eq!(scaled.params.hs, inst.params.hs, "{}", inst.name());
        assert_eq!(scaled.params.ht, inst.params.ht, "{}", inst.name());
        assert!(d.gx > 2 * scaled.params.hs, "{}", inst.name());
        assert!(d.gt > 2 * scaled.params.ht, "{}", inst.name());
        // When the cylinder-box floor does not bind on any axis, the
        // init/compute cost ratio is preserved (the point of volumetric
        // scaling); floored instances are allowed to distort.
        let floored = d.gx == 2 * scaled.params.hs + 1
            || d.gy == 2 * scaled.params.hs + 1
            || d.gt == 2 * scaled.params.ht + 1;
        if !floored {
            let r_full = inst.compute_cost() / inst.init_cost();
            let r_scaled = scaled.compute_cost() / scaled.init_cost();
            assert!(
                r_scaled / r_full < 2.0 && r_full / r_scaled < 2.0,
                "{}: cost balance drifted {r_full:.3} -> {r_scaled:.3}",
                inst.name()
            );
        }
    }
}

#[test]
fn auto_algorithm_runs_every_dataset_profile() {
    for kind in DatasetKind::ALL {
        let domain = Domain::from_dims(GridDims::new(40, 40, 20));
        let points = kind.generate(500, domain.extent(), 13);
        let r = Stkde::new(domain, Bandwidth::new(4.0, 3.0))
            .algorithm(Algorithm::Auto)
            .threads(2)
            .compute::<f32>(&points)
            .unwrap();
        assert!(stkde::grid_stats(r.grid()).max > 0.0, "{kind}");
    }
}
