//! Failure injection and resource-limit behaviour: the paper's
//! out-of-memory cells (Figures 8 and 14) must surface as typed errors,
//! bad configurations must be rejected without panics, and — for the
//! multi-process backend — a rank that dies or stalls must fail the
//! world with a typed error within a bounded deadline, never hang CI.

use stkde::prelude::*;
use stkde_data::synth;

fn small_instance() -> (Domain, Bandwidth, PointSet) {
    let domain = Domain::from_dims(GridDims::new(32, 32, 16));
    let points = synth::uniform(100, domain.extent(), 5);
    (domain, Bandwidth::new(3.0, 2.0), points)
}

#[test]
fn dr_oom_is_an_error_not_a_crash() {
    let (domain, bw, points) = small_instance();
    let grid_bytes = domain.dims().bytes::<f64>();
    let err = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSymDr)
        .threads(16)
        .memory_limit(3 * grid_bytes)
        .compute::<f64>(&points)
        .unwrap_err();
    match err {
        StkdeError::MemoryLimit {
            required,
            limit,
            what,
        } => {
            assert_eq!(required, 16 * grid_bytes);
            assert_eq!(limit, 3 * grid_bytes);
            assert!(what.contains("DR"));
        }
        other => panic!("expected MemoryLimit, got {other}"),
    }
}

#[test]
fn rep_oom_under_tight_budget_or_trivial_plan() {
    // Clustered points force replication; a coarse decomposition makes the
    // replica buffers grid-sized (the paper's Figure 14 OOM regime).
    let domain = Domain::from_dims(GridDims::new(40, 40, 20));
    let spec = synth::ClusterSpec {
        clusters: 1,
        spatial_sigma: 0.02,
        background: 0.0,
        weight_tail: 0.0,
        ..Default::default()
    };
    let points = spec.generate(500, domain.extent(), 6);
    let grid_bytes = domain.dims().bytes::<f64>();
    let result = Stkde::new(domain, Bandwidth::new(2.0, 2.0))
        .algorithm(Algorithm::PbSymPdRep {
            decomp: Decomp::cubic(2),
        })
        .threads(4)
        .memory_limit(grid_bytes + (grid_bytes / 4))
        .compute::<f64>(&points);
    match result {
        Err(StkdeError::MemoryLimit { what, .. }) => assert!(what.contains("replica")),
        Ok(_) => { /* planner may decline to replicate; that's valid */ }
        Err(other) => panic!("unexpected error: {other}"),
    }
}

#[test]
fn zero_threads_rejected_everywhere() {
    let (domain, bw, points) = small_instance();
    for alg in [
        Algorithm::PbSym,
        Algorithm::PbSymDr,
        Algorithm::PbSymDd {
            decomp: Decomp::cubic(2),
        },
        Algorithm::PbSymPdSched {
            decomp: Decomp::cubic(2),
        },
    ] {
        let err = Stkde::new(domain, bw)
            .algorithm(alg)
            .threads(0)
            .compute::<f32>(&points)
            .unwrap_err();
        assert!(
            matches!(err, StkdeError::InvalidConfig(_)),
            "{alg} accepted zero threads"
        );
    }
}

#[test]
fn oversubscription_is_allowed_and_correct() {
    // More threads than cores (and than points): legal, just not faster.
    let (domain, bw, points) = small_instance();
    let reference = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let r = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSymPd {
            decomp: Decomp::cubic(4),
        })
        .threads(32)
        .compute::<f64>(&points)
        .unwrap();
    assert!(stkde_core::validate::grids_agree(
        &reference.grid,
        &r.grid,
        1e-9,
        1e-14
    ));
}

#[test]
fn nan_points_can_be_sanitized_before_compute() {
    let (domain, bw, _) = small_instance();
    let mut points = PointSet::from_vec(vec![
        Point::new(16.0, 16.0, 8.0),
        Point::new(f64::NAN, 1.0, 1.0),
        Point::new(1.0, f64::INFINITY, 1.0),
    ]);
    let dropped = points.retain_finite();
    assert_eq!(dropped, 2);
    let r = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    assert!(r.grid.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn degenerate_one_voxel_domain() {
    let domain = Domain::from_dims(GridDims::new(1, 1, 1));
    let points = PointSet::from_vec(vec![Point::new(0.5, 0.5, 0.5)]);
    for alg in [Algorithm::Vb, Algorithm::PbSym, Algorithm::PbSymDr] {
        let r = Stkde::new(domain, Bandwidth::new(1.0, 1.0))
            .algorithm(alg)
            .threads(2)
            .compute::<f64>(&points)
            .unwrap();
        assert!(r.grid.get(0, 0, 0) > 0.0, "{alg}");
    }
}

#[test]
fn memory_limit_large_enough_succeeds() {
    let (domain, bw, points) = small_instance();
    let grid_bytes = domain.dims().bytes::<f32>();
    let r = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSymDr)
        .threads(2)
        .memory_limit(4 * grid_bytes)
        .compute::<f32>(&points);
    assert!(r.is_ok());
}

/// Distributed failure modes: a rank process that exits early or stalls
/// must surface a typed error on the surviving ranks and at the
/// launcher within a bounded deadline — no hangs in CI.
#[cfg(unix)]
mod process_ranks {
    use std::time::{Duration, Instant};
    use stkde::comm::CommError;
    use stkde::comm::ProcessWorld;
    use stkde::rank::{FAIL_RANK_ENV, PROGRAM_ENV};

    const RANK_EXE: &str = env!("CARGO_BIN_EXE_stkde-rank");
    /// Upper bound on how long any injected failure may take to surface:
    /// well under CI's 10-minute job timeout, well over scheduler noise.
    const SURFACING_BOUND: Duration = Duration::from_secs(20);

    fn failing_world(program: &str, size: usize, fail_rank: usize) -> ProcessWorld {
        ProcessWorld::new(size, RANK_EXE)
            .env(PROGRAM_ENV, program)
            .env(FAIL_RANK_ENV, fail_rank.to_string())
            .timeout(Duration::from_secs(2))
            .run_timeout(Duration::from_secs(60))
    }

    #[test]
    fn rank_exiting_early_fails_the_world() {
        for (size, fail_rank) in [(2, 1), (4, 2)] {
            let started = Instant::now();
            let err = failing_world("exit_early", size, fail_rank)
                .launch()
                .unwrap_err();
            let elapsed = started.elapsed();
            assert!(
                matches!(err, CommError::RankFailed { .. }),
                "size {size}: expected RankFailed, got {err}"
            );
            assert!(
                elapsed < SURFACING_BOUND,
                "size {size}: failure took {elapsed:?} to surface"
            );
        }
    }

    #[test]
    fn stalled_rank_times_out_with_diagnosis() {
        for (size, fail_rank) in [(2, 1), (4, 0)] {
            let started = Instant::now();
            let err = failing_world("stall", size, fail_rank)
                .launch()
                .unwrap_err();
            let elapsed = started.elapsed();
            match &err {
                CommError::RankFailed { detail, .. } => {
                    assert!(
                        detail.contains("timed out"),
                        "size {size}: diagnosis should name the timeout: {detail}"
                    );
                }
                other => panic!("size {size}: expected RankFailed, got {other}"),
            }
            assert!(
                elapsed < SURFACING_BOUND,
                "size {size}: stall took {elapsed:?} to surface"
            );
        }
    }

    #[test]
    fn unknown_rank_program_is_rejected() {
        let err = failing_world("no_such_program", 2, 0).launch().unwrap_err();
        assert!(
            matches!(
                err,
                CommError::RankFailed { .. } | CommError::Timeout { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn malformed_spec_fails_distmem_ranks_cleanly() {
        let started = Instant::now();
        let err = ProcessWorld::new(2, RANK_EXE)
            .env(PROGRAM_ENV, "distmem")
            .env(stkde::core::distmem::spec::SPEC_ENV, "g=oops")
            .timeout(Duration::from_secs(2))
            .run_timeout(Duration::from_secs(60))
            .launch()
            .unwrap_err();
        match &err {
            CommError::RankFailed { detail, .. } => {
                assert!(detail.contains("grid"), "diagnosis: {detail}");
            }
            other => panic!("expected RankFailed, got {other}"),
        }
        assert!(started.elapsed() < SURFACING_BOUND);
    }
}
