//! Determinism and repeatability: synthetic data is seed-stable, the
//! sequential algorithms are bit-reproducible, and the parallel algorithms
//! remain within floating-point reassociation tolerance of the sequential
//! result across repeated racy executions.

use stkde::prelude::*;
use stkde::ResultExt;
use stkde_core::validate::grids_agree;

fn instance() -> (Domain, Bandwidth, PointSet) {
    let domain = Domain::from_dims(GridDims::new(36, 30, 18));
    let points = DatasetKind::EBird.generate(400, domain.extent(), 77);
    (domain, Bandwidth::new(3.0, 2.0), points)
}

#[test]
fn generation_is_seed_stable() {
    let domain = Domain::from_dims(GridDims::new(16, 16, 8));
    for kind in DatasetKind::ALL {
        let a = kind.generate(200, domain.extent(), 5);
        let b = kind.generate(200, domain.extent(), 5);
        assert_eq!(a, b, "{kind} generation not deterministic");
    }
}

#[test]
fn sequential_runs_are_bit_identical() {
    let (domain, bw, points) = instance();
    let r1 = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let r2 = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    assert_eq!(r1.grid().as_slice(), r2.grid().as_slice());
}

#[test]
fn parallel_stress_stays_within_tolerance() {
    // Run the raciest algorithms repeatedly; all executions must agree
    // with the sequential result (any scheduling-dependent *error* would
    // show up as a large deviation, not reassociation noise).
    let (domain, bw, points) = instance();
    let reference = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    for round in 0..6 {
        for alg in [
            Algorithm::PbSymPdSched {
                decomp: Decomp::cubic(6),
            },
            Algorithm::PbSymPdSchedRep {
                decomp: Decomp::cubic(6),
            },
            Algorithm::PbSymDd {
                decomp: Decomp::cubic(6),
            },
        ] {
            let r = Stkde::new(domain, bw)
                .algorithm(alg)
                .threads(4)
                .compute::<f64>(&points)
                .unwrap();
            assert!(
                grids_agree(reference.grid(), r.grid(), 1e-9, 1e-14),
                "round {round}: {alg} deviates"
            );
        }
    }
}

/// Distributed determinism: for a fixed seed and rank count, the density
/// must be bit-identical across worker thread counts, across repeated
/// racy executions, and across the thread-backed and process-backed
/// worlds. Halo application is ordered by sender rank precisely so this
/// holds — arrival races must never reach the float summation order.
#[cfg(unix)]
mod distmem_process {
    use std::path::Path;
    use std::time::Duration;
    use stkde::core::distmem::spec::{DistSpec, KernelChoice};
    use stkde::core::distmem::{self, DistStrategy, HaloMode};
    use stkde::rank::run_distmem_process;
    use stkde_kernels::Epanechnikov;

    const RANK_EXE: &str = env!("CARGO_BIN_EXE_stkde-rank");

    fn spec() -> DistSpec {
        DistSpec {
            gx: 18,
            gy: 16,
            gt: 16,
            hs: 2.5,
            ht: 2.0,
            n: 50,
            seed: 77,
            kernel: KernelChoice::Epanechnikov,
            strategy: DistStrategy::HaloExchange,
            mode: HaloMode::Overlapped,
        }
    }

    #[test]
    fn identical_across_thread_counts_and_backends() {
        let spec = spec();
        for ranks in [1usize, 2, 4] {
            let simulated = distmem::run::<f64, _>(
                &spec.problem(),
                &Epanechnikov,
                &spec.points(),
                ranks,
                spec.strategy,
            )
            .unwrap();
            for threads in ["1", "2", "8"] {
                let r = run_distmem_process(Path::new(RANK_EXE), &spec, ranks, |w| {
                    w.env("RAYON_NUM_THREADS", threads)
                        .timeout(Duration::from_secs(20))
                        .run_timeout(Duration::from_secs(90))
                })
                .unwrap();
                assert_eq!(
                    r.grid.as_slice(),
                    simulated.grid.as_slice(),
                    "ranks={ranks} threads={threads}: not bit-identical to the thread world"
                );
            }
        }
    }

    #[test]
    fn repeated_racy_executions_are_bit_identical() {
        // recv_any arrival order differs run to run; the result must not.
        let spec = DistSpec {
            strategy: DistStrategy::PointExchange,
            ..spec()
        };
        let runs: Vec<Vec<f64>> = (0..3)
            .map(|_| {
                run_distmem_process(Path::new(RANK_EXE), &spec, 4, |w| {
                    w.timeout(Duration::from_secs(20))
                        .run_timeout(Duration::from_secs(90))
                })
                .unwrap()
                .grid
                .into_vec()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }
}

#[test]
fn dr_reduction_order_is_deterministic() {
    // DR reduces replicas in index order: repeated runs with the same
    // thread count must agree bit-for-bit (the point->replica assignment
    // is a fixed chunking, and f64 addition per voxel is a fixed order).
    let (domain, bw, points) = instance();
    let run = || {
        Stkde::new(domain, bw)
            .algorithm(Algorithm::PbSymDr)
            .threads(3)
            .compute::<f64>(&points)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.grid().as_slice(), b.grid().as_slice());
}
