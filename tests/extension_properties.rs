//! Property-based integration: the extension execution paths agree with
//! batch `PB-SYM` on *randomized* instances — dims, bandwidths, point
//! clouds, rank counts, and update interleavings all drawn by proptest.

use proptest::prelude::*;
use stkde::core::distmem::{self, DistStrategy};
use stkde::core::sparse;
use stkde::kernels::Epanechnikov;
use stkde::prelude::*;
use stkde::{IncrementalStkde, Problem};
use stkde_core::algorithms::pb_sym;

/// A random instance: grid dims, bandwidths, and points inside the extent.
fn arb_instance() -> impl Strategy<Value = (Domain, Bandwidth, Vec<Point>)> {
    (2usize..24, 2usize..20, 2usize..16, 1.0f64..6.0, 1.0f64..4.0).prop_flat_map(
        |(gx, gy, gt, hs, ht)| {
            let domain = Domain::from_dims(GridDims::new(gx, gy, gt));
            let points = proptest::collection::vec(
                (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0).prop_map(move |(fx, fy, ft)| {
                    Point::new(
                        fx * (gx as f64 - 1e-9),
                        fy * (gy as f64 - 1e-9),
                        ft * (gt as f64 - 1e-9),
                    )
                }),
                0..40,
            );
            (Just(domain), Just(Bandwidth::new(hs, ht)), points)
        },
    )
}

fn batch(domain: Domain, bw: Bandwidth, points: &[Point]) -> Grid3<f64> {
    let problem = Problem::new(domain, bw, points.len());
    pb_sym::run::<f64, _>(&problem, &Epanechnikov, points).0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sparse_equals_dense_on_random_instances(
        (domain, bw, points) in arb_instance(),
        nslabs in 1usize..8, threads in 1usize..5,
    ) {
        let dense = batch(domain, bw, &points);
        let problem = Problem::new(domain, bw, points.len());
        let (grid, _) = sparse::run::<f64, _>(&problem, &Epanechnikov, &points);
        // Bit-identical, not merely close: same engine, same write order.
        prop_assert_eq!(&grid.to_dense(), &dense);
        let (par, _) = sparse::run_par_slabs::<f64, _>(
            &problem, &Epanechnikov, &points, threads, nslabs)
            .expect("threads >= 1 by strategy");
        prop_assert_eq!(&par.to_dense(), &dense);
    }

    #[test]
    fn distmem_equals_batch_on_random_instances(
        (domain, bw, points) in arb_instance(),
        ranks in 1usize..6,
        halo in proptest::bool::ANY,
    ) {
        prop_assume!(ranks <= domain.dims().gt);
        let strategy = if halo { DistStrategy::HaloExchange } else { DistStrategy::PointExchange };
        let dense = batch(domain, bw, &points);
        let problem = Problem::new(domain, bw, points.len());
        let r = distmem::run::<f64, _>(&problem, &Epanechnikov, &points, ranks, strategy)
            .expect("rank count validated by assume");
        prop_assert!(dense.max_rel_diff(&r.grid, 1e-12) < 1e-8,
            "{strategy} ranks={ranks}");
        // Work accounting invariants.
        let total: usize = r.processed.iter().sum();
        match strategy {
            DistStrategy::HaloExchange => prop_assert_eq!(total, points.len()),
            DistStrategy::PointExchange => prop_assert!(total >= points.len()),
        }
    }

    #[test]
    fn incremental_agrees_after_random_interleaving(
        (domain, bw, points) in arb_instance(),
        removals in proptest::collection::vec(proptest::bool::ANY, 40),
    ) {
        // Insert everything; remove a random subset; compare to a batch
        // over the survivors.
        let mut inc = IncrementalStkde::<f64>::new(domain, bw);
        for &p in &points {
            inc.insert(p);
        }
        let mut survivors = Vec::new();
        for (i, &p) in points.iter().enumerate() {
            if removals.get(i).copied().unwrap_or(false) {
                inc.remove(&p);
            } else {
                survivors.push(p);
            }
        }
        prop_assert_eq!(inc.len(), survivors.len());
        let dense = batch(domain, bw, &survivors);
        let snap = inc.snapshot();
        // Removal cancellation is exact only in exact arithmetic; allow a
        // tight absolute band scaled by the unnormalized peak.
        let scale = dense.as_slice().iter().fold(0.0f64, |a, &b| a.max(b.abs())).max(1e-30);
        prop_assert!(dense.max_abs_diff(&snap) < 1e-9 * scale.max(1.0));
    }

    #[test]
    fn sparse_occupancy_and_bytes_are_consistent(
        (domain, bw, points) in arb_instance(),
    ) {
        let problem = Problem::new(domain, bw, points.len());
        let (grid, _) = sparse::run::<f32, _>(&problem, &Epanechnikov, &points);
        prop_assert!(grid.allocated_bricks() <= grid.table_len());
        let occ = grid.occupancy();
        prop_assert!((0.0..=1.0).contains(&occ));
        if points.is_empty() {
            prop_assert_eq!(grid.allocated_bricks(), 0);
        }
        // Mass agreement with the dense path.
        let dense = batch(domain, bw, &points);
        let dense_sum: f64 = dense.as_slice().iter().sum();
        prop_assert!((grid.sum() - dense_sum).abs() < 1e-4 * dense_sum.abs().max(1.0));
    }
}
