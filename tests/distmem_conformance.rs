//! Cross-backend conformance for the distributed STKDE extension.
//!
//! The same seeded problems run four ways — sequential PB-SYM, the
//! simulated in-process `World`, and the multi-process `ProcessWorld` at
//! 2 and 4 ranks — and must agree within 1e-12 (f64) across slab counts,
//! decompositions (both exchange strategies), and kernels. The
//! distributed-KDE literature's failure mode is exactly here: merge and
//! exchange steps that are *almost* right pass eyeball tests and diverge
//! silently; this suite makes the divergence structural to catch.
//!
//! Beyond density agreement the suite checks two stronger invariants:
//!
//! * **bit-identity across backends** — halo application is ordered by
//!   sender rank, so the thread-backed and process-backed runs of the
//!   same spec produce byte-identical grids;
//! * **traffic-shape identity** — per-rank (msgs, bytes) accounting is a
//!   property of the protocol, not the transport, and must match between
//!   backends exactly.
//!
//! The overlap guard at the bottom is the bench_guard-style in-run
//! invariant required by the roadmap: overlapped halo exchange must not
//! lose to the strictly phased schedule measured in the same process.

#![cfg(unix)]

use std::path::Path;
use std::time::Duration;
use stkde::core::distmem::spec::{DistSpec, KernelChoice};
use stkde::core::distmem::{self, DistStrategy, HaloMode};
use stkde::rank::run_distmem_process;
use stkde_kernels::{Epanechnikov, Quartic, TruncatedGaussian};

const RANK_EXE: &str = env!("CARGO_BIN_EXE_stkde-rank");
const TOLERANCE: f64 = 1e-12;

fn configs() -> Vec<DistSpec> {
    let base = DistSpec {
        gx: 20,
        gy: 18,
        gt: 24,
        hs: 3.0,
        ht: 2.0,
        n: 60,
        seed: 21,
        kernel: KernelChoice::Epanechnikov,
        strategy: DistStrategy::HaloExchange,
        mode: HaloMode::Overlapped,
    };
    vec![
        base.clone(),
        // Wide temporal bandwidth: halos reach past immediate neighbors.
        DistSpec {
            gx: 16,
            gy: 16,
            gt: 20,
            hs: 2.5,
            ht: 5.0,
            n: 40,
            seed: 7,
            kernel: KernelChoice::TruncatedGaussian,
            ..base.clone()
        },
        // Point-exchange decomposition with a third kernel.
        DistSpec {
            gx: 24,
            gy: 12,
            gt: 16,
            hs: 3.5,
            ht: 1.5,
            n: 80,
            seed: 99,
            kernel: KernelChoice::Quartic,
            strategy: DistStrategy::PointExchange,
            ..base
        },
    ]
}

fn run_simulated(spec: &DistSpec, ranks: usize) -> distmem::DistResult<f64> {
    let problem = spec.problem();
    let points = spec.points();
    match spec.kernel {
        KernelChoice::Epanechnikov => distmem::run_with_mode::<f64, _>(
            &problem,
            &Epanechnikov,
            &points,
            ranks,
            spec.strategy,
            spec.mode,
        ),
        KernelChoice::TruncatedGaussian => distmem::run_with_mode::<f64, _>(
            &problem,
            &TruncatedGaussian::default(),
            &points,
            ranks,
            spec.strategy,
            spec.mode,
        ),
        KernelChoice::Quartic => distmem::run_with_mode::<f64, _>(
            &problem,
            &Quartic,
            &points,
            ranks,
            spec.strategy,
            spec.mode,
        ),
    }
    .expect("simulated run succeeds")
}

fn run_process(spec: &DistSpec, ranks: usize, chunk: usize) -> distmem::DistResult<f64> {
    run_distmem_process(Path::new(RANK_EXE), spec, ranks, |w| {
        w.timeout(Duration::from_secs(30))
            .run_timeout(Duration::from_secs(120))
            .chunk(chunk)
    })
    .expect("process run succeeds")
}

#[test]
fn all_backends_agree_on_every_config() {
    for spec in configs() {
        let reference = spec.sequential_reference();
        for ranks in [2usize, 4] {
            let sim = run_simulated(&spec, ranks);
            // A 1 KiB chunk forces every ghost-layer and gather message
            // through multi-frame reassembly.
            let proc = run_process(&spec, ranks, 1024);

            let sim_diff = reference.max_rel_diff(&sim.grid, 1e-15);
            let proc_diff = reference.max_rel_diff(&proc.grid, 1e-15);
            assert!(
                sim_diff < TOLERANCE,
                "{} ranks={ranks} kernel={:?}: simulated deviates by {sim_diff:e}",
                spec.strategy,
                spec.kernel
            );
            assert!(
                proc_diff < TOLERANCE,
                "{} ranks={ranks} kernel={:?}: process deviates by {proc_diff:e}",
                spec.strategy,
                spec.kernel
            );

            // Determinized exchange: the two backends agree bit for bit.
            assert_eq!(
                sim.grid.as_slice(),
                proc.grid.as_slice(),
                "{} ranks={ranks}: backends not bit-identical",
                spec.strategy
            );

            // The protocol fully determines the traffic shape; frames
            // are transport-specific and excluded.
            for (rank, (s, p)) in sim.stats.iter().zip(&proc.stats).enumerate() {
                assert_eq!(
                    s.traffic(),
                    p.traffic(),
                    "{} ranks={ranks} rank {rank}: traffic shapes differ",
                    spec.strategy
                );
            }
            assert_eq!(sim.processed, proc.processed, "work distribution differs");

            // The chunked transport really did chunk: big layer messages
            // occupy multiple frames, so frames must exceed messages.
            if spec.strategy == DistStrategy::HaloExchange {
                let total = proc.stats.iter().fold((0usize, 0usize), |acc, s| {
                    (acc.0 + s.msgs_sent, acc.1 + s.frames_sent)
                });
                assert!(
                    total.1 > total.0,
                    "ghost layers should span multiple 1 KiB chunks ({} msgs, {} frames)",
                    total.0,
                    total.1
                );
            }
        }
    }
}

#[test]
fn single_rank_process_world_matches_sequential() {
    let spec = DistSpec {
        strategy: DistStrategy::HaloExchange,
        ..configs().remove(0)
    };
    let reference = spec.sequential_reference();
    let proc = run_process(&spec, 1, 4096);
    let diff = reference.max_rel_diff(&proc.grid, 1e-15);
    assert!(
        diff < TOLERANCE,
        "one-rank process run deviates by {diff:e}"
    );
    // One rank exchanges nothing.
    assert_eq!(proc.stats[0].msgs_sent, 0);
    assert_eq!(proc.stats[0].bytes_sent, 0);
}

#[test]
fn halo_modes_agree_across_backends() {
    let base = configs().remove(0);
    let reference = base.sequential_reference();
    for mode in [HaloMode::Overlapped, HaloMode::Phased] {
        let spec = DistSpec {
            mode,
            ..base.clone()
        };
        let sim = run_simulated(&spec, 4);
        let proc = run_process(&spec, 4, 2048);
        assert_eq!(
            sim.grid.as_slice(),
            proc.grid.as_slice(),
            "mode {mode}: backends not bit-identical"
        );
        let diff = reference.max_rel_diff(&proc.grid, 1e-15);
        assert!(diff < TOLERANCE, "mode {mode} deviates by {diff:e}");
    }
}

/// In-run overlap invariant, guarded like `bench_guard`'s steal<static
/// and engine<naive checks: the overlapped schedule performs the same
/// work as the phased one plus concurrency, so (with generous slack for
/// CI noise) it must not lose. Min-of-3 on both sides makes the
/// comparison robust to one-off scheduling hiccups.
#[test]
fn overlapped_halo_exchange_is_not_slower_than_phased() {
    let base = DistSpec {
        gx: 32,
        gy: 32,
        gt: 24,
        hs: 4.0,
        ht: 6.0,
        n: 400,
        seed: 5,
        kernel: KernelChoice::Epanechnikov,
        strategy: DistStrategy::HaloExchange,
        mode: HaloMode::Overlapped,
    };
    let (overlapped, phased) = time_halo_modes(&base, 3);
    println!(
        "halo exchange wall-clock: overlapped {overlapped:.4}s vs phased {phased:.4}s \
         (ratio {:.3})",
        overlapped / phased
    );
    assert!(
        overlapped <= phased * 1.5 + 0.15,
        "overlapped halo exchange regressed: {overlapped:.4}s vs phased {phased:.4}s"
    );
}

/// Exchange-dominated measurement instance (big layers, wide halo):
/// run manually with `cargo test --release --test distmem_conformance
/// overlap_measurement -- --ignored --nocapture` to reproduce the
/// numbers quoted in ROADMAP.md. Ignored in CI: it is a measurement,
/// not an invariant, and release timing on shared runners is noise.
#[test]
#[ignore]
fn overlap_measurement_large_instance() {
    let base = DistSpec {
        gx: 128,
        gy: 128,
        gt: 64,
        hs: 6.0,
        ht: 12.0,
        n: 4000,
        seed: 5,
        kernel: KernelChoice::Epanechnikov,
        strategy: DistStrategy::HaloExchange,
        mode: HaloMode::Overlapped,
    };
    let (overlapped, phased) = time_halo_modes(&base, 5);
    println!(
        "large-instance halo exchange: overlapped {overlapped:.4}s vs phased {phased:.4}s \
         (ratio {:.3})",
        overlapped / phased
    );
}

/// Min-of-N wall clock for both halo schedules on the process backend.
fn time_halo_modes(base: &DistSpec, reps: usize) -> (f64, f64) {
    let time_mode = |mode: HaloMode| -> f64 {
        let spec = DistSpec {
            mode,
            ..base.clone()
        };
        (0..reps)
            .map(|_| {
                let start = std::time::Instant::now();
                let r = run_process(&spec, 4, 64 * 1024);
                assert_eq!(r.ranks, 4);
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let phased = time_mode(HaloMode::Phased);
    let overlapped = time_mode(HaloMode::Overlapped);
    (overlapped, phased)
}
