//! Cross-crate integration: every algorithm in the engine computes the
//! same density field as the gold-standard `VB`, across kernels, scalar
//! types, decompositions, thread counts, and point distributions.

use stkde::prelude::*;
use stkde::ResultExt;
use stkde_core::validate::grids_agree;
use stkde_data::synth::{self, ClusterSpec};

fn all_parallel(d: Decomp) -> Vec<Algorithm> {
    vec![
        Algorithm::PbSymDr,
        Algorithm::PbSymDd { decomp: d },
        Algorithm::PbSymPd { decomp: d },
        Algorithm::PbSymPdSched { decomp: d },
        Algorithm::PbSymPdRep { decomp: d },
        Algorithm::PbSymPdSchedRep { decomp: d },
    ]
}

fn check_instance(domain: Domain, bw: Bandwidth, points: &PointSet, label: &str) {
    let engine = Stkde::new(domain, bw);
    let reference = engine
        .clone()
        .algorithm(Algorithm::Vb)
        .compute::<f64>(points)
        .unwrap();
    let sequential = [
        Algorithm::VbDec,
        Algorithm::Pb,
        Algorithm::PbDisk,
        Algorithm::PbBar,
        Algorithm::PbSym,
    ];
    for alg in sequential {
        let r = engine
            .clone()
            .algorithm(alg)
            .compute::<f64>(points)
            .unwrap();
        assert!(
            grids_agree(reference.grid(), r.grid(), 1e-9, 1e-14),
            "{label}: {alg} diverges from VB"
        );
    }
    for decomp in [Decomp::cubic(2), Decomp::cubic(5), Decomp::new(4, 2, 3)] {
        for alg in all_parallel(decomp) {
            for threads in [1, 2, 4] {
                let r = engine
                    .clone()
                    .algorithm(alg)
                    .threads(threads)
                    .compute::<f64>(points)
                    .unwrap();
                assert!(
                    grids_agree(reference.grid(), r.grid(), 1e-9, 1e-14),
                    "{label}: {alg} (decomp {decomp}, {threads} threads) diverges from VB"
                );
            }
        }
    }
}

#[test]
fn uniform_points_agree() {
    let domain = Domain::from_dims(GridDims::new(20, 18, 10));
    let points = synth::uniform(60, domain.extent(), 1);
    check_instance(domain, Bandwidth::new(3.0, 2.0), &points, "uniform");
}

#[test]
fn clustered_points_agree() {
    let domain = Domain::from_dims(GridDims::new(24, 24, 12));
    let spec = ClusterSpec {
        clusters: 2,
        spatial_sigma: 0.03,
        background: 0.05,
        ..Default::default()
    };
    let points = spec.generate(80, domain.extent(), 2);
    check_instance(domain, Bandwidth::new(2.0, 2.0), &points, "clustered");
}

#[test]
fn boundary_hugging_points_agree() {
    // Every point on the domain boundary: maximal cylinder clipping.
    let domain = Domain::from_dims(GridDims::new(16, 16, 8));
    let e = domain.extent();
    let mut pts = Vec::new();
    for i in 0..40 {
        let f = i as f64 / 40.0;
        pts.push(Point::new(e.min[0] + f * 16.0, e.min[1], e.min[2]));
        pts.push(Point::new(
            e.max[0] - 1e-9,
            e.min[1] + f * 16.0,
            e.max[2] - 1e-9,
        ));
    }
    let points = PointSet::from_vec(pts);
    check_instance(domain, Bandwidth::new(4.0, 3.0), &points, "boundary");
}

#[test]
fn large_bandwidth_agrees() {
    // Bandwidth comparable to the grid: PD collapses to few subdomains.
    let domain = Domain::from_dims(GridDims::new(20, 20, 10));
    let points = synth::uniform(25, domain.extent(), 3);
    check_instance(domain, Bandwidth::new(8.0, 4.0), &points, "large-bw");
}

#[test]
fn f32_parallel_matches_f64_reference() {
    let domain = Domain::from_dims(GridDims::new(32, 32, 16));
    let points = synth::uniform(100, domain.extent(), 4);
    let bw = Bandwidth::new(3.0, 2.0);
    let reference = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    for alg in all_parallel(Decomp::cubic(4)) {
        let r = Stkde::new(domain, bw)
            .algorithm(alg)
            .threads(2)
            .compute::<f32>(&points)
            .unwrap();
        let max_diff = reference
            .grid()
            .as_slice()
            .iter()
            .zip(r.grid().as_slice())
            .map(|(&a, &b)| (a - b as f64).abs())
            .fold(0.0f64, f64::max);
        let scale = stkde::grid_stats(reference.grid()).max;
        assert!(
            max_diff < 1e-5 * scale.max(1e-30),
            "{alg}: f32 deviates by {max_diff} (scale {scale})"
        );
    }
}

#[test]
fn nonseparable_literal_kernel_consistency() {
    // The paper-literal kernel through the whole engine.
    let domain = Domain::from_dims(GridDims::new(18, 18, 9));
    let points = synth::uniform(40, domain.extent(), 8);
    let bw = Bandwidth::new(3.0, 2.0);
    let vb = Stkde::new(domain, bw)
        .kernel(stkde::kernels::PaperLiteral)
        .algorithm(Algorithm::Vb)
        .compute::<f64>(&points)
        .unwrap();
    let pd = Stkde::new(domain, bw)
        .kernel(stkde::kernels::PaperLiteral)
        .algorithm(Algorithm::PbSymPdSchedRep {
            decomp: Decomp::cubic(3),
        })
        .threads(3)
        .compute::<f64>(&points)
        .unwrap();
    assert!(grids_agree(vb.grid(), pd.grid(), 1e-9, 1e-14));
}

#[test]
fn single_voxel_time_axis() {
    // Degenerate Gt = 1 (purely spatial KDE as a special case).
    let domain = Domain::from_dims(GridDims::new(16, 16, 1));
    let points = synth::uniform(30, domain.extent(), 9);
    check_instance(domain, Bandwidth::new(3.0, 1.0), &points, "flat-time");
}
