//! Runtime validation of the disjoint-write safety arguments behind the
//! workspace's `unsafe` shared-grid writes.
//!
//! The parallel algorithms write a shared grid without synchronization,
//! justified by three claims (see `stkde_grid::shared`):
//!
//! 1. **DD**: clipped writes of distinct subdomains are disjoint;
//! 2. **PD (phased)**: same-parity subdomains have disjoint halos;
//! 3. **PD-SCHED/REP**: the coloring-oriented DAG never runs adjacent
//!    subdomains concurrently, and non-adjacent subdomains have disjoint
//!    halos under the ≥2·bandwidth adjustment.
//!
//! These tests *execute* the same concurrency structure with a
//! [`WriteAudit`] recording claimed regions, and fail on any overlap.

use stkde::prelude::*;
use stkde_data::{binning, synth};
use stkde_grid::{Decomposition, SubdomainId, WriteAudit};
use stkde_sched::{run_dag, StencilGraph, TaskDag};

use rayon::prelude::*;

fn setup(
    k: usize,
    n: usize,
) -> (
    Domain,
    Bandwidth,
    stkde_grid::VoxelBandwidth,
    Decomposition,
    PointSet,
) {
    let domain = Domain::from_dims(GridDims::new(48, 40, 24));
    let bw = Bandwidth::new(2.0, 2.0);
    let vbw = domain.voxel_bandwidth(bw);
    let decomp = Decomposition::adjusted(domain.dims(), Decomp::cubic(k), vbw);
    let points = synth::uniform(n, domain.extent(), 7);
    (domain, bw, vbw, decomp, points)
}

#[test]
fn dd_clipped_writes_never_overlap() {
    let (domain, _bw, vbw, _, points) = setup(6, 300);
    // DD uses an *unadjusted* decomposition; build one directly.
    let decomp = Decomposition::new(domain.dims(), Decomp::cubic(6));
    let bins = binning::bin_points_replicated(&domain, &decomp, points.as_slice(), vbw);
    let audit = WriteAudit::new();
    (0..decomp.count()).into_par_iter().for_each(|sd| {
        let id = SubdomainId(sd);
        let clip = decomp.voxel_range(id);
        if !bins.points_of(id).is_empty() {
            assert!(
                audit.claim(sd, clip),
                "DD subdomain {sd} overlapped a concurrent region"
            );
            // Simulate some work so overlaps would actually interleave.
            std::thread::yield_now();
            audit.release(sd);
        }
    });
    assert_eq!(audit.violations(), 0);
    assert!(audit.claims() > 0);
}

#[test]
fn pd_phased_same_class_halos_never_overlap() {
    let (domain, _bw, vbw, decomp, points) = setup(8, 400);
    let bins = binning::bin_points(&domain, &decomp, points.as_slice());
    let audit = WriteAudit::new();
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); 8];
    for id in decomp.ids() {
        classes[decomp.parity_class(id)].push(id.0);
    }
    for class in &classes {
        class.par_iter().for_each(|&sd| {
            let id = SubdomainId(sd);
            if !bins.points_of(id).is_empty() {
                let halo = decomp.halo(id, vbw);
                assert!(
                    audit.claim(sd, halo),
                    "PD phase: subdomain {sd} halo overlapped concurrently"
                );
                std::thread::yield_now();
                audit.release(sd);
            }
        });
    }
    assert_eq!(audit.violations(), 0);
}

#[test]
fn pd_sched_dag_execution_never_overlaps_halos() {
    let (domain, _bw, vbw, decomp, points) = setup(8, 500);
    let bins = binning::bin_points(&domain, &decomp, points.as_slice());
    let graph = StencilGraph::from_decomposition(&decomp);
    let weights: Vec<f64> = bins.counts().iter().map(|&c| c as f64 + 1.0).collect();
    let order = stkde_sched::order_by_weight_desc(&weights);
    let coloring = stkde_sched::greedy_coloring(&graph, &order);
    let dag = TaskDag::from_coloring(&graph, &coloring, weights.clone());
    // Repeat to shake out racy interleavings.
    for _ in 0..5 {
        let audit = WriteAudit::new();
        run_dag(&dag, 4, &weights, |task| {
            let id = SubdomainId(task);
            let halo = decomp.halo(id, vbw);
            assert!(
                audit.claim(task, halo),
                "PD-SCHED: task {task} halo overlapped a concurrent task"
            );
            std::thread::yield_now();
            audit.release(task);
        });
        assert_eq!(audit.violations(), 0);
    }
}

#[test]
fn pd_rep_expanded_dag_anchors_never_overlap() {
    use stkde_sched::replication::{expand_dag, RepNode, RepPlan};
    let (domain, _bw, vbw, decomp, points) = setup(6, 600);
    let bins = binning::bin_points(&domain, &decomp, points.as_slice());
    let graph = StencilGraph::from_decomposition(&decomp);
    let weights: Vec<f64> = bins.counts().iter().map(|&c| c as f64 + 1.0).collect();
    let coloring =
        stkde_sched::greedy_coloring(&graph, &stkde_sched::order_by_weight_desc(&weights));
    let dag = TaskDag::from_coloring(&graph, &coloring, weights);
    // Force replication of the three heaviest subdomains.
    let mut replicas = vec![1usize; dag.n()];
    let mut heavy: Vec<usize> = (0..dag.n()).collect();
    heavy.sort_by(|&a, &b| dag.weights()[b].partial_cmp(&dag.weights()[a]).unwrap());
    for &h in heavy.iter().take(3) {
        replicas[h] = 3;
    }
    let plan = RepPlan { replicas };
    let merge: Vec<f64> = (0..dag.n()).map(|_| 0.5).collect();
    let ex = expand_dag(&dag, &plan, &merge);
    for _ in 0..5 {
        let audit = WriteAudit::new();
        run_dag(&ex.dag, 4, ex.dag.weights(), |node| match ex.nodes[node] {
            // Anchor nodes (process + merge) write the shared grid halo;
            // replicas write private buffers and claim nothing.
            RepNode::Process(v) | RepNode::Merge(v) => {
                let halo = decomp.halo(SubdomainId(v), vbw);
                assert!(
                    audit.claim(node, halo),
                    "PD-REP: anchor of subdomain {v} overlapped concurrently"
                );
                std::thread::yield_now();
                audit.release(node);
            }
            RepNode::Replica { .. } => {
                std::thread::yield_now();
            }
        });
        assert_eq!(audit.violations(), 0);
    }
}
