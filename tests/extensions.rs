//! Cross-crate integration for the extension features: every alternative
//! execution path (sparse backend, distributed ranks, incremental updates,
//! tabulated kernels) must reproduce the engine's gold-standard density.

use stkde::core::distmem::{self, DistStrategy};
use stkde::core::sparse;
use stkde::kernels::{Epanechnikov, Tabulated, TruncatedGaussian};
use stkde::prelude::*;
use stkde::{IncrementalStkde, Problem, ResultExt, SlidingWindowStkde};
use stkde_data::synth::{self, ClusterSpec};

fn instance(seed: u64) -> (Domain, Bandwidth, PointSet) {
    let domain = Domain::from_dims(GridDims::new(28, 22, 18));
    let spec = ClusterSpec {
        clusters: 3,
        spatial_sigma: 0.05,
        background: 0.1,
        ..Default::default()
    };
    let points = spec.generate(70, domain.extent(), seed);
    (domain, Bandwidth::new(3.5, 2.5), points)
}

fn reference(domain: Domain, bw: Bandwidth, points: &PointSet) -> Grid3<f64> {
    Stkde::new(domain, bw)
        .algorithm(Algorithm::Vb)
        .compute::<f64>(points)
        .unwrap()
        .grid
}

#[test]
fn sparse_backend_matches_vb_end_to_end() {
    let (domain, bw, points) = instance(41);
    let vb = reference(domain, bw, &points);
    // Library-level sparse run.
    let problem = Problem::new(domain, bw, points.len());
    let (grid, _) = sparse::run::<f64, _>(&problem, &Epanechnikov, points.as_slice());
    assert!(grid.max_abs_diff_dense(&vb) < 1e-9);
    // Engine-level sparse run, sequential and replicated.
    for threads in [1, 3] {
        let r = Stkde::new(domain, bw)
            .threads(threads)
            .compute_sparse::<f64>(&points)
            .unwrap();
        assert!(
            r.grid.max_abs_diff_dense(&vb) < 1e-9,
            "threads={threads} diverges"
        );
        assert!(r.occupancy() > 0.0 && r.occupancy() <= 1.0);
    }
}

#[test]
fn distributed_strategies_match_vb_end_to_end() {
    let (domain, bw, points) = instance(42);
    let vb = reference(domain, bw, &points);
    let problem = Problem::new(domain, bw, points.len());
    for strategy in [DistStrategy::PointExchange, DistStrategy::HaloExchange] {
        for ranks in [2, 4, 7] {
            let r =
                distmem::run::<f64, _>(&problem, &Epanechnikov, points.as_slice(), ranks, strategy)
                    .unwrap();
            assert!(
                vb.max_rel_diff(&r.grid, 1e-12) < 1e-8,
                "{strategy} ranks={ranks}"
            );
        }
    }
}

#[test]
fn incremental_matches_vb_end_to_end() {
    let (domain, bw, points) = instance(43);
    let vb = reference(domain, bw, &points);
    let mut inc = IncrementalStkde::<f64>::new(domain, bw);
    for &p in &points {
        inc.insert(p);
    }
    assert!(vb.max_rel_diff(&inc.snapshot(), 1e-12) < 1e-8);
}

#[test]
fn incremental_removal_tracks_engine_subset() {
    // Insert everything, remove the second half; must equal a batch run
    // over the first half.
    let (domain, bw, points) = instance(44);
    let all: Vec<Point> = points.iter().copied().collect();
    let (keep, drop) = all.split_at(all.len() / 2);
    let mut inc = IncrementalStkde::<f64>::new(domain, bw);
    for &p in &all {
        inc.insert(p);
    }
    for p in drop {
        inc.remove(p);
    }
    let batch = reference(domain, bw, &PointSet::from_vec(keep.to_vec()));
    assert!(batch.max_rel_diff(&inc.snapshot(), 1e-11) < 1e-7);
}

#[test]
fn tabulated_kernel_flows_through_every_algorithm() {
    let (domain, bw, points) = instance(45);
    let lut = Tabulated::new(Epanechnikov);
    let vb = Stkde::new(domain, bw)
        .kernel(lut.clone())
        .algorithm(Algorithm::Vb)
        .compute::<f64>(&points)
        .unwrap();
    for alg in [
        Algorithm::PbSym,
        Algorithm::PbSymDr,
        Algorithm::PbSymPdSchedRep {
            decomp: Decomp::cubic(3),
        },
    ] {
        let r = Stkde::new(domain, bw)
            .kernel(lut.clone())
            .algorithm(alg)
            .threads(2)
            .compute::<f64>(&points)
            .unwrap();
        assert!(
            vb.grid().max_rel_diff(r.grid(), 1e-12) < 1e-8,
            "{alg} under tabulated kernel"
        );
    }
    // And the LUT itself tracks its base kernel through the engine.
    let exact = Stkde::new(domain, bw)
        .kernel(TruncatedGaussian::default())
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let tab = Stkde::new(domain, bw)
        .kernel(Tabulated::new(TruncatedGaussian::default()))
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let scale = stkde::grid_stats(exact.grid()).max;
    assert!(
        exact.grid().max_abs_diff(tab.grid()) < 1e-4 * scale,
        "LUT deviates beyond its interpolation budget"
    );
}

#[test]
fn sparse_distributed_and_dense_agree_with_each_other() {
    // Three independent execution paths; all must tell the same story.
    let (domain, bw, points) = instance(46);
    let problem = Problem::new(domain, bw, points.len());
    let dense = Stkde::new(domain, bw)
        .algorithm(Algorithm::PbSym)
        .compute::<f64>(&points)
        .unwrap();
    let (sparse_grid, _) = sparse::run::<f64, _>(&problem, &Epanechnikov, points.as_slice());
    let dist = distmem::run::<f64, _>(
        &problem,
        &Epanechnikov,
        points.as_slice(),
        3,
        DistStrategy::HaloExchange,
    )
    .unwrap();
    assert!(sparse_grid.max_abs_diff_dense(dense.grid()) < 1e-10);
    assert!(dense.grid().max_rel_diff(&dist.grid, 1e-12) < 1e-8);
}

#[test]
fn window_stream_tracks_repeated_batch_queries() {
    // Replay a stream; at several checkpoints the window must equal a
    // batch run over exactly the in-window events.
    let (domain, bw, points) = instance(47);
    let mut feed: Vec<Point> = points.iter().copied().collect();
    feed.sort_by(|a, b| a.t.total_cmp(&b.t));
    let window = 5.0;
    let mut live = SlidingWindowStkde::<f64>::new(domain, bw, window);
    for (i, &p) in feed.iter().enumerate() {
        live.push(p);
        if i % 25 == 24 {
            let survivors: Vec<Point> = feed[..=i]
                .iter()
                .filter(|q| q.t >= p.t - window)
                .copied()
                .collect();
            let batch = reference(domain, bw, &PointSet::from_vec(survivors.clone()));
            assert_eq!(live.len(), survivors.len(), "checkpoint {i}");
            assert!(
                batch.max_rel_diff(&live.cube().snapshot(), 1e-11) < 1e-7,
                "checkpoint {i} diverges"
            );
        }
    }
}

#[test]
fn sparse_dr_uses_less_memory_than_dense_dr_would() {
    // A Flu-shaped instance: dense DR at 4 threads needs 4 full grids;
    // sparse DR must come in far below even one.
    let domain = Domain::from_dims(GridDims::new(160, 160, 80));
    let bw = Bandwidth::new(2.0, 2.0);
    let points = synth::uniform(40, domain.extent(), 48);
    let r = Stkde::new(domain, bw)
        .threads(4)
        .compute_sparse::<f32>(&points)
        .unwrap();
    let one_dense = domain.dims().bytes::<f32>();
    assert!(
        r.grid.allocated_bytes() < one_dense / 4,
        "sparse {} vs one dense grid {}",
        r.grid.allocated_bytes(),
        one_dense
    );
}
